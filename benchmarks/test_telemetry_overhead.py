"""Guard: disabled telemetry adds no measurable cost to hot paths.

Two checks, both about the *disabled* state (the repo default):

* The codec-throughput kernel (``line_zeros`` over cache-line batches)
  must carry zero telemetry gating.  The registered benchmark pair
  ``telemetry.codec_disabled`` / ``telemetry.codec_enabled`` (see
  ``repro.bench.suite``) times the same kernel with the global switch
  off versus fully on-with-a-live-session under the standard
  ``repro.bench`` timing protocol; the two must agree within 2%.
* A dormant instrumentation site — the single ``probe is None`` test
  the DRAM channel and decision policies pay per event — must stay in
  single-digit nanoseconds next to the work it guards.

Both configurations run under the protocol's min-of-repeats statistic,
so one scheduler hiccup cannot fake a regression; a whole-comparison
retry absorbs the rest.
"""

import time

import pytest

from repro import telemetry
from repro.bench import get, measure

MAX_OVERHEAD = 0.02
ATTEMPTS = 3  # whole-comparison retries before failing


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(autouse=True)
def _telemetry_off_by_default():
    previous = telemetry.set_enabled(False)
    yield
    telemetry.set_enabled(previous)


def test_codec_throughput_is_unaffected_by_the_global_switch():
    disabled = get("telemetry.codec_disabled")
    enabled = get("telemetry.codec_enabled")

    for _ in range(ATTEMPTS):
        t_disabled = measure(disabled.build(), repeats=9, warmup=1,
                             inner_ops=disabled.inner_ops).min_ns
        t_enabled = measure(enabled.build(), repeats=9, warmup=1,
                            inner_ops=enabled.inner_ops).min_ns
        # ``enabled`` also constructs a session, so it bounds from above;
        # the disabled kernel may not exceed it by more than the budget.
        if t_disabled <= t_enabled * (1 + MAX_OVERHEAD):
            return
    pytest.fail(
        f"disabled-telemetry codec path slower than budget after "
        f"{ATTEMPTS} attempts: disabled={t_disabled:.1f}ns/op "
        f"enabled={t_enabled:.1f}ns/op (limit {MAX_OVERHEAD:.0%})"
    )


def test_dormant_probe_site_costs_nanoseconds():
    """The per-event cost of an unwired site is one identity test."""
    probe = None
    events = 1_000_000

    def guarded():
        hits = 0
        for _ in range(events):
            if probe is not None:  # the exact pattern used in the models
                hits += 1
        return hits

    best = _best_of(guarded, repeats=5)
    per_event_ns = best / events * 1e9
    # An empty Python loop iteration alone is ~20-50 ns; budget 200 ns
    # so the guard only trips on real regressions (attribute chains,
    # dict lookups, enabled() calls) and not on slow CI machines.
    assert per_event_ns < 200, (
        f"dormant probe site costs {per_event_ns:.0f} ns/event"
    )


def test_simulation_summary_identical_with_telemetry_off_and_on():
    """Cross-check at simulation scale: observation never steers.

    Belt-and-braces companion to the unit test of the same name — run
    here so the overhead suite fails loudly if instrumentation ever
    perturbs results rather than timing.
    """
    from repro.campaign import RunSpec
    from repro.core.framework import run_spec
    from repro.telemetry import TelemetrySession

    spec = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=80)
    plain = run_spec(spec).to_dict()
    observed = run_spec(spec, telemetry=TelemetrySession()).to_dict()
    plain.pop("stats")
    observed.pop("stats")
    assert plain == observed

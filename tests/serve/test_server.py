"""The HTTP job API end to end, including the equivalence guarantee.

Everything here goes over a real Unix socket: a background-thread
service (``start_in_thread``) on one side, the blocking
:class:`ServeClient` on the other — the exact stack ``repro submit``
and CI's serve-smoke job use.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, RunSpec, cache
from repro.serve.client import BackPressureError, ServeClient, ServeError
from repro.serve.server import start_in_thread
from repro.serve.service import ServiceConfig

SCALE = 80
FP = "test-fp"


def spec(seed: int, policy: str = "dbi") -> RunSpec:
    return RunSpec(benchmark="GUPS", system="ddr4-server", policy=policy,
                   accesses_per_core=SCALE, seed=seed)


def make_config(tmp_path, **kw) -> ServiceConfig:
    kw.setdefault("store_root", tmp_path / "store")
    kw.setdefault("shards", 0)
    kw.setdefault("fingerprint", FP)
    return ServiceConfig(**kw)


@pytest.fixture
def served(tmp_path):
    """(handle, client) over a Unix socket; stopped at teardown."""
    handle = start_in_thread(
        make_config(tmp_path), socket_path=str(tmp_path / "s.sock")
    )
    try:
        yield handle, ServeClient(handle.address)
    finally:
        handle.stop()


class TestEndpoints:
    def test_health_and_stats(self, served):
        _, client = served
        health = client.health()
        assert health["ok"] is True and health["shards"] == 0
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["jobs"]["done"] == 0

    def test_unknown_paths_and_methods(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client.job("j999")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("PUT", "/jobs")
        assert err.value.status == 405

    def test_bad_submissions_are_400(self, served):
        _, client = served
        for payload in (
            {"kind": "bogus"},
            {"kind": "specs", "specs": []},
            {"kind": "specs", "specs": [{"no_such_field": 1}]},
        ):
            with pytest.raises(ServeError) as err:
                client.submit(payload)
            assert err.value.status == 400

    def test_submit_job_roundtrip(self, served):
        _, client = served
        job = client.submit_specs([spec(1)], namespace="t", priority=2,
                                  label="roundtrip")
        assert job["state"] in ("queued", "running", "done")
        assert job["label"] == "roundtrip" and job["priority"] == 2
        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["counters"]["executed"] == 1
        listed = client.jobs(namespace="t")
        assert [j["id"] for j in listed] == [job["id"]]
        assert client.jobs(namespace="elsewhere") == []
        assert client.jobs(state="failed") == []

    def test_cancel_over_http(self, served):
        handle, client = served
        handle.call(handle.service.pause)
        job = client.submit_specs([spec(2)])
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        handle.call(handle.service.resume)

    def test_results_for_unknown_job_404(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client.results("j404")
        assert err.value.status == 404


class TestBackPressure:
    def test_full_queue_maps_to_429(self, tmp_path):
        handle = start_in_thread(
            make_config(tmp_path, queue_limit=1),
            socket_path=str(tmp_path / "bp.sock"),
        )
        try:
            client = ServeClient(handle.address)
            handle.call(handle.service.pause)
            client.submit_specs([spec(3)])
            with pytest.raises(BackPressureError) as err:
                client.submit_specs([spec(4)])
            assert err.value.status == 429
            # Duplicates of queued work coalesce: accepted at the limit.
            dup = client.submit_specs([spec(3)])
            assert dup["counters"]["coalesced"] == 1
            handle.call(handle.service.resume)
            assert client.wait(dup["id"])["state"] == "done"
        finally:
            handle.stop()


class TestEquivalence:
    """The PR's acceptance criterion: served == local, byte for byte."""

    def test_served_campaign_matches_local(self, tmp_path, monkeypatch):
        specs = [spec(s) for s in range(3)] + [spec(0, policy="mil")]

        # Local ground truth: a serial CampaignRunner in this process.
        local_dir = tmp_path / "local"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(local_dir))
        local = CampaignRunner(jobs=1, fingerprint=FP).run(specs)
        assert len(local) == len(specs)
        monkeypatch.delenv("REPRO_CACHE_DIR")

        # Served: 2 real worker shards behind the HTTP API.
        handle = start_in_thread(
            make_config(tmp_path, shards=2),
            socket_path=str(tmp_path / "eq.sock"),
        )
        try:
            client = ServeClient(handle.address)
            job = client.submit_specs(specs, namespace="eq")
            final = client.wait(job["id"])
            assert final["state"] == "done"
            assert final["counters"]["executed"] == len(specs)
            rows = client.results(job["id"])
        finally:
            handle.stop()

        # Same cache keys, in submission order.
        keys = [cache.cache_key(s, FP) for s in specs]
        assert [r["cache_key"] for r in rows] == keys

        # Byte-identical RunSummary payloads: the served cache file's
        # summary block (sorted-keys JSON) must equal the local one's.
        served_runs = tmp_path / "store" / "runs"
        for s, key in zip(specs, keys):
            a = json.loads((local_dir / f"{key}.json").read_text())
            b = json.loads((served_runs / f"{key}.json").read_text())
            assert json.dumps(a["summary"], sort_keys=True) == \
                json.dumps(b["summary"], sort_keys=True)
            assert a["fingerprint"] == b["fingerprint"]
            assert a["spec"] == b["spec"]
            # And the result row served over HTTP carries it verbatim.
            row = rows[keys.index(key)]
            assert row["summary"] == a["summary"]

    def test_duplicate_concurrent_submissions_coalesce(self, tmp_path):
        """Two identical jobs in flight -> one execution settles both."""
        specs = [spec(20), spec(21)]
        handle = start_in_thread(
            make_config(tmp_path, shards=2),
            socket_path=str(tmp_path / "co.sock"),
        )
        try:
            client = ServeClient(handle.address)
            handle.call(handle.service.pause)  # hold work so both queue
            first = client.submit_specs(specs)
            second = client.submit_specs(specs)
            assert second["counters"]["coalesced"] == len(specs)
            handle.call(handle.service.resume)
            f1 = client.wait(first["id"])
            f2 = client.wait(second["id"])
            assert f1["state"] == f2["state"] == "done"
            # Each spec executed exactly once across BOTH jobs.
            stats = client.stats()
            assert stats["service"]["executed"] == len(specs)
            assert stats["manager"]["coalesced"] == len(specs)
        finally:
            handle.stop()


class TestMetrics:
    def test_metrics_endpoint_shape(self, served):
        _, client = served
        job = client.submit_specs([spec(40)])
        client.wait(job["id"])
        sample = client.metrics()
        assert sample["schema"] == "repro.serve.metrics/v1"
        assert sample["uptime_s"] >= 0
        assert sample["queue"] == {
            "depth": 0, "inflight": 0, "outstanding": 0, "limit": 4096,
        }
        assert sample["jobs"]["done"] == 1
        assert sample["counters"]["service"]["executed"] == 1
        assert sample["workers"]["connected"] == 0
        assert sample["workers"]["fleet"] == []
        assert sample["journal"]["appended"] > 0

    def test_workers_endpoint_empty_fleet(self, served):
        _, client = served
        assert client.workers() == {"connected": 0, "fleet": []}

    def test_rolling_exporter_writes_samples(self, tmp_path):
        out = tmp_path / "metrics.jsonl"
        handle = start_in_thread(
            make_config(tmp_path, metrics_interval_s=0.05,
                        metrics_out=out),
            socket_path=str(tmp_path / "m.sock"),
        )
        try:
            client = ServeClient(handle.address)
            job = client.submit_specs([spec(41)])
            client.wait(job["id"])
            import time

            time.sleep(0.2)  # let a few samples land
        finally:
            handle.stop()
        lines = [json.loads(line)
                 for line in out.read_text().splitlines() if line]
        # Interval samples plus the final one written at shutdown.
        assert len(lines) >= 2
        assert all(s["schema"] == "repro.serve.metrics/v1" for s in lines)
        # The last sample (shutdown) reflects the finished campaign.
        assert lines[-1]["jobs"]["done"] == 1
        assert lines[-1]["counters"]["service"]["executed"] == 1

    def test_exporter_defaults_under_store_root(self, tmp_path):
        handle = start_in_thread(
            make_config(tmp_path, metrics_interval_s=0.05),
            socket_path=str(tmp_path / "md.sock"),
        )
        try:
            import time

            time.sleep(0.12)
        finally:
            handle.stop()
        default_out = tmp_path / "store" / "metrics.jsonl"
        assert default_out.exists()
        assert json.loads(default_out.read_text().splitlines()[0])


class TestScenarioSubmission:
    def test_scenario_compiles_server_side(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        del yaml
        from repro.scenario import load_scenario, normalized

        scn = load_scenario("scenarios/syn-smoke.yaml")
        handle = start_in_thread(
            make_config(tmp_path), socket_path=str(tmp_path / "sc.sock")
        )
        try:
            client = ServeClient(handle.address)
            job = client.submit_scenario(normalized(scn), label=scn.name)
            assert job["total"] == scn.run_count
            final = client.wait(job["id"])
            assert final["state"] == "done"
            rows = client.results(job["id"])
            assert len(rows) == scn.run_count
        finally:
            handle.stop()

"""Wire-level helpers shared by the server, the client, and workers.

The API speaks minimal HTTP/1.1 with JSON bodies; streaming endpoints
reply ``Content-Type: application/x-ndjson`` with ``Connection: close``
and delimit the stream by EOF — one JSON document per line, exactly the
framing of the scenario/result JSONL files, so the same tooling reads
both.  Addresses take two forms::

    unix:/path/to/serve.sock     AF_UNIX (tests, CI, local tooling)
    host:port  or  host port     AF_INET

Remote worker daemons (``repro worker``) reuse the same listener: the
daemon POSTs ``/v1/workers`` with a token hello, the server answers
with an NDJSON header, and from then on the connection carries one
JSON *frame* per line in both directions (see :func:`frame` and
``docs/SERVICE.md`` for the frame vocabulary).

No third-party HTTP stack, no TLS, no keep-alive: the service is an
internal, single-origin tool in the ``http.server`` weight class.
"""

from __future__ import annotations

import json

__all__ = [
    "API_PREFIX",
    "NDJSON",
    "STATUS_TEXT",
    "TOKEN_ENV",
    "dumps",
    "frame",
    "parse_address",
    "parse_query",
    "spec_from_canonical",
]

API_PREFIX = "/v1"
NDJSON = "application/x-ndjson"

# Shared worker-auth token: `repro serve --token` / `repro worker
# --token` both default to this variable.
TOKEN_ENV = "REPRO_SERVE_TOKEN"

STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def dumps(obj) -> str:
    """Canonical body encoding: sorted keys, no trailing whitespace."""
    return json.dumps(obj, sort_keys=True)


def frame(obj) -> bytes:
    """One worker-protocol frame: a JSON document plus newline."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode()


def spec_from_canonical(entry: dict):
    """Decode one ``RunSpec.canonical()`` dict back into a ``RunSpec``.

    This is the inverse used everywhere a spec crosses the wire — job
    submissions, worker leases, and journal replay — so all three agree
    on what a valid spec entry is.
    """
    from ..campaign.spec import RunSpec

    if not isinstance(entry, dict):
        raise ValueError(f"spec entry must be a dict, got {type(entry)}")
    known = {
        "benchmark", "system", "policy", "lookahead",
        "accesses_per_core", "seed", "system_overrides", "mil_overrides",
    }
    unknown = set(entry) - known
    if unknown:
        raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
    kwargs = dict(entry)
    for field_name in ("system_overrides", "mil_overrides"):
        if field_name in kwargs:
            kwargs[field_name] = tuple(
                (str(k), v) for k, v in kwargs[field_name]
            )
    return RunSpec(**kwargs)


def parse_address(address: str) -> tuple[str, object]:
    """``"unix:/p"`` -> ``("unix", "/p")``; ``"h:p"`` -> ``("tcp", (h, p))``."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return "unix", path
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad address {address!r}; expected unix:/path or host:port"
        )
    return "tcp", (host or "127.0.0.1", int(port))


def parse_query(raw: str) -> dict:
    """A tiny query-string parser (no repeats, no encoding niceties)."""
    out: dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        out[key] = value
    return out

"""The registered benchmark suite: every hot path the roadmap cares about.

Collected automatically by :func:`repro.bench.registry.collect`.  Each
factory builds its inputs from the fixed-seed corpus (or a fixed
synthetic device state) and returns the thunk to measure — setup never
counts against the numbers.

Groups:

``coding.*``
    The codec kernels (``line_zeros`` per scheme, bus-invert, transition
    signaling) plus the raw popcount primitive and its legacy
    unpack-to-bits formulation, kept as the regression reference for the
    ``bitops`` fast path.  ``coding.encode_trace.<scheme>`` times the
    batched ``encode_lines`` kernel through the default (numpy) backend;
    ``coding.encode_trace_reference.<scheme>`` times the pure-Python
    oracle on the same corpus — the pair is what
    ``benchmarks/test_batched_codec_speedup.py`` gates at >=3x.
``dram.*`` / ``controller.*`` / ``core.*``
    The cycle-level channel tick loop, FR-FCFS candidate scheduling,
    and the MiL look-ahead decision.
``audit.*``
    The protocol auditor's log replay — the cost a run pays only when
    ``--audit`` is on.
``campaign.*``
    Cache fingerprinting and key derivation — the costs every campaign
    pays per run.
``telemetry.*``
    The codec kernel with telemetry globally off vs. on; the ≤2%
    disabled-overhead guard in ``benchmarks/test_telemetry_overhead.py``
    runs these two under the same protocol.
``sim.*``
    A small end-to-end run, covering the integrated stack.
``scenario.*`` / ``workloads.*``
    Scenario-engine hot paths: compiling the whole checked-in
    ``scenarios/`` corpus into RunSpec matrices (the per-invocation
    cost every ``repro scenario`` command pays — kept sub-second by the
    baseline gate) and synthesising one mixed-arrival trace.
``serve.*``
    The resident campaign service over its Unix-socket wire protocol:
    a fully-cached submit→terminal roundtrip (API + scheduler + store
    cost, no simulation) and an NDJSON event-stream backfill.  Both
    share one background server started lazily on first use; excluded
    from ``--smoke`` so the CI smoke pass never pays server startup.
"""

from __future__ import annotations

import numpy as np

from . import corpus
from .registry import benchmark

_LINES = 2048  # corpus size for the codec kernels
_SMOKE_SCHEMES = ("dbi", "milc", "3lwc")  # cheap, distinct code families
_HEAVY_SCHEMES = ("raw", "lwc12", "cafo2", "cafo4")


# ----------------------------------------------------------------------
# coding.* — codec kernels
# ----------------------------------------------------------------------
def _register_line_zeros(scheme: str, smoke: bool) -> None:
    @benchmark(
        f"coding.line_zeros.{scheme}",
        params={"lines": _LINES, "scheme": scheme},
        smoke=smoke,
        inner_ops=_LINES,
        description=f"{scheme} zero counting over {_LINES} cache lines",
    )
    def _factory(scheme=scheme):
        from ..coding.pipeline import line_zeros

        data = corpus.lines(_LINES)
        return lambda: line_zeros(scheme, data)


for _scheme in _SMOKE_SCHEMES:
    _register_line_zeros(_scheme, smoke=True)
for _scheme in _HEAVY_SCHEMES:
    _register_line_zeros(_scheme, smoke=False)


# Batched encode kernels, one entry per (scheme, backend).  The corpus
# is smaller than _LINES because the reference oracle is per-element
# Python — the pair must share a corpus so the >=3x speedup gate in
# benchmarks/test_batched_codec_speedup.py compares like with like.
_TRACE_LINES = 256
_CODEC_SCHEMES = ("dbi", "milc", "3lwc", "cafo2", "cafo4", "lwc12")


def _register_encode_trace(scheme: str, impl: str, smoke: bool) -> None:
    suffix = "" if impl == "numpy" else f"_{impl}"
    @benchmark(
        f"coding.encode_trace{suffix}.{scheme}",
        params={"lines": _TRACE_LINES, "scheme": scheme, "impl": impl},
        smoke=smoke,
        inner_ops=_TRACE_LINES,
        description=f"batched {scheme} encode_lines kernel over "
                    f"{_TRACE_LINES} cache lines ({impl} backend)",
    )
    def _factory(scheme=scheme, impl=impl):
        from ..coding.pipeline import encode_trace

        data = corpus.lines(_TRACE_LINES)
        return lambda: encode_trace(scheme, data, impl=impl)


for _scheme in _CODEC_SCHEMES:
    _register_encode_trace(_scheme, "numpy", smoke=_scheme in _SMOKE_SCHEMES)
    _register_encode_trace(_scheme, "reference", smoke=False)


@benchmark(
    "coding.zero_table_cache",
    params={"lines": _LINES, "schemes": len(_SMOKE_SCHEMES), "repeats": 4},
    smoke=True,
    inner_ops=4 * len(_SMOKE_SCHEMES),
    description="precompute_line_zeros x4 on one trace via the "
                "campaign-wide zero-table cache (3 encodes + 9 hits)",
)
def _zero_table_cache():
    from ..coding.pipeline import precompute_line_zeros
    from ..coding.zerocache import ZeroTableCache, lines_digest

    data = corpus.lines(_LINES)
    digest = lines_digest(data)

    def cached_campaign():
        # A fresh private cache per call: the first precompute pays the
        # encodes, the next three (the other policies of a campaign
        # replaying the same trace) are pure hits.
        cache = ZeroTableCache()
        for _ in range(4):
            tables = precompute_line_zeros(
                data, _SMOKE_SCHEMES, digest=digest, cache=cache
            )
        return tables

    return cached_campaign


@benchmark(
    "coding.zero_table_uncached",
    params={"lines": _LINES, "schemes": len(_SMOKE_SCHEMES), "repeats": 4},
    inner_ops=4 * len(_SMOKE_SCHEMES),
    description="the same 4-policy campaign with the cache bypassed "
                "(the pre-cache cost; regression reference)",
)
def _zero_table_uncached():
    from ..coding.pipeline import precompute_line_zeros

    data = corpus.lines(_LINES)

    def uncached_campaign():
        for _ in range(4):
            tables = precompute_line_zeros(data, _SMOKE_SCHEMES, cache=False)
        return tables

    return uncached_campaign


@benchmark(
    "coding.bitops.popcount",
    params={"lines": _LINES},
    smoke=True,
    inner_ops=_LINES,
    description="byte-level popcount path (np.bitwise_count / byte table)",
)
def _popcount_bytes():
    from ..coding.bitops import zeros_in_bytes

    data = corpus.lines(_LINES)
    return lambda: zeros_in_bytes(data)


@benchmark(
    "coding.bitops.popcount_unpack",
    params={"lines": _LINES},
    smoke=True,
    inner_ops=_LINES,
    description="legacy unpack-to-bits popcount (regression reference)",
)
def _popcount_unpack():
    data = corpus.lines(_LINES)

    def unpack_zeros() -> np.ndarray:
        # The pre-bench formulation of raw_line_zeros: expand every
        # byte to eight uint8 bit elements, then sum.  Kept verbatim so
        # the speedup of the byte-level path stays measurable.
        bits = np.unpackbits(data, axis=-1)
        return bits.shape[-1] - bits.sum(axis=-1, dtype=np.int64)

    return unpack_zeros


@benchmark(
    "coding.businvert.sequence",
    params={"beats": 512},
    inner_ops=512,
    description="stateful bus-invert encoding of a 512-beat lane stream",
)
def _businvert():
    from ..coding.businvert import BusInvertCode

    beats = corpus.lines(_LINES)[:8].reshape(-1)[:512].copy()
    code = BusInvertCode()
    return lambda: code.encode_sequence(beats)


@benchmark(
    "coding.transition.encode",
    params={"beats": 2048, "lanes": 64},
    inner_ops=2048,
    description="transition-signaling XOR cascade over 2048 64-lane beats",
)
def _transition():
    from ..coding.bitops import bytes_to_bits
    from ..coding.transition import TransitionSignaling

    bits = bytes_to_bits(corpus.lines(_LINES)[:256]).reshape(-1, 64)
    ts = TransitionSignaling(lanes=64)

    def encode():
        ts.reset()
        return ts.encode(bits)

    return encode


# ----------------------------------------------------------------------
# dram.* / controller.* / core.* — the cycle-level engine
# ----------------------------------------------------------------------
@benchmark(
    "dram.channel.tick",
    params={"activations": 64, "reads_per_row": 4},
    inner_ops=64 * 6,  # commands issued per thunk call
    description="DRAM channel ACT/READx4/PRE loop across banks",
)
def _channel_tick():
    from ..dram.channel import DRAMChannel
    from ..dram.commands import DDR4_GEOMETRY, CommandType
    from ..dram.timing import DDR4_3200

    geometry = DDR4_GEOMETRY

    def tick():
        channel = DRAMChannel(DDR4_3200, geometry, keep_log=False)
        now = 0
        for i in range(64):
            rank = i % geometry.ranks
            group = (i // geometry.ranks) % geometry.bank_groups
            bank = i % geometry.banks_per_group
            t = channel.earliest_issue(
                CommandType.ACTIVATE, rank, group, bank, now
            )
            channel.issue(CommandType.ACTIVATE, rank, group, bank, t, row=i)
            for _ in range(4):
                t = channel.earliest_issue(
                    CommandType.READ, rank, group, bank, t
                )
                channel.issue(
                    CommandType.READ, rank, group, bank, t, bus_cycles=4
                )
            t = channel.earliest_issue(
                CommandType.PRECHARGE, rank, group, bank, t
            )
            now = channel.issue(
                CommandType.PRECHARGE, rank, group, bank, t
            ) - DDR4_3200.RP
        return channel.read_count

    return tick


def _queued_controller():
    """A ChannelController with a populated read queue and open rows.

    Shared fixture for the FR-FCFS and decision-logic benchmarks: 32
    mapped reads spread over ranks/groups/banks, half of them row hits.
    """
    from ..controller.controller import ChannelController
    from ..controller.request import MemoryRequest
    from ..dram.address import MappedAddress
    from ..dram.commands import DDR4_GEOMETRY, CommandType
    from ..dram.timing import DDR4_3200

    geometry = DDR4_GEOMETRY
    controller = ChannelController(
        DDR4_3200, geometry, keep_log=False, refresh_enabled=False
    )
    requests = []
    for i in range(32):
        mapped = MappedAddress(
            channel=0,
            rank=i % geometry.ranks,
            bank_group=(i // 2) % geometry.bank_groups,
            bank=(i // 4) % geometry.banks_per_group,
            row=100 + (i // 16),  # two row cohorts -> hits and conflicts
            column=i % geometry.lines_per_row,
        )
        req = MemoryRequest(
            address=i * 64, is_write=False, core=i % 8, line_id=i,
            mapped=mapped,
        )
        requests.append(req)
        controller.enqueue(req, now=i)
    # Open the row-100 cohort so the queue holds genuine row hits.
    opened = set()
    for req in requests:
        m = req.mapped
        key = (m.rank, m.bank_group, m.bank)
        if m.row == 100 and key not in opened:
            t = controller.channel.earliest_issue(
                CommandType.ACTIVATE, m.rank, m.bank_group, m.bank, 0
            )
            controller.channel.issue(
                CommandType.ACTIVATE, m.rank, m.bank_group, m.bank, t,
                row=m.row,
            )
            opened.add(key)
    return controller, requests


@benchmark(
    "controller.frfcfs.schedule",
    params={"queue_depth": 32},
    smoke=True,
    description="FR-FCFS candidate generation + pick over a 32-deep queue",
)
def _frfcfs():
    controller, requests = _queued_controller()
    scheduler = controller.scheduler
    entries = controller.read_queue.oldest_first()
    now = 200

    def schedule():
        cands = scheduler.candidates(entries, now)
        return scheduler.pick(cands, now)

    return schedule


@benchmark(
    "controller.next_event",
    params={"queue_depth": 32},
    smoke=True,
    description="fused (pick, wake) recompute over a 32-deep queue "
                "(the event heap's per-reschedule cost)",
)
def _next_event():
    controller, requests = _queued_controller()
    # Advance ``now`` every call: the fused pass is memoised per
    # (state version, cycle), so a fresh cycle measures the full
    # recompute, which is what each controller reschedule pays.
    clock = [200]

    def query():
        now = clock[0]
        clock[0] = now + 1
        return controller.next_event(now)

    return query


@benchmark(
    "core.decision.lookahead",
    params={"queue_depth": 32, "lookahead": 14},
    smoke=True,
    description="MiL rdyX look-ahead decision against a 32-deep queue",
)
def _decision():
    from ..core.config import MiLConfig
    from ..core.decision import MiLPolicy

    controller, requests = _queued_controller()
    policy = MiLPolicy(MiLConfig(lookahead=14))
    victim = requests[0]
    now = 200

    return lambda: policy.choose(controller, victim, now)


@benchmark(
    "audit.protocol.check",
    params={"schedules": 4, "requests": 24},
    description="ProtocolAuditor replay of 4 fuzzed controller command "
                "logs (audit-layer cost, paid only under --audit)",
)
def _protocol_audit():
    from ..audit.fuzz import combo_grid, fuzz_controller
    from ..audit.protocol import ProtocolAuditor

    # Fixed seeds over the first grid combos; the schedules run during
    # setup so the thunk measures only the audit replay.
    logs = []
    for i, (label, timing, geometry, schemes, page) in enumerate(
        combo_grid()[:4]
    ):
        mc, _done = fuzz_controller(
            timing, geometry, schemes, requests=24, seed=1000 + i,
            page_policy=page,
        )
        logs.append((
            ProtocolAuditor(mc.timing, geometry),
            list(mc.channel.command_log),
            list(mc.channel.transactions),
        ))

    def check():
        total = 0
        for auditor, commands, transactions in logs:
            total += len(auditor.audit(commands, transactions))
        return total

    return check


# ----------------------------------------------------------------------
# campaign.* — orchestration hot paths
# ----------------------------------------------------------------------
@benchmark(
    "campaign.fingerprint",
    smoke=True,
    description="cold model-source fingerprint (hash every model file)",
)
def _fingerprint():
    from ..campaign.fingerprint import model_fingerprint

    def fingerprint():
        model_fingerprint.cache_clear()
        return model_fingerprint()

    return fingerprint


@benchmark(
    "campaign.cache_key",
    smoke=True,
    description="content-addressed cache key from a RunSpec",
)
def _cache_key():
    from ..campaign.cache import cache_key
    from ..campaign.spec import RunSpec

    spec = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=4000)
    fingerprint = "0" * 16  # pinned: measures keying, not file hashing
    return lambda: cache_key(spec, fingerprint)


# ----------------------------------------------------------------------
# telemetry.* — the disabled-overhead contract, same protocol
# ----------------------------------------------------------------------
@benchmark(
    "telemetry.codec_disabled",
    params={"lines": _LINES, "scheme": "milc"},
    smoke=True,
    inner_ops=_LINES,
    description="milc kernel with telemetry globally off (repo default)",
)
def _codec_disabled():
    from .. import telemetry
    from ..coding.pipeline import line_zeros

    data = corpus.lines(_LINES)

    def kernel():
        previous = telemetry.set_enabled(False)
        try:
            return line_zeros("milc", data)
        finally:
            telemetry.set_enabled(previous)

    return kernel


@benchmark(
    "telemetry.codec_enabled",
    params={"lines": _LINES, "scheme": "milc"},
    smoke=True,
    inner_ops=_LINES,
    description="milc kernel with telemetry on and a live session",
)
def _codec_enabled():
    from .. import telemetry
    from ..coding.pipeline import line_zeros
    from ..telemetry import TelemetrySession

    data = corpus.lines(_LINES)

    def kernel():
        previous = telemetry.set_enabled(True)
        try:
            session = TelemetrySession()
            assert session is not None
            return line_zeros("milc", data)
        finally:
            telemetry.set_enabled(previous)

    return kernel


# ----------------------------------------------------------------------
# sim.* — end-to-end
# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# scenario.* / workloads.* — scenario-engine hot paths
# ----------------------------------------------------------------------
@benchmark(
    "scenario.compile",
    smoke=True,
    description="load + validate + compile the whole checked-in "
                "scenarios/ corpus into RunSpec matrices",
)
def _scenario_compile():
    from ..scenario import compile_scenario, discover, load_scenario

    paths = discover()

    def compile_corpus():
        total = 0
        for path in paths:
            total += len(compile_scenario(load_scenario(path)))
        return total

    return compile_corpus


@benchmark(
    "workloads.mixed_trace",
    params={"accesses_per_core": 500, "components": 2},
    smoke=True,
    description="synthesise one mixed-arrival GUPS/CG trace "
                "(per-core draws, payloads, poisson gaps)",
)
def _mixed_trace():
    from ..system.machine import SYSTEMS
    from ..workloads.mixed import MixSpec, build_mixed_trace

    config = SYSTEMS["ddr4-server"]
    mix = MixSpec.make({"GUPS": 0.6, "CG": 0.4}, zero_bias=0.25)
    return lambda: build_mixed_trace(
        mix, config, seed=0, accesses_per_core=500
    )


@benchmark(
    "sim.run_spec.gups",
    params={"benchmark": "GUPS", "policy": "mil", "accesses_per_core": 120},
    smoke=True,
    description="small end-to-end GUPS run (trace, simulate, energy)",
)
def _end_to_end():
    from ..campaign.spec import RunSpec
    from ..core.framework import run_spec

    spec = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=120)
    return lambda: run_spec(spec)


@benchmark(
    "sim.multi_channel.gups",
    params={"benchmark": "GUPS", "policy": "mil", "channels": 4,
            "accesses_per_core": 120},
    smoke=True,
    description="end-to-end GUPS run on a 4-channel variant (exercises "
                "the cross-channel event heap)",
)
def _end_to_end_multi_channel():
    from ..campaign.spec import RunSpec
    from ..core.framework import run_spec

    spec = RunSpec(
        benchmark="GUPS", policy="mil", accesses_per_core=120,
        system_overrides=(("channels", 4),),
    )
    return lambda: run_spec(spec)


# ----------------------------------------------------------------------
# serve.* — the campaign service over its wire protocol
# ----------------------------------------------------------------------
_SERVE_STATE: dict = {}


def _serve_state() -> dict:
    """One shared background service for the ``serve.*`` benchmarks.

    Started lazily (so merely collecting the suite stays free) with
    ``shards=0`` and the spec set executed once up front: every measured
    submission is a 100% cache hit, so the numbers isolate the wire
    protocol, job manager, and result store from simulation cost.  The
    handle's daemon thread dies with the bench process.
    """
    if not _SERVE_STATE:
        import tempfile
        from pathlib import Path

        from ..campaign.spec import RunSpec
        from ..serve.client import ServeClient
        from ..serve.server import start_in_thread
        from ..serve.service import ServiceConfig

        tmp = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
        handle = start_in_thread(
            ServiceConfig(store_root=tmp / "store", shards=0,
                          fingerprint="bench-fp"),
            socket_path=str(tmp / "serve.sock"),
        )
        client = ServeClient(handle.address)
        specs = [
            RunSpec(benchmark="GUPS", system="ddr4-server", policy="dbi",
                    accesses_per_core=80, seed=seed)
            for seed in range(4)
        ]
        warm = client.submit_specs(specs, namespace="bench", label="warm")
        done = client.wait(warm["id"])
        if done["state"] != "done":  # pragma: no cover — setup guard
            raise RuntimeError(f"serve bench warmup failed: {done}")
        _SERVE_STATE.update(
            handle=handle, client=client, specs=specs, warm_job=warm["id"]
        )
    return _SERVE_STATE


@benchmark(
    "serve.submit_roundtrip",
    params={"specs": 4, "transport": "unix-socket", "cache": "warm"},
    description="submit a fully-cached 4-spec job over the Unix-socket "
                "API and wait for its terminal descriptor",
)
def _serve_submit_roundtrip():
    state = _serve_state()
    client, specs = state["client"], state["specs"]

    def roundtrip():
        job = client.submit_specs(specs, namespace="bench")
        return client.wait(job["id"])["state"]

    return roundtrip


@benchmark(
    "serve.event_stream",
    params={"transport": "unix-socket"},
    description="backfill one completed job's RunEvent log over the "
                "NDJSON stream endpoint",
)
def _serve_event_stream():
    state = _serve_state()
    client, job_id = state["client"], state["warm_job"]
    return lambda: len(list(client.events(job_id)))

"""Transition signaling for the unterminated LPDDR3 interface.

Section 4.5 / 5.3 of the paper: on an unterminated bus the energy cost
is per *wire flip*, not per transmitted 0.  Transition signaling
re-expresses each logical bit as the presence or absence of a voltage
transition, which converts the flip-minimisation problem into the same
static-value problem the terminated DDR4 interface has.  The encoder is
a single XOR with the previous wire value per lane; the decoder XORs the
current and previous wire values (Figure 15).

Polarity: the paper states (Section 2.1.2) that transition signaling
"can make the number of bit flips on the bus equal to the number of
transmitted zeroes", i.e. a logical **0** is sent as a transition and a
logical **1** as no-change.  With that polarity, every zero-minimising
code (DBI, 3-LWC, MiLC, CAFO) minimises LPDDR3 flip energy unchanged.
The opposite polarity (flip-per-1) is also provided for completeness.
"""

from __future__ import annotations

import numpy as np

from .bitops import popcount_bytes

__all__ = ["TransitionSignaling"]


class TransitionSignaling:
    """Stateful per-lane transition encoder/decoder.

    Parameters
    ----------
    lanes:
        Number of parallel wires.
    flip_on:
        Which logical value is represented by a transition. The paper's
        MiL-on-LPDDR3 configuration uses ``0`` so that flips == zeros.
    """

    def __init__(self, lanes: int, flip_on: int = 0):
        if flip_on not in (0, 1):
            raise ValueError("flip_on must be 0 or 1")
        self.lanes = lanes
        self.flip_on = flip_on
        self._wire = np.zeros(lanes, dtype=np.uint8)

    @property
    def wire_state(self) -> np.ndarray:
        """Current voltage level on each lane (copy)."""
        return self._wire.copy()

    def reset(self, wire: np.ndarray | None = None) -> None:
        """Reset the lane state (all-low unless given)."""
        if wire is None:
            self._wire[:] = 0
        else:
            wire = np.asarray(wire, dtype=np.uint8)
            if wire.shape != (self.lanes,):
                raise ValueError(f"wire state must have shape ({self.lanes},)")
            self._wire = wire.copy()

    def _to_flips(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        return (1 - bits) if self.flip_on == 0 else bits

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode beats of logical bits into wire levels.

        ``bits`` has shape ``(n_beats, lanes)`` (or ``(lanes,)`` for a
        single beat).  Returns the wire level after each beat and advances
        the internal state.
        """
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        if bits.shape[-1] != self.lanes:
            raise ValueError(f"expected {self.lanes} lanes, got {bits.shape[-1]}")
        flips = self._to_flips(bits)
        # Cumulative XOR down the beat axis starting from the wire state.
        levels = np.bitwise_xor.accumulate(flips, axis=0)
        levels ^= self._wire
        self._wire = levels[-1].copy()
        return levels

    def decode(self, levels: np.ndarray, prev_wire: np.ndarray | None = None) -> np.ndarray:
        """Recover logical bits from a sequence of wire levels.

        ``prev_wire`` is the level before the first beat (all-low default).
        """
        levels = np.atleast_2d(np.asarray(levels, dtype=np.uint8))
        prev = (
            np.zeros(self.lanes, dtype=np.uint8)
            if prev_wire is None
            else np.asarray(prev_wire, dtype=np.uint8)
        )
        shifted = np.vstack([prev[None, :], levels[:-1]])
        flips = levels ^ shifted
        return (1 - flips) if self.flip_on == 0 else flips

    def count_flips(self, bits: np.ndarray) -> int:
        """Wire flips caused by transmitting ``bits`` (without state change).

        With the default polarity this equals the number of logical 0s,
        which is why LPDDR3 reuses the DDR4 zero counts wholesale.
        """
        return int(self._to_flips(np.asarray(bits, dtype=np.uint8)).sum())

    def count_flips_bytes(self, data: np.ndarray) -> int:
        """Wire flips for transmitting uint8 *bytes* (without state change).

        Byte-domain twin of :meth:`count_flips` for whole traces: never
        unpacks to bits — a popcount over the payload is the entire
        kernel.  Flip-on-0 pays for the 0 bits, flip-on-1 for the 1 bits.
        """
        data = np.asarray(data, dtype=np.uint8)
        ones = int(popcount_bytes(data.reshape(-1), axis=-1))
        if self.flip_on == 0:
            return data.size * 8 - ones
        return ones

"""Whole-system energy (cores + uncore + DRAM), McPAT-style.

The Figure 19 metric: system energy normalized to the DBI baseline.
Core energy splits execution time into *active* cycles (the trace's
think-time gaps, when the core is doing CPU work) and *stall* cycles
(waiting on memory), at different power levels; the uncore (shared L2,
interconnect, clock tree) burns constant power for the whole run.

This coarse model captures the couplings the paper's results hinge on:

* slowing the program (longer coded bursts) stretches every power rail
  over more seconds — the effect that made always-on 3-LWC a wash in
  Figure 2; and
* the *share* of system energy in DRAM decides how much of MiL's DRAM
  savings shows up at the system level (server 3.7 %, mobile 7 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..system.machine import SystemConfig
from ..system.simulator import SimulationResult
from ..workloads.trace import MemoryTrace
from .constants import SystemEnergyParams
from .dram_power import DramEnergyBreakdown

__all__ = ["SystemEnergyBreakdown", "SystemEnergyModel"]


@dataclass(frozen=True)
class SystemEnergyBreakdown:
    """Joules per system component."""

    cores: float
    uncore: float
    dram: DramEnergyBreakdown

    @property
    def total(self) -> float:
        return self.cores + self.uncore + self.dram.total

    @property
    def dram_share(self) -> float:
        total = self.total
        return self.dram.total / total if total else 0.0


class SystemEnergyModel:
    """Evaluates core/uncore energy around a DRAM breakdown."""

    def __init__(self, params: SystemEnergyParams, config: SystemConfig):
        self.params = params
        self.config = config

    def core_active_cycles(self, trace: MemoryTrace) -> list[int]:
        """Per-core DRAM cycles of genuine CPU work (the trace gaps)."""
        return [
            sum(rec.gap for rec in records)
            for records in trace.records_by_core
        ]

    def evaluate(
        self,
        result: SimulationResult,
        trace: MemoryTrace,
        dram: DramEnergyBreakdown,
    ) -> SystemEnergyBreakdown:
        p = self.params
        cycle_s = self.config.timing.cycle_ns * 1e-9
        run_s = result.cycles * cycle_s

        cores_j = 0.0
        active = self.core_active_cycles(trace)
        for core in range(self.config.cores):
            busy = active[core] if core < len(active) else 0
            busy_s = min(busy, result.cycles) * cycle_s
            cores_j += busy_s * p.core_active_w
            cores_j += (run_s - busy_s) * p.core_stall_w

        uncore_j = run_s * p.uncore_w
        return SystemEnergyBreakdown(cores=cores_j, uncore=uncore_j, dram=dram)

"""Stream prefetcher (Table 2: nstreams / distance / degree).

A classic multi-stream next-line prefetcher in the style of Srinath et
al. [HPCA 2007]: up to ``nstreams`` concurrently tracked streams, each
with a direction, a confirmation counter, and a prefetch frontier kept
``distance`` lines ahead of the demand stream; every confirming access
advances the frontier by ``degree`` lines.

Table 2 configures 64/32/4 for the Niagara-like server and 64/8/1 for
the Snapdragon-like mobile system.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StreamPrefetcher", "PrefetcherConfig"]

_MATCH_WINDOW = 16  # lines within which an access can join a stream
_TRAIN_THRESHOLD = 2  # confirmations before prefetching starts


@dataclass(frozen=True)
class PrefetcherConfig:
    """Stream prefetcher knobs (Table 2 row "Stream Prefetcher").

    ``spacing`` is the issue pacing in DRAM cycles: hardware prefetchers
    trickle their requests into the memory controller rather than
    dumping a whole degree-sized batch in one cycle, and that spacing is
    visible to MiL's look-ahead window (a batch of simultaneously-ready
    prefetches would block every long-code slot).
    """

    nstreams: int = 64
    distance: int = 32
    degree: int = 4
    spacing: int = 12


@dataclass
class _Stream:
    last_line: int
    direction: int  # +1 or -1
    confirmations: int
    frontier: int  # next line index to prefetch
    last_used: int  # for LRU stream replacement


class StreamPrefetcher:
    """Tracks access streams and emits prefetch line addresses."""

    def __init__(self, config: PrefetcherConfig, line_bytes: int = 64):
        self.config = config
        self.line_bytes = line_bytes
        self._streams: list[_Stream] = []
        self._tick = 0
        self.issued = 0

    def observe(self, address: int) -> list[int]:
        """Feed one demand access; returns line addresses to prefetch."""
        self._tick += 1
        line = address // self.line_bytes
        out: list[int] = []

        for stream in self._streams:
            delta = line - stream.last_line
            if delta == 0:
                stream.last_used = self._tick
                return out
            if 0 < abs(delta) <= _MATCH_WINDOW:
                direction = 1 if delta > 0 else -1
                if direction == stream.direction:
                    stream.confirmations += 1
                    stream.last_line = line
                    stream.last_used = self._tick
                    if stream.confirmations >= _TRAIN_THRESHOLD:
                        out = self._advance(stream, line)
                    return out
                # Direction flip: retrain the stream in the new direction.
                stream.direction = direction
                stream.confirmations = 1
                stream.last_line = line
                stream.frontier = line + direction
                stream.last_used = self._tick
                return out

        self._allocate(line)
        return out

    def _advance(self, stream: _Stream, line: int) -> list[int]:
        cfg = self.config
        limit = line + stream.direction * cfg.distance
        out = []
        for _ in range(cfg.degree):
            nxt = stream.frontier
            past_limit = (
                nxt > limit if stream.direction > 0 else nxt < limit
            )
            if past_limit:
                break
            behind = (
                nxt <= line if stream.direction > 0 else nxt >= line
            )
            if behind:
                stream.frontier = line + stream.direction
                nxt = stream.frontier
            out.append(nxt * self.line_bytes)
            stream.frontier = nxt + stream.direction
        self.issued += len(out)
        return out

    def _allocate(self, line: int) -> None:
        stream = _Stream(
            last_line=line,
            direction=1,
            confirmations=0,
            frontier=line + 1,
            last_used=self._tick,
        )
        if len(self._streams) >= self.config.nstreams:
            victim = min(range(len(self._streams)),
                         key=lambda i: self._streams[i].last_used)
            self._streams[victim] = stream
        else:
            self._streams.append(stream)

    @property
    def active_streams(self) -> int:
        return len(self._streams)

"""Property tests: MiLC's per-row selection is locally optimal.

The Figure 14 row encoder claims to pick, per row, the candidate with
the fewest transmitted zeros (mode bits included).  These tests pit the
implementation against brute force and against single-strategy
baselines, over random and adversarial blocks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coding import DBICode, MiLCCode
from repro.coding.bitops import zeros_in_bits

CODE = MiLCCode()

blocks = arrays(np.uint8, (64,), elements=st.integers(0, 1))


def brute_force_zeros(block: np.ndarray) -> int:
    """Exhaustive minimum over all candidate/mode/xorbi combinations."""
    square = block.reshape(8, 8)
    best_rows = []
    # Row 0: original/inverted only; its xor slot is the xorbi bit.
    for i in range(8):
        options = []
        row = square[i]
        prev = square[i - 1] if i > 0 else None
        # (body zeros, inv bit, xor bit); None marks row-0 xorbi slot.
        options.append((int(8 - row.sum()), 0, 0))
        options.append((int(row.sum()), 1, 0))
        if prev is not None:
            x = row ^ prev
            options.append((int(8 - x.sum()), 0, 1))
            options.append((int(x.sum()), 1, 1))
        best_rows.append(options)

    best_total = None
    import itertools

    for combo in itertools.product(*best_rows):
        body = sum(c[0] for c in combo)
        inv_zeros = sum(1 for c in combo if c[1] == 0)
        tail_ones = sum(c[2] for c in combo[1:])
        xor_zeros = min(7 - tail_ones, tail_ones + 1)
        total = body + inv_zeros + xor_zeros
        if best_total is None or total < best_total:
            best_total = total
    return best_total


class TestLocalOptimality:
    @settings(max_examples=60, deadline=None)
    @given(blocks)
    def test_count_close_to_brute_force(self, block):
        # The parallel row encoders pick per-row minima with *nominal*
        # mode costs; the xorbi pass then adjusts the xor column
        # globally, so the greedy result can trail the exhaustive
        # optimum by a few zeros (one per row in the worst case) — but
        # must never beat it, and must stay close.
        ours = int(CODE.count_zeros(block[None, :])[0])
        best = brute_force_zeros(block)
        assert best <= ours <= best + 6

    @settings(max_examples=100, deadline=None)
    @given(blocks)
    def test_beats_every_single_strategy(self, block):
        square = block.reshape(1, 8, 8).astype(np.uint8)
        ours = int(CODE.count_zeros(block[None, :])[0])

        # Strategy "always original": zeros + mode (0,0) everywhere.
        always_orig = int(64 - square.sum()) + 16 + 1
        # Strategy "always inverted": ones + mode (1,0) everywhere.
        always_inv = int(square.sum()) + 8 + 1
        assert ours <= always_orig
        assert ours <= always_inv

    @settings(max_examples=100, deadline=None)
    @given(blocks)
    def test_encode_and_count_agree(self, block):
        encoded = CODE.encode(block[None, :])
        assert int(zeros_in_bits(encoded)[0]) == int(
            CODE.count_zeros(block[None, :])[0]
        )


class TestAdversarialBlocks:
    def test_checkerboard(self):
        block = np.tile(np.array([0, 1] * 4 + [1, 0] * 4, dtype=np.uint8), 4)
        # Alternating rows: the xor candidates produce all-ones bodies,
        # leaving only row 0 and the inv-column mode bits to pay for.
        ours = int(CODE.count_zeros(block[None, :])[0])
        dbi = int(DBICode().count_zeros(block.reshape(8, 8)).sum())
        assert ours <= 12
        assert ours < dbi

    def test_single_zero_column(self):
        square = np.ones((8, 8), dtype=np.uint8)
        square[:, 3] = 0
        block = square.reshape(64)
        ours = int(CODE.count_zeros(block[None, :])[0])
        dbi = int(DBICode().count_zeros(block.reshape(8, 8)).sum())
        assert ours <= dbi

    def test_worst_case_bounded(self):
        # No block can cost more than the 80-bit codeword itself.
        rng = np.random.default_rng(41)
        worst = 0
        for _ in range(200):
            block = rng.integers(0, 2, 64, dtype=np.uint8)
            worst = max(worst, int(CODE.count_zeros(block[None, :])[0]))
        assert worst <= 40  # empirically ~36; codeword max is 80

"""Unit tests for the shared Figure 5 pending-cycles accrual helper.

A channel is "pending" when it has queued work *or* a burst's data tail
is still streaming on its bus (the denominator of Figure 5's pending
fraction).  Both simulator drivers charge jumps through
:func:`repro.system.simulator.accrue_pending_cycles`; these tests pin
its semantics across multi-cycle jumps — in particular the clipped
bus-tail case the event heap's long skips exercise — and its
telescoping property (splitting a jump anywhere charges the same
total), which is exactly what lets the event driver visit fewer cycles
than the lockstep oracle without the counters diverging.
"""

from __future__ import annotations

from repro.system.simulator import accrue_pending_cycles


class _FakeChannel:
    def __init__(self, bus_free_at: int):
        self.bus_free_at = bus_free_at


class _FakeController:
    def __init__(self, has_pending: bool, bus_free_at: int = 0):
        self.has_pending = has_pending
        self.channel = _FakeChannel(bus_free_at)


def test_queued_channel_charges_whole_jump():
    counters = [0]
    accrue_pending_cycles([_FakeController(True)], counters, 100, 175)
    assert counters == [75]


def test_idle_channel_with_no_tail_charges_nothing():
    counters = [0]
    accrue_pending_cycles(
        [_FakeController(False, bus_free_at=90)], counters, 100, 175
    )
    assert counters == [0]


def test_bus_tail_inside_jump_is_clipped_to_tail():
    # Queue empty, but the last burst streams until cycle 130: of the
    # 100 -> 175 jump only 30 cycles count as pending.
    counters = [0]
    accrue_pending_cycles(
        [_FakeController(False, bus_free_at=130)], counters, 100, 175
    )
    assert counters == [30]


def test_bus_tail_past_jump_charges_whole_jump():
    counters = [0]
    accrue_pending_cycles(
        [_FakeController(False, bus_free_at=500)], counters, 100, 175
    )
    assert counters == [75]


def test_per_channel_independence():
    controllers = [
        _FakeController(True),
        _FakeController(False, bus_free_at=110),
        _FakeController(False, bus_free_at=0),
    ]
    counters = [0, 0, 0]
    accrue_pending_cycles(controllers, counters, 100, 140)
    assert counters == [40, 10, 0]


def test_accrual_telescopes_over_event_free_split_points():
    """One long jump equals any chain of shorter jumps over static state.

    The controllers' state is untouched between sub-jumps (that is what
    "event-free" means), so the event heap's single 100 -> 175 charge
    must equal the lockstep loop's cycle-by-cycle accrual.
    """
    controllers = [
        _FakeController(True),
        _FakeController(False, bus_free_at=130),
    ]
    whole = [0, 0]
    accrue_pending_cycles(controllers, whole, 100, 175)

    split = [0, 0]
    for start in range(100, 175):
        accrue_pending_cycles(controllers, split, start, start + 1)
    assert split == whole

    halves = [0, 0]
    accrue_pending_cycles(controllers, halves, 100, 133)
    accrue_pending_cycles(controllers, halves, 133, 175)
    assert halves == whole

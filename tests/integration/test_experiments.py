"""Smoke tests for every experiment module (tiny scale).

The benchmark harness runs the experiments at full scale; here each one
is exercised end-to-end at a reduced scale so a broken experiment fails
fast in the unit suite.
"""

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.base import ExperimentResult

TINY = 600  # accesses per core


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestAnalyticExperiments:
    def test_fig01_io_share_near_paper(self):
        result = ALL_EXPERIMENTS["fig01"]()
        io = result.observations["ddr4_io_share"]
        assert 0.30 < io < 0.55  # paper: ~42%

    def test_table4_structure(self):
        result = ALL_EXPERIMENTS["table4"]()
        assert len(result.rows) == 4
        assert result.observations["max_latency_vs_cycle"] < 1.0

    def test_fig07_static_codes_beat_dbi(self):
        result = ALL_EXPERIMENTS["fig07"](accesses_per_core=TINY)
        assert result.observations["mean_(8,9)_vs_dbi"] < 1.0
        # Wider codes never worse: compare (8,9) and (8,17) columns.
        w9 = result.column("(8,9)")
        w17 = result.column("(8,17)")
        assert all(b <= a + 1e-9 for a, b in zip(w9, w17))


class TestSimulationExperiments:
    def test_fig02_shape(self):
        result = ALL_EXPERIMENTS["fig02"](accesses_per_core=TINY)
        for row in result.rows:
            _, exec_t, io, _sys = row[0], row[1], row[2], row[3]
            assert exec_t >= 1.0  # always-on 3-LWC never speeds up
            assert io < 1.0  # ... but always cuts IO energy

    def test_fig04_bucket_fractions(self):
        result = ALL_EXPERIMENTS["fig04"](accesses_per_core=TINY)
        for row in result.rows:
            assert sum(row[1:]) == pytest.approx(1.0)

    def test_fig05_fractions(self):
        result = ALL_EXPERIMENTS["fig05"](accesses_per_core=TINY)
        for row in result.rows:
            assert sum(row[1:]) == pytest.approx(1.0)

    def test_fig06_slack_never_exceeds_gaps(self):
        gaps = ALL_EXPERIMENTS["fig04"](accesses_per_core=TINY)
        slack = ALL_EXPERIMENTS["fig06"](accesses_per_core=TINY)
        # Slack-0 fraction >= gap-0 fraction (turnaround only shrinks).
        for grow, srow in zip(gaps.rows, slack.rows):
            assert srow[1] >= grow[1] - 1e-9

    def test_fig17_mil_below_one(self):
        result = ALL_EXPERIMENTS["fig17"](accesses_per_core=TINY)
        mil = result.column("mil")
        assert np.mean(mil) < 0.85

    def test_fig20_monotone_slowdown(self):
        result = ALL_EXPERIMENTS["fig20"](accesses_per_core=TINY)
        means = [result.observations[f"mean_BL{bl}"] for bl in (10, 12, 14, 16)]
        assert means[-1] >= means[0]

    def test_fig22_shares_sum(self):
        result = ALL_EXPERIMENTS["fig22"](accesses_per_core=TINY)
        for row in result.rows:
            assert row[1] + row[2] == pytest.approx(1.0, abs=1e-6)


class TestResultContainer:
    def test_format_and_accessors(self):
        r = ExperimentResult(
            experiment="x", title="T", headers=["a", "b"],
            rows=[["r1", 1.0], ["r2", 2.0]], paper_claim="c",
            observations={"k": 1.234},
        )
        text = r.format()
        assert "T" in text and "paper: c" in text and "1.234" in text
        assert r.column("b") == [1.0, 2.0]
        assert r.row_for("r2") == ["r2", 2.0]
        with pytest.raises(KeyError):
            r.row_for("r3")

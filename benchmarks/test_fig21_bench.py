"""Benchmark target: Figure 21 look-ahead distance sweep.

Regenerates the paper's fig21 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig21_lookahead import run_experiment


def test_fig21(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

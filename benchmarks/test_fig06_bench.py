"""Benchmark target: Figure 6 slack distribution.

Regenerates the paper's fig06 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig06_slack import run_experiment


def test_fig06(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

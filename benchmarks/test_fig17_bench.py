"""Benchmark target: Figure 17 zeros vs DBI.

Regenerates the paper's fig17 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig17_zeroes import run_experiment


def test_fig17(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

"""Mixed-traffic synthesis: canonical names, determinism, dispatch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.machine import NIAGARA_SERVER
from repro.workloads import (
    MixNameError,
    MixSpec,
    biased_mix,
    build_mixed_trace,
    build_trace,
    is_mix_name,
    known_benchmark,
    validate_benchmark,
)


class TestMixSpec:
    def test_name_round_trips(self):
        mix = MixSpec.make({"gups": 0.6, "cg": 0.4},
                           arrival="poisson", mean_gap=40)
        assert mix.name == "MIX@POISSON:40@Z:0@CG:0.4+GUPS:0.6"
        assert MixSpec.parse(mix.name) == mix
        assert MixSpec.parse(mix.name).name == mix.name

    def test_name_survives_uppercasing(self):
        # RunSpec normalises benchmarks to uppercase; the mix name is
        # the spec's benchmark field, so upper() must be a no-op.
        mix = MixSpec.make({"CG": 1, "GUPS": 3}, arrival="bursty",
                           mean_gap=48.5, burst=4, zero_bias=-0.25)
        assert mix.name == mix.name.upper()
        assert MixSpec.parse(mix.name.lower()) == mix

    def test_weights_normalised_and_sorted(self):
        mix = MixSpec.make({"SWIM": 2.0, "ART": 6.0})
        assert [b for b, _ in mix.components] == ["ART", "SWIM"]
        assert mix.weights() == pytest.approx([0.75, 0.25])

    def test_bursty_name_carries_burst(self):
        mix = MixSpec.make({"GUPS": 1}, arrival="bursty", burst=16)
        assert ":16@" in mix.name
        assert MixSpec.parse(mix.name).burst == 16

    def test_unknown_component_lists_known_names(self):
        with pytest.raises(KeyError, match="GUPS"):
            MixSpec.make({"NOPE": 1.0})

    def test_bad_parameters_rejected(self):
        with pytest.raises(MixNameError):
            MixSpec.make({"GUPS": 1}, arrival="fractal")
        with pytest.raises(MixNameError):
            MixSpec.make({"GUPS": -1})
        with pytest.raises(MixNameError):
            MixSpec.make({"GUPS": 1}, mean_gap=-5)
        with pytest.raises(MixNameError):
            MixSpec.make({"GUPS": 1}, zero_bias=1.5)
        with pytest.raises(MixNameError):
            MixSpec.make({})

    def test_malformed_names_rejected(self):
        for bad in (
            "MIX@POISSON:40@CG:1.0",            # missing Z section
            "MIX@POISSON@Z:0@CG:1",             # arrival without gap
            "MIX@POISSON:40@Z:x@CG:1",          # unparsable bias
            "MIX@POISSON:40@Z:0@CG",            # component without weight
        ):
            with pytest.raises(MixNameError):
                MixSpec.parse(bad)

    def test_is_mix_name(self):
        assert is_mix_name("mix@poisson:40@z:0@gups:1")
        assert not is_mix_name("GUPS")


class TestBenchmarkValidation:
    def test_table3_and_mix_names_known(self):
        assert known_benchmark("GUPS")
        assert known_benchmark("gups")
        assert known_benchmark("MIX@POISSON:40@Z:0@GUPS:1")
        assert not known_benchmark("NOPE")
        assert not known_benchmark("MIX@POISSON:40@NOT-A-MIX")

    def test_validate_unknown_lists_suite(self):
        with pytest.raises(KeyError, match="MIX@"):
            validate_benchmark("NOPE")


class TestBuildMixedTrace:
    def config(self):
        return NIAGARA_SERVER

    def test_same_seed_same_digest(self):
        mix = MixSpec.make({"GUPS": 0.5, "CG": 0.5})
        a = build_mixed_trace(mix, self.config(), seed=3,
                              accesses_per_core=64)
        b = build_mixed_trace(mix, self.config(), seed=3,
                              accesses_per_core=64)
        assert a.line_digest == b.line_digest
        assert [r.gap for r in a.records_by_core[0]] == [
            r.gap for r in b.records_by_core[0]
        ]

    def test_different_seed_different_digest(self):
        mix = MixSpec.make({"GUPS": 0.5, "CG": 0.5})
        a = build_mixed_trace(mix, self.config(), seed=3,
                              accesses_per_core=64)
        b = build_mixed_trace(mix, self.config(), seed=4,
                              accesses_per_core=64)
        assert a.line_digest != b.line_digest

    def test_record_shape_and_stats(self):
        mix = MixSpec.make({"GUPS": 1}, arrival="uniform", mean_gap=20)
        trace = build_mixed_trace(mix, self.config(),
                                  accesses_per_core=100)
        cores = self.config().cores
        assert len(trace.records_by_core) == cores
        assert trace.cpu_accesses == 100 * cores
        assert trace.line_data.shape == (100 * cores, 64)
        assert trace.stats["mixed"] is True
        assert trace.stats["arrival"] == "uniform"
        ids = [r.line_id for recs in trace.records_by_core for r in recs]
        assert ids == list(range(100 * cores))

    def test_minimum_record_floor(self):
        mix = MixSpec.make({"GUPS": 1})
        trace = build_mixed_trace(mix, self.config(), accesses_per_core=5)
        assert all(len(r) >= 64 for r in trace.records_by_core)

    def test_zero_bias_shifts_zero_density(self):
        rich = build_mixed_trace(
            MixSpec.make({"CG": 1}, zero_bias=0.8), self.config(),
            accesses_per_core=64,
        )
        poor = build_mixed_trace(
            MixSpec.make({"CG": 1}, zero_bias=-0.8), self.config(),
            accesses_per_core=64,
        )
        zero_fraction = lambda t: (t.line_data == 0).all(axis=1).mean()
        assert zero_fraction(rich) > zero_fraction(poor) + 0.3

    def test_build_trace_dispatches_mix_names(self):
        name = "MIX@POISSON:40@Z:0@CG:0.5+GUPS:0.5"
        via_dispatch = build_trace(name, self.config(),
                                   accesses_per_core=64)
        direct = build_mixed_trace(MixSpec.parse(name), self.config(),
                                   accesses_per_core=64)
        assert via_dispatch.line_digest == direct.line_digest
        assert via_dispatch.name == name


class TestMixedTraceProperties:
    """Hypothesis sweeps of the cache-critical determinism contract."""

    @given(
        seed=st.integers(0, 2**16),
        arrival=st.sampled_from(("poisson", "uniform", "bursty")),
        zero_bias=st.sampled_from((-0.5, 0.0, 0.5)),
    )
    @settings(max_examples=8, deadline=None)
    def test_same_seed_byte_identical_digest(self, seed, arrival,
                                             zero_bias):
        mix = MixSpec.make({"GUPS": 0.7, "CG": 0.3}, arrival=arrival,
                           mean_gap=24, zero_bias=zero_bias)
        build = lambda: build_mixed_trace(
            mix, NIAGARA_SERVER, seed=seed, accesses_per_core=64
        )
        a, b = build(), build()
        assert a.line_digest == b.line_digest
        assert np.array_equal(a.line_data, b.line_data)

    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=8, deadline=None)
    def test_different_seeds_different_digest(self, seed):
        mix = MixSpec.make({"GUPS": 0.7, "CG": 0.3})
        a = build_mixed_trace(mix, NIAGARA_SERVER, seed=seed,
                              accesses_per_core=64)
        b = build_mixed_trace(mix, NIAGARA_SERVER, seed=seed + 1,
                              accesses_per_core=64)
        assert a.line_digest != b.line_digest


class TestBiasedMix:
    def test_zero_bias_is_identity(self):
        mix = {"zero": 0.3, "random": 0.7}
        assert biased_mix(mix, 0.0) == pytest.approx(mix)

    def test_positive_bias_monotone_in_zero_weight(self):
        mix = {"zero": 0.2, "random": 0.8}
        low = biased_mix(mix, 0.2)["zero"]
        high = biased_mix(mix, 0.8)["zero"]
        assert 0.2 < low < high
        assert biased_mix(mix, 1.0) == pytest.approx({"zero": 1.0})

    def test_negative_bias_drains_zero_weight(self):
        mix = {"zero": 0.5, "random": 0.5}
        out = biased_mix(mix, -1.0)
        assert "zero" not in out
        assert sum(out.values()) == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            biased_mix({"zero": 1.0}, 1.5)

"""Optimal static (8, n) limited-weight codes — the Figure 7 potential study.

Section 3.2 of the paper asks how much headroom exists beyond DBI if one
could afford arbitrary *static* codes: a code "(8, n)" optimally maps
each 8-bit data pattern to a unique n-bit codeword "according to the
frequency of different data patterns".  The optimal assignment is
greedy: sort the 256 byte values by how often they occur in the
application's memory traffic, sort all n-bit codewords by ascending
zero count (descending Hamming weight), and pair them off — the most
frequent byte gets the codeword with the fewest 0s.

Such codes are impractical to implement (the paper notes a lookup-table
codec has "exorbitant capacity overheads"), which is exactly why MiL
adopts algorithmic codes instead; this module exists to reproduce the
potential study.
"""

from __future__ import annotations

from itertools import combinations, islice
from math import comb

import numpy as np

from .base import CodingScheme

__all__ = ["OptimalStaticLWC", "codeword_zero_levels", "byte_frequencies"]


def byte_frequencies(data: np.ndarray) -> np.ndarray:
    """Empirical probability of each byte value in a data corpus."""
    data = np.asarray(data, dtype=np.uint8).ravel()
    if data.size == 0:
        raise ValueError("empty corpus")
    counts = np.bincount(data, minlength=256).astype(np.float64)
    return counts / counts.sum()


def codeword_zero_levels(n_bits: int, n_codewords: int = 256) -> np.ndarray:
    """Zero count of the i-th best n-bit codeword, for i < n_codewords.

    Codewords sorted by ascending zero count: one all-ones codeword
    (0 zeros), then ``C(n, 1)`` with a single zero, ``C(n, 2)`` with two,
    and so on.  Only the *counts* matter for energy, so this avoids
    materialising codewords.
    """
    if n_bits < 8:
        raise ValueError("need at least 8 bits to host 256 codewords")
    levels = np.empty(n_codewords, dtype=np.int64)
    filled = 0
    zeros = 0
    while filled < n_codewords:
        take = min(comb(n_bits, zeros), n_codewords - filled)
        levels[filled : filled + take] = zeros
        filled += take
        zeros += 1
    return levels


class OptimalStaticLWC(CodingScheme):
    """Frequency-optimal static (8, n) code fitted to a data corpus.

    Parameters
    ----------
    n_bits:
        Codeword width (the paper sweeps 9..17 in Figure 7).
    frequencies:
        Byte-value probabilities (length 256).  Uniform if omitted.
    """

    data_bits = 8

    def __init__(self, n_bits: int, frequencies: np.ndarray | None = None):
        if n_bits < 9 or n_bits > 32:
            raise ValueError("n_bits must be in [9, 32]")
        self.code_bits = n_bits
        self.name = f"opt-lwc-8-{n_bits}"
        self.extra_latency_cycles = 1

        if frequencies is None:
            frequencies = np.full(256, 1.0 / 256)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (256,):
            raise ValueError("frequencies must have length 256")
        self.frequencies = frequencies

        # Most frequent byte -> codeword with the fewest zeros.  Stable
        # sort keeps the mapping deterministic across runs.
        order = np.argsort(-frequencies, kind="stable")
        levels = codeword_zero_levels(n_bits)
        self._zeros_by_byte = np.empty(256, dtype=np.int64)
        self._zeros_by_byte[order] = levels
        self._rank_by_byte = np.empty(256, dtype=np.int64)
        self._rank_by_byte[order] = np.arange(256)
        self._codewords: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Explicit codeword table (built lazily; zero counting never needs it)
    # ------------------------------------------------------------------
    def _build_codewords(self) -> np.ndarray:
        if self._codewords is None:
            words = np.empty((256, self.code_bits), dtype=np.uint8)
            produced = 0
            zeros = 0
            while produced < 256:
                for zero_positions in islice(
                    combinations(range(self.code_bits), zeros), 256 - produced
                ):
                    word = np.ones(self.code_bits, dtype=np.uint8)
                    word[list(zero_positions)] = 0
                    words[produced] = word
                    produced += 1
                zeros += 1
            self._codewords = words
            # Packed-integer reverse index: decode is one searchsorted
            # over 256 keys instead of an O(n x 256) broadcast match.
            weights = 1 << np.arange(self.code_bits, dtype=np.int64)[::-1]
            keys = (words.astype(np.int64) * weights).sum(axis=-1)
            order = np.argsort(keys)
            self._sorted_keys = keys[order]
            self._sorted_ranks = order.astype(np.int64)
        return self._codewords

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        byte_vals = np.packbits(data_bits.reshape(-1, 8), axis=-1).ravel()
        words = self._build_codewords()
        return words[self._rank_by_byte[byte_vals]].reshape(lead + (self.code_bits,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        flat = code_bits.reshape(-1, self.code_bits)
        self._build_codewords()
        # Static codes are a pure lookup at heart; this decode path
        # exists for verification, so a packed-key binary search is all
        # the "circuit" it needs.
        weights = 1 << np.arange(self.code_bits, dtype=np.int64)[::-1]
        keys = (flat.astype(np.int64) * weights).sum(axis=-1)
        slots = np.minimum(
            np.searchsorted(self._sorted_keys, keys),
            self._sorted_keys.size - 1,
        )
        if not (self._sorted_keys[slots] == keys).all():
            raise ValueError("codeword not in the static code table")
        ranks = self._sorted_ranks[slots]
        byte_for_rank = np.empty(256, dtype=np.uint8)
        byte_for_rank[self._rank_by_byte] = np.arange(256, dtype=np.uint8)
        byte_vals = byte_for_rank[ranks]
        bits = np.unpackbits(byte_vals[:, None], axis=1)
        return bits.reshape(lead + (8,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.shape[-1] % 8 != 0:
            raise ValueError("static LWC zero counting needs whole bytes")
        byte_vals = np.packbits(data_bits, axis=-1)
        return self._zeros_by_byte[byte_vals].sum(axis=-1)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zero count straight from uint8 byte values (fast path)."""
        data = np.asarray(data, dtype=np.uint8)
        return self._zeros_by_byte[data].sum(axis=-1)

    def expected_zeros_per_byte(self) -> float:
        """Corpus-weighted mean zeros per transmitted byte."""
        return float((self.frequencies * self._zeros_by_byte).sum())

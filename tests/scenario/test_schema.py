"""Scenario schema: strict validation, canonical form, digests."""

import json

import pytest

from repro.scenario import (
    SCHEMA_VERSION,
    ScenarioError,
    load_scenario,
    normalized,
    parse_scenario,
    scenario_digest,
)


def doc(**overrides):
    base = {
        "schema": SCHEMA_VERSION,
        "name": "SYN-TEST",
        "description": "test scenario",
        "seed": 0,
        "accesses_per_core": 100,
        "arrival": {"kind": "poisson", "mean_gap": 40},
        "mix": {"GUPS": 0.5, "CG": 0.5},
        "grid": {"policy": ["dbi", "mil"]},
    }
    base.update(overrides)
    return {k: v for k, v in base.items() if v is not None}


class TestValidation:
    def test_valid_document_parses(self):
        scn = parse_scenario(doc())
        assert scn.name == "SYN-TEST"
        assert scn.run_count == 2
        assert scn.mix == (("CG", 0.5), ("GUPS", 0.5))
        assert scn.arrival.kind == "poisson"

    def test_rejects_non_mapping(self):
        with pytest.raises(ScenarioError, match="mapping"):
            parse_scenario(["not", "a", "dict"])

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown top-level"):
            parse_scenario(doc(extra_knob=1))

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(ScenarioError, match="schema"):
            parse_scenario(doc(schema="repro.scenario/v99"))

    def test_rejects_bad_name(self):
        with pytest.raises(ScenarioError, match="name"):
            parse_scenario(doc(name="no spaces allowed"))

    def test_rejects_unknown_mix_benchmark(self):
        with pytest.raises(ScenarioError, match="NOPE"):
            parse_scenario(doc(mix={"NOPE": 1.0}))

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ScenarioError, match="weight"):
            parse_scenario(doc(mix={"GUPS": 0}))

    def test_rejects_unknown_arrival_kind(self):
        with pytest.raises(ScenarioError, match="arrival.kind"):
            parse_scenario(
                doc(arrival={"kind": "fractal", "mean_gap": 10})
            )

    def test_rejects_unknown_grid_axis(self):
        with pytest.raises(ScenarioError, match="grid axis"):
            parse_scenario(doc(grid={"voltage": [1, 2]}))

    def test_rejects_unknown_grid_policy(self):
        with pytest.raises(ScenarioError, match="policy"):
            parse_scenario(doc(grid={"policy": ["nope"]}))

    def test_rejects_unknown_grid_system(self):
        with pytest.raises(ScenarioError, match="system"):
            parse_scenario(doc(grid={"system": ["pdp-11"]}))

    def test_rejects_duplicate_grid_values(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            parse_scenario(doc(grid={"zero_bias": [0, 0.0]}))

    def test_rejects_out_of_range_bias(self):
        with pytest.raises(ScenarioError, match="zero_bias"):
            parse_scenario(doc(data={"zero_bias": 2.0}))

    def test_mixed_traffic_requires_arrival(self):
        with pytest.raises(ScenarioError, match="arrival"):
            parse_scenario(doc(arrival=None))

    def test_plain_single_benchmark_needs_no_arrival(self):
        scn = parse_scenario(doc(arrival=None, mix={"GUPS": 1.0}))
        assert scn.arrival is None

    def test_burst_axis_requires_bursty_arrival(self):
        with pytest.raises(ScenarioError, match="bursty"):
            parse_scenario(doc(grid={"burst": [4, 8]}))

    def test_grid_in_canonical_axis_order(self):
        scn = parse_scenario(doc(grid={
            "zero_bias": [0.5], "policy": ["mil"], "system": ["ddr4-server"],
        }, data={"zero_bias": 0.1}))
        assert [axis for axis, _ in scn.grid] == [
            "system", "policy", "zero_bias"
        ]


class TestLoading:
    def test_yaml_and_json_agree(self, tmp_path):
        d = doc()
        ypath = tmp_path / "s.yaml"
        ypath.write_text(
            "schema: repro.scenario/v1\n"
            "name: SYN-TEST\n"
            "description: test scenario\n"
            "seed: 0\n"
            "accesses_per_core: 100\n"
            "arrival: {kind: poisson, mean_gap: 40}\n"
            "mix: {GUPS: 0.5, CG: 0.5}\n"
            "grid:\n  policy: [dbi, mil]\n"
        )
        jpath = tmp_path / "s.json"
        jpath.write_text(json.dumps(d))
        y, j = load_scenario(ypath), load_scenario(jpath)
        assert normalized(y) == normalized(j)
        assert scenario_digest(y) == scenario_digest(j)

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc(schema="nope")))
        with pytest.raises(ScenarioError, match="bad.json"):
            load_scenario(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text("x = 1")
        with pytest.raises(ScenarioError, match="yaml"):
            load_scenario(path)


class TestDigest:
    def test_digest_ignores_key_order(self):
        a = parse_scenario(doc())
        flipped = dict(reversed(list(doc().items())))
        b = parse_scenario(flipped)
        assert scenario_digest(a) == scenario_digest(b)

    def test_digest_tracks_content(self):
        a = parse_scenario(doc())
        b = parse_scenario(doc(seed=1))
        assert scenario_digest(a) != scenario_digest(b)

"""The fixed-seed corpus: pinned content, category mix, immutability."""

import numpy as np
import pytest

from repro.bench.corpus import LINE_BYTES, corpus_digest, lines


def test_shape_and_dtype():
    data = lines(300)
    assert data.shape == (300, LINE_BYTES)
    assert data.dtype == np.uint8


def test_deterministic_across_calls():
    lines.cache_clear()
    first = lines(256).copy()
    lines.cache_clear()
    assert np.array_equal(lines(256), first)


def test_digest_is_stable_for_this_session():
    assert corpus_digest(128) == corpus_digest(128)


def test_category_mix():
    n = 2048
    data = lines(n)
    third = n // 3
    dense = data[:third]
    sparse = data[third: 2 * third]
    correlated = data[2 * third:]
    # Dense random bytes are ~0.6% zero bytes; the sparse third is ~85%.
    assert (dense == 0).mean() < 0.05
    assert (sparse == 0).mean() > 0.7
    # Correlated lines tile an 8-byte pattern with one perturbed byte,
    # so each line has at most 8 + 1 distinct byte values.
    distinct = [len(set(row.tolist())) for row in correlated[:50]]
    assert max(distinct) <= 9


def test_read_only():
    data = lines(64)
    with pytest.raises(ValueError):
        data[0, 0] = 1


def test_too_small_rejected():
    with pytest.raises(ValueError):
        lines(2)

"""``repro.telemetry`` — zero-overhead-when-off observability.

The subsystem has four pieces (see ``docs/OBSERVABILITY.md``):

:class:`MetricRegistry`
    Hierarchically named counters, gauges, and fixed-bucket histograms
    (``controller.ch0.rdq.occupancy``, ``core.ch0.decision.long``).
:class:`TraceBuffer`
    A bounded, cycle-stamped ring of bus/decision/phase events.
:mod:`~repro.telemetry.probes`
    The objects wired into the controller, DRAM channel, MiL policy,
    and campaign runner.  Wiring happens once, at construction time;
    with no session attached every instrumentation site is a single
    ``is None`` test, so the disabled fast path is unchanged.
:mod:`~repro.telemetry.export`
    JSON-lines metrics dumps and Chrome trace-event files (Perfetto).

The module-level enabled flag is the one switch the CLI flips for
``--telemetry``; library callers may also construct a
:class:`TelemetrySession` directly and pass it down, which needs no
global state at all.
"""

from __future__ import annotations

import os

from .clock import monotonic_ts
from .export import (
    chrome_trace_events,
    load_metrics_jsonl,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .probes import CampaignProbe, ChannelProbe, PhaseTimer, ServiceProbe
from .registry import Counter, Gauge, Histogram, MetricRegistry
from .session import TelemetrySession
from .trace import TraceBuffer, TraceEvent

__all__ = [
    "CampaignProbe",
    "ChannelProbe",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "PhaseTimer",
    "ServiceProbe",
    "TelemetrySession",
    "TraceBuffer",
    "TraceEvent",
    "chrome_trace_events",
    "enabled",
    "load_metrics_jsonl",
    "monotonic_ts",
    "session_if_enabled",
    "set_enabled",
    "write_chrome_trace",
    "write_metrics_jsonl",
]

# Checked once at wiring time (never per event).  Defaults to off; the
# REPRO_TELEMETRY environment variable pre-enables it for whole-process
# runs (e.g. campaign workers), the CLI's --telemetry flag flips it for
# one command.
_ENABLED = bool(os.environ.get("REPRO_TELEMETRY"))


def enabled() -> bool:
    """Is telemetry globally enabled for this process?"""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the global switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def session_if_enabled(**kwargs) -> TelemetrySession | None:
    """A fresh :class:`TelemetrySession` when enabled, else ``None``.

    The ``None`` is what keeps the disabled path free: components wired
    with no session never construct probes, so their instrumentation
    sites reduce to one identity comparison.
    """
    if not _ENABLED:
        return None
    return TelemetrySession(**kwargs)

"""Corner-case tests for the DRAM channel constraint engine."""

import pytest

from repro.dram import (
    DDR3_1600,
    DDR4_3200,
    DDR4_GEOMETRY,
    CommandType,
    DRAMChannel,
)

ACT, PRE, RD, WR = (
    CommandType.ACTIVATE, CommandType.PRECHARGE,
    CommandType.READ, CommandType.WRITE,
)


class TestFAWWindow:
    def open_four(self, ch, start=0):
        t = start
        for bank in range(4):
            t = ch.earliest_issue(ACT, 0, 0, bank, t)
            ch.issue(ACT, 0, 0, bank, t, row=1)
        return t

    def test_window_slides(self):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        t_last = self.open_four(ch)
        first = ch.ranks[0].act_history[0]
        fifth_at = ch.earliest_issue(ACT, 0, 1, 0, t_last)
        assert fifth_at >= first + DDR4_3200.FAW
        # After the window passes, the next ACT is RRD-limited only.
        ch.issue(ACT, 0, 1, 0, fifth_at, row=1)
        sixth_at = ch.earliest_issue(ACT, 0, 1, 1, fifth_at)
        second = ch.ranks[0].act_history[1]
        assert sixth_at >= second + DDR4_3200.FAW or (
            sixth_at >= fifth_at + DDR4_3200.RRD_S
        )

    def test_faw_is_per_rank(self):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        t_last = self.open_four(ch)
        # The *other* rank is unconstrained by this rank's window.
        assert ch.earliest_issue(ACT, 1, 0, 0, t_last) == t_last


class TestWriteToWrite:
    def test_back_to_back_writes_ccd_limited(self):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(ACT, 0, 1, 0, DDR4_3200.RRD_S, row=1)
        t = DDR4_3200.RRD_S + DDR4_3200.RCD
        ch.issue(WR, 0, 0, 0, t)
        # Write-to-write has no WTR penalty: only CCD spacing.
        cross = ch.earliest_issue(WR, 0, 1, 0, t)
        assert cross == t + DDR4_3200.CCD_S

    def test_wtr_does_not_block_same_direction(self):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        t = DDR4_3200.RCD
        end = ch.issue(WR, 0, 0, 0, t)
        nxt_wr = ch.earliest_issue(WR, 0, 0, 0, t)
        nxt_rd = ch.earliest_issue(RD, 0, 0, 0, t)
        assert nxt_wr < nxt_rd  # WTR penalises only the turnaround
        assert nxt_rd >= end + DDR4_3200.WTR_L


class TestDDR3Generation:
    def test_no_bank_group_distinction(self):
        assert DDR3_1600.CCD_S == DDR3_1600.CCD_L
        assert DDR3_1600.RRD_S == DDR3_1600.RRD_L

    def test_ddr4_added_constraints(self):
        # Section 3.1: DDR4's bank groups made same-group spacing worse
        # than DDR3's flat spacing at the same clock-relative scale.
        assert DDR4_3200.CCD_L > DDR4_3200.CCD_S
        assert DDR4_3200.WTR_L > DDR4_3200.WTR_S


class TestBurstLengthInteraction:
    @pytest.mark.parametrize("bus_cycles", [4, 5, 6, 7, 8])
    def test_spacing_tracks_burst(self, bus_cycles):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(ACT, 0, 1, 0, DDR4_3200.RRD_S, row=1)
        t = DDR4_3200.RRD_S + DDR4_3200.RCD
        ch.issue(RD, 0, 0, 0, t, bus_cycles=bus_cycles)
        cross = ch.earliest_issue(RD, 0, 1, 0, t)
        assert cross == t + max(DDR4_3200.CCD_S, bus_cycles)

    def test_beat_counters(self):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        t = DDR4_3200.RCD
        ch.issue(RD, 0, 0, 0, t, bus_cycles=8)
        assert ch.read_beats == 16  # DDR: two beats per cycle

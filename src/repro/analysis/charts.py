"""Terminal bar charts for experiment results.

Matplotlib is deliberately not a dependency; these render the paper's
bar-group figures as unicode bars so ``python -m repro experiment fig17
--chart`` is self-contained anywhere.
"""

from __future__ import annotations

__all__ = ["bar_chart", "grouped_bars"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = max(0.0, value / scale) * width
    full = int(cells)
    frac = cells - full
    partial = _BLOCKS[int(frac * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * min(full, width) + partial


def bar_chart(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
    reference: float | None = None,
) -> str:
    """One horizontal bar per label.

    ``reference`` draws a marker column at that value (e.g. 1.0 for
    "normalized to baseline" figures).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    scale = max([*values, reference or 0.0, 1e-12])
    label_w = max((len(str(lab)) for lab in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _bar(value, scale, width)
        line = f"{str(label).ljust(label_w)} |{bar.ljust(width)}| {value:.3f}"
        if reference is not None:
            mark = min(width - 1, int(reference / scale * width))
            chars = list(line)
            pos = label_w + 2 + mark
            if 0 <= pos < len(chars) and chars[pos] == " ":
                chars[pos] = "·"
            line = "".join(chars)
        lines.append(line)
    return "\n".join(lines)


def grouped_bars(
    group_labels: list[str],
    series: dict[str, list[float]],
    title: str = "",
    width: int = 32,
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series."""
    lines = [title] if title else []
    series_w = max((len(s) for s in series), default=0)
    flat = [v for values in series.values() for v in values]
    scale = max([*flat, 1e-12])
    for i, group in enumerate(group_labels):
        lines.append(str(group))
        for name, values in series.items():
            bar = _bar(values[i], scale, width)
            lines.append(
                f"  {name.ljust(series_w)} |{bar.ljust(width)}| "
                f"{values[i]:.3f}"
            )
    return "\n".join(lines)

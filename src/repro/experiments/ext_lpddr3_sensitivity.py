"""Extension: the LPDDR3 sensitivity studies the paper omits for brevity.

Section 7.5 opens with "Sensitivity studies were performed on both DDR4
and LPDDR3 systems.  Only the DDR4 results are shown here for brevity;
the LPDDR3 based system exhibits similar characteristics."  This
experiment runs the three DDR4 sensitivity studies (fixed burst length,
look-ahead distance, scheme mix) on the mobile system and checks the
claim: same orderings, same shapes.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..coding.registry import scheme_info
from ..system.machine import SNAPDRAGON_MOBILE
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]

BURST_POLICIES = tuple(
    (policy, scheme_info(policy).burst_length)
    for policy in ("milc", "bl12", "bl14", "3lwc")
)
LOOKAHEADS = (0, 4, 8, 14)

_MOBILE = SNAPDRAGON_MOBILE.name


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    policies = ("dbi", "mil") + tuple(p for p, _ in BURST_POLICIES)
    specs = [
        RunSpec(benchmark=bench, system=_MOBILE, policy=policy,
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
        for policy in policies
    ]
    specs += [
        RunSpec(benchmark=bench, system=_MOBILE, policy="mil", lookahead=x,
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
        for x in LOOKAHEADS
    ]
    return specs


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))

    def lookup(bench, policy, lookahead=None):
        return runs[RunSpec(benchmark=bench, system=_MOBILE, policy=policy,
                            lookahead=lookahead,
                            accesses_per_core=accesses_per_core)]

    rows = []

    # (a) Figure 20 analogue: fixed burst length.
    bl_means = {}
    for policy, bl in BURST_POLICIES:
        ratios = []
        for bench in BENCHMARK_ORDER:
            base = lookup(bench, "dbi")
            summary = lookup(bench, policy)
            ratios.append(summary.cycles / base.cycles)
        bl_means[bl] = float(np.mean(ratios))
        rows.append(["fixed-burst", f"BL{bl}", bl_means[bl]])

    # (b) Figure 21 analogue: look-ahead distance.
    x_means = {}
    for x in LOOKAHEADS:
        ratios = []
        for bench in BENCHMARK_ORDER:
            base = lookup(bench, "dbi")
            summary = lookup(bench, "mil", lookahead=x)
            ratios.append(summary.cycles / base.cycles)
        x_means[x] = float(np.exp(np.mean(np.log(ratios))))
        rows.append(["look-ahead", f"X={x}", x_means[x]])

    # (c) Figure 22 analogue: 3-LWC share vs utilisation.
    utils = []
    shares = []
    for bench in BENCHMARK_ORDER:
        summary = lookup(bench, "mil")
        counts = summary.scheme_counts
        total = sum(counts.values()) or 1
        share = counts.get("3lwc", 0) / total
        rows.append(["scheme-mix", bench, share])
        utils.append(summary.bus_utilization)
        shares.append(share)

    result = ExperimentResult(
        experiment="ext_lpddr3_sensitivity",
        title=(
            "Extension: the Section 7.5 sensitivity studies on the "
            "LPDDR3 mobile system"
        ),
        headers=["study", "point", "value"],
        rows=rows,
        paper_claim=(
            '"the LPDDR3 based system exhibits similar characteristics" '
            "(Section 7.5)"
        ),
    )
    result.observations["bl_monotone"] = (
        "yes" if all(
            bl_means[a] <= bl_means[b] + 1e-9
            for a, b in zip((10, 12, 14), (12, 14, 16))
        ) else "no"
    )
    result.observations["x0_worst"] = (
        "yes" if x_means[0] >= max(x_means[x] for x in LOOKAHEADS[1:])
        else "no"
    )
    result.observations["corr_util_vs_3lwc_share"] = float(
        np.corrcoef(utils, shares)[0, 1]
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""The MiL framework: decision logic, policies, and end-to-end runs."""

from .config import MiLConfig
from .decision import MiLCOnlyPolicy, MiLPolicy
from .framework import (
    POLICIES,
    RunSummary,
    energy_params_for,
    make_policy_factory,
    run,
    system_energy_params_for,
)

__all__ = [
    "MiLConfig",
    "MiLCOnlyPolicy",
    "MiLPolicy",
    "POLICIES",
    "RunSummary",
    "energy_params_for",
    "make_policy_factory",
    "run",
    "system_energy_params_for",
]

"""Gate: the zero-table cache actually pays on repeated-trace work.

A campaign replays one trace under many policies; the registered pair
``coding.zero_table_cache`` / ``coding.zero_table_uncached`` (see
``repro.bench.suite``) times the same 4-policy precompute workload with
the campaign-wide cache on versus bypassed, under the standard
``repro.bench`` protocol.  The cached run pays one encode and three
pure hits, so on the 4-replay workload it must be at least 1.5x faster
— well under the ~4x asymptote, leaving room for the digest and
bookkeeping cost the cache adds.
"""

import pytest

from repro.bench import get, measure

MIN_SPEEDUP = 1.5
ATTEMPTS = 3  # whole-comparison retries before failing


def test_cache_speeds_up_repeated_trace_precompute():
    cached = get("coding.zero_table_cache")
    uncached = get("coding.zero_table_uncached")

    best = 0.0
    for _ in range(ATTEMPTS):
        t_cached = measure(cached.build(), repeats=7, warmup=1,
                           inner_ops=cached.inner_ops).min_ns
        t_uncached = measure(uncached.build(), repeats=7, warmup=1,
                             inner_ops=uncached.inner_ops).min_ns
        speedup = t_uncached / t_cached
        best = max(best, speedup)
        if speedup >= MIN_SPEEDUP:
            return
    pytest.fail(
        f"zero-table cache speedup {best:.2f}x is below the "
        f"{MIN_SPEEDUP}x gate on the 4-replay workload"
    )


def test_cached_and_uncached_tables_agree():
    # The benchmarks time the same computation; prove it IS the same.
    cached_tables = get("coding.zero_table_cache").build()()
    uncached_tables = get("coding.zero_table_uncached").build()()
    assert set(cached_tables) == set(uncached_tables)
    for scheme, table in cached_tables.items():
        assert (table == uncached_tables[scheme]).all()

"""Unit tests for the bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.bitops import (
    bits_to_bytes,
    bits_to_ints,
    byte_popcount_table,
    bytes_to_bits,
    format_bits,
    ints_to_bits,
    parse_bitstring,
    popcount_bits,
    zeros_in_bits,
)


class TestBytesBits:
    def test_msb_first(self):
        bits = bytes_to_bits(np.array([0b10000001], dtype=np.uint8))
        assert bits.tolist() == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_round_trip_random(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=(7, 13), dtype=np.uint8)
        assert (bits_to_bytes(bytes_to_bits(data)) == data).all()

    def test_bits_to_bytes_rejects_ragged(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.zeros(7, dtype=np.uint8))

    def test_shape_expansion(self):
        data = np.zeros((3, 4, 2), dtype=np.uint8)
        assert bytes_to_bits(data).shape == (3, 4, 16)


class TestCounts:
    def test_popcount_and_zeros_complement(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=(5, 17), dtype=np.uint8)
        assert (popcount_bits(bits) + zeros_in_bits(bits) == 17).all()

    def test_popcount_table_matches_bin(self):
        table = byte_popcount_table()
        for v in (0, 1, 0x0F, 0xF0, 0xFF, 0xAA):
            assert table[v] == bin(v).count("1")

    def test_popcount_table_is_copy(self):
        t = byte_popcount_table()
        t[0] = 99
        assert byte_popcount_table()[0] == 0


class TestIntConversion:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_round_trip(self, value):
        bits = ints_to_bits(np.array([value]), 16)
        assert bits_to_ints(bits)[0] == value

    def test_width_check(self):
        with pytest.raises(ValueError):
            ints_to_bits(np.array([256]), 8)

    def test_msb_first_layout(self):
        assert ints_to_bits(np.array([4]), 3).tolist() == [[1, 0, 0]]

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            ints_to_bits(np.array([0]), 0)
        with pytest.raises(ValueError):
            ints_to_bits(np.array([0]), 64)


class TestStrings:
    def test_parse_and_format(self):
        bits = parse_bitstring("1011 0001")
        assert bits.tolist() == [1, 0, 1, 1, 0, 0, 0, 1]
        assert format_bits(bits) == "10110001"
        assert format_bits(bits, group=4) == "1011 0001"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bitstring("10x1")
        with pytest.raises(ValueError):
            parse_bitstring("")

"""Benchmark harness configuration.

Each benchmark target regenerates one table or figure from the paper's
evaluation (see DESIGN.md's experiment index).  pytest-benchmark times
the experiment; the printed rows are the deliverable.  Simulation runs
are cached on disk (``.cache/runs``), so the first cold execution of the
harness takes minutes and subsequent ones take seconds.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an experiment result around pytest's output capturing."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.format())

    return _show

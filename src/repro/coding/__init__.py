"""Coding schemes for energy-efficient data movement.

This package implements every code the paper uses or compares against:

* :class:`~repro.coding.dbi.DBICode` — DDR4's native data bus inversion.
* :class:`~repro.coding.businvert.BusInvertCode` — transition-count
  bus-invert for unterminated interfaces.
* :class:`~repro.coding.transition.TransitionSignaling` — the XOR-based
  signaling layer that lets LPDDR3 reuse zero-minimising codes.
* :class:`~repro.coding.lwc.ThreeLWC` — the improved (8, 17)
  3-limited-weight code.
* :class:`~repro.coding.milc.MiLCCode` — the paper's new (64, 80) code.
* :class:`~repro.coding.cafo.CAFOCode` — the CAFO comparison point.
* :class:`~repro.coding.optimal_lwc.OptimalStaticLWC` — frequency-optimal
  static codes for the Figure 7 potential study.

Scheme knowledge (burst lengths, latencies, layouts, zero-count paths)
lives in :mod:`~repro.coding.registry`; new codecs self-register with
:func:`~repro.coding.registry.register_codec` and every downstream
surface picks them up automatically.  Zero tables for repeated traces
are served by the campaign-wide :mod:`~repro.coding.zerocache`.

Every registered codec additionally carries a *backend slot*: the
vectorised batched kernels (``impl="numpy"``, the default) are
cross-validated bit-for-bit against the pure-Python oracle in
:mod:`~repro.coding.reference` (``impl="reference"``), selected
process-wide via ``REPRO_CODEC_IMPL`` or per call via
:func:`~repro.coding.registry.codec_for`'s ``impl`` argument.
"""

from .base import BlockShapeError, CodingScheme
from .businvert import BusInvertCode
from .cafo import CAFOCode
from .dbi import DBICode, dbi_zero_table
from .lwc import ThreeLWC, lwc_mode_table, lwc_zero_table
from .lwc_family import (
    GOLAY_POLY,
    KLimitedWeightCode,
    PerfectThreeLWC,
    golay_syndrome,
    lwc_capacity_bits,
)
from .milc import MiLCCode
from .optimal_lwc import OptimalStaticLWC, byte_frequencies, codeword_zero_levels
from .pipeline import (
    BURST_FORMATS,
    LINE_BYTES,
    BurstFormat,
    beat_layout,
    encode_trace,
    line_zeros,
    precompute_line_zeros,
    raw_line_zeros,
    scheme_for,
)
from .registry import (
    DEFAULT_IMPL,
    IMPL_ENV,
    KNOWN_IMPLS,
    CodecInfo,
    NoCodecError,
    active_impl,
    codec_for,
    codec_schemes,
    real_schemes,
    register_backend,
    register_burst_format,
    register_codec,
    scheme_info,
    scheme_items,
    scheme_names,
    unregister_backend,
    unregister_scheme,
)
from .transition import TransitionSignaling
from .zerocache import ZeroTableCache, global_cache, reset_global_cache

__all__ = [
    "BlockShapeError",
    "CodingScheme",
    "BusInvertCode",
    "CAFOCode",
    "DBICode",
    "dbi_zero_table",
    "ThreeLWC",
    "lwc_mode_table",
    "lwc_zero_table",
    "GOLAY_POLY",
    "KLimitedWeightCode",
    "PerfectThreeLWC",
    "golay_syndrome",
    "lwc_capacity_bits",
    "MiLCCode",
    "OptimalStaticLWC",
    "byte_frequencies",
    "codeword_zero_levels",
    "TransitionSignaling",
    "BURST_FORMATS",
    "LINE_BYTES",
    "BurstFormat",
    "beat_layout",
    "encode_trace",
    "line_zeros",
    "precompute_line_zeros",
    "raw_line_zeros",
    "scheme_for",
    "CodecInfo",
    "DEFAULT_IMPL",
    "IMPL_ENV",
    "KNOWN_IMPLS",
    "NoCodecError",
    "active_impl",
    "codec_for",
    "codec_schemes",
    "real_schemes",
    "register_backend",
    "register_burst_format",
    "register_codec",
    "scheme_info",
    "scheme_items",
    "scheme_names",
    "unregister_backend",
    "unregister_scheme",
    "ZeroTableCache",
    "global_cache",
    "reset_global_cache",
]

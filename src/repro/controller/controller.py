"""The channel controller: queues, FR-FCFS, write drain, refresh, MiL hook.

This is the event-driven engine that owns one :class:`DRAMChannel`.  It
advances in DRAM cycles but never busy-waits: :meth:`next_event` reports
the earliest future cycle at which anything could change, and the system
simulator jumps straight there.

The MiL framework plugs in through a *coding policy* object with two
members (duck-typed to avoid a dependency cycle with ``repro.core``):

``extra_cl``
    Codec cycles folded into tCL/tWL for the whole run (Section 7.1).
``choose(controller, request, now)``
    Called when a column command is being issued; returns the coding
    scheme name, which fixes the burst length for that transaction.

The baseline :class:`AlwaysScheme` policy always answers ``"dbi"``.
"""

from __future__ import annotations

import os

from ..coding.registry import scheme_info
from ..dram.channel import DRAMChannel
from ..dram.commands import CommandType, Geometry
from ..dram.refresh import RefreshScheduler
from ..dram.timing import TimingParams
from .frfcfs import CandidateCommand, FRFCFSScheduler
from .queues import TransactionQueue
from .request import MemoryRequest
from .writedrain import WriteDrainPolicy

__all__ = ["AlwaysScheme", "ChannelController", "NO_EVENT_CACHE_ENV"]

# Kill switch for the scheduling-loop memoisation (candidate list and
# wake-time caches).  The caches are invalidated on every state change
# (enqueue, issue, drain flip), so disabling them must never alter a
# single issued command — tests/controller/test_event_cache.py holds
# the two modes to byte-identical, auditor-clean command logs.
NO_EVENT_CACHE_ENV = "REPRO_NO_EVENT_CACHE"


def _event_cache_enabled() -> bool:
    return os.environ.get(NO_EVENT_CACHE_ENV, "") not in ("1", "true", "yes")


class AlwaysScheme:
    """Fixed-scheme coding policy (baseline DBI, or Figure 20 sweeps)."""

    probe = None  # telemetry slot; set by ChannelController.attach_probe

    def __init__(self, scheme: str = "dbi", extra_cl: int | None = None):
        info = scheme_info(scheme)
        self.scheme = scheme
        self.extra_cl = info.extra_latency if extra_cl is None else extra_cl

    def choose(self, controller: "ChannelController", request, now: int) -> str:
        if self.probe is not None:
            self.probe.decision(now, "fixed", self.scheme)
        return self.scheme

    @property
    def max_bus_cycles(self) -> int:
        return scheme_info(self.scheme).bus_cycles


class ChannelController:
    """Event-skipping memory controller for one channel."""

    def __init__(
        self,
        timing: TimingParams,
        geometry: Geometry,
        policy: AlwaysScheme | None = None,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        drain_high: int = 60,
        drain_low: int = 50,
        keep_log: bool = True,
        keep_cmd_log: bool = False,
        refresh_enabled: bool = True,
        page_policy: str = "open",
    ):
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.page_policy = page_policy
        self.policy = policy if policy is not None else AlwaysScheme("dbi")
        self.timing = timing.with_extra_cl(self.policy.extra_cl)
        self.geometry = geometry
        self.channel = DRAMChannel(
            self.timing, geometry, keep_log=keep_log,
            keep_cmd_log=keep_cmd_log,
        )
        self.scheduler = FRFCFSScheduler(self.channel)
        self.refresh = (
            RefreshScheduler(self.timing, geometry.ranks)
            if refresh_enabled
            else None
        )
        self.read_queue = TransactionQueue(read_queue_size)
        self.write_queue = TransactionQueue(write_queue_size)
        self.drain = WriteDrainPolicy(drain_high, drain_low, write_queue_size)
        self.draining_now = False

        # Telemetry probe shared with the channel and the policy; None
        # (the default) leaves the fast path uninstrumented.
        self._probe = None

        self.completed: list[MemoryRequest] = []
        self.next_cmd_cycle = 0
        self.scheme_counts: dict[str, int] = {}
        self.forwarded_reads = 0
        self.coalesced_writes = 0

        # Candidate cache: the FR-FCFS candidate list only changes when
        # device or queue state does, so it is memoised against a state
        # version counter (the dominant cost of the scheduling loop).
        # On top of the whole-list memo, candidates are derived
        # *incrementally*: each bank contributes exactly one candidate
        # (oldest row hit, else ACT for the bucket head, else PRE), and
        # that per-bank derivation is memoised against the queue's
        # bucket version and the bank's open row, so an enqueue or
        # issue only re-derives the banks it touched.
        # REPRO_NO_EVENT_CACHE=1 recomputes everything every call via
        # the full-scan FRFCFSScheduler.candidates oracle, for A/B-ing
        # the caches against the protocol auditor.
        self._cache_enabled = _event_cache_enabled()
        self._state_version = 0
        self._cand_version = -1
        self._cand_cache: list = []
        # Per-bank candidate memos, one per queue direction, keyed by
        # the bucket key (rank, group, bank) ->
        # (bucket_version, open_row, kind, request) where kind is
        # 0=column hit, 1=ACTIVATE, 2=PRECHARGE.
        self._bank_memo_rd: dict = {}
        self._bank_memo_wr: dict = {}
        self.cand_bank_hits = 0
        self.cand_bank_misses = 0
        # Fused schedule query memo: (pick, wake) for one (state
        # version, cycle) pair — the hot path computes both in a single
        # pass over the bank buckets without materialising a candidate
        # list (see _schedule_query).
        self._sched_version = -1
        self._sched_now = -1
        self._sched_pick = None
        self._sched_wake: int | None = None
        # Wake cache: nothing can happen before this absolute cycle
        # unless the state version changes (new request, command issued).
        self._wake_version = -1
        self._wake_time: int | None = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_probe(self, probe) -> None:
        """Wire one :class:`~repro.telemetry.probes.ChannelProbe` in.

        Called once by the simulator when a telemetry session is active;
        the same probe serves the controller's own sites, the DRAM
        channel's command/bus sites, and the coding policy's decision
        sites (policies without a ``probe`` slot simply never call it).
        """
        self._probe = probe
        self.channel.probe = probe
        if hasattr(self.policy, "probe"):
            self.policy.probe = probe

    # ------------------------------------------------------------------
    # Protocol audit
    # ------------------------------------------------------------------
    def audit(self):
        """Replay this controller's logs through the independent auditor.

        Requires ``keep_cmd_log=True``; returns the list of
        :class:`~repro.audit.protocol.Violation` (empty == clean).  The
        auditor gets the controller's *effective* timing (codec latency
        folded in), matching what the channel enforced.
        """
        from ..audit.protocol import ProtocolAuditor

        return ProtocolAuditor(self.timing, self.geometry).audit(
            self.channel.command_log, self.channel.transactions
        )

    # ------------------------------------------------------------------
    # Front end
    # ------------------------------------------------------------------
    @property
    def has_pending(self) -> bool:
        """True when any transaction is queued (the Figure 5 predicate)."""
        return len(self.read_queue) > 0 or len(self.write_queue) > 0

    def can_accept(self, is_write: bool) -> bool:
        """Back-pressure check used by the LLC/core model."""
        queue = self.write_queue if is_write else self.read_queue
        return not queue.full

    def enqueue(self, request: MemoryRequest, now: int) -> None:
        """Accept a request at cycle ``now``.

        Reads that hit the write queue are forwarded and complete
        immediately; writes coalesce with queued writes to the same
        line.  Callers must respect :meth:`can_accept`.
        """
        if request.mapped is None:
            raise ValueError("request must be address-mapped before enqueue")
        request.arrival = now
        self._state_version += 1
        if self._probe is not None:
            self._probe.enqueue(len(self.read_queue), len(self.write_queue))
        if request.is_write:
            took_slot = self.write_queue.push(request, coalesce=True)
            if not took_slot:
                self.coalesced_writes += 1
            return
        hit = self.write_queue.find(request.address)
        if hit is not None:
            request.issue_cycle = now
            request.finish_cycle = now
            request.scheme = "forwarded"
            self.forwarded_reads += 1
            self.completed.append(request)
            return
        self.read_queue.push(request)

    def drain_completions(self) -> list[MemoryRequest]:
        """Hand completed requests to the caller and clear the list."""
        done, self.completed = self.completed, []
        return done

    # ------------------------------------------------------------------
    # MiL decision-logic support (the Figure 11 rdyX computation)
    # ------------------------------------------------------------------
    def column_ready_within(
        self,
        now: int,
        window: int,
        exclude: MemoryRequest | None = None,
        include_prefetches: bool = False,
        reads_only: bool = False,
    ) -> int:
        """Count queued column commands ready within ``window`` cycles.

        This is the software analogue of the rdyX comparator tree:
        a queued request contributes when its target row is open and all
        its timing counters will reach zero within ``window`` cycles.

        Prefetches are excluded by default: the controller knows which
        queue entries are prefetches, and postponing one by a few cycles
        cannot stall any core, so counting them would only veto long
        coded bursts for no benefit (a refinement over the paper's
        prefetch-blind comparator tree; see DESIGN.md).
        """
        count = 0
        horizon = now + window
        open_row_of = self.channel.open_row
        earliest_issue = self.channel.earliest_issue
        queues = (
            (self.read_queue, self.write_queue)
            if self.draining_now
            else (self.read_queue,)
        )
        for queue in queues:
            cmd = (
                CommandType.WRITE
                if queue is self.write_queue
                else CommandType.READ
            )
            for key, bucket in queue.bank_buckets().items():
                rank, group, bank = key
                open_row = open_row_of(rank, group, bank)
                if open_row is None:
                    continue
                # All hits in one bank share the same command timing,
                # so the bank is probed once, lazily on the first hit.
                ready = None
                for req in bucket:
                    if req.mapped.row != open_row:
                        continue
                    if req is exclude:
                        continue
                    if req.is_prefetch and not include_prefetches:
                        continue
                    if reads_only and req.is_write:
                        continue
                    if ready is None:
                        ready = (
                            earliest_issue(cmd, rank, group, bank, now)
                            <= horizon
                        )
                    if ready:
                        count += 1
        return count

    def _row_has_more_hits(self, request: MemoryRequest) -> bool:
        """Does any other queued request still want this open row?

        Under the closed-page policy a column command auto-precharges
        unless a queued sibling would hit the same row.
        """
        m = request.mapped
        for queue in (self.read_queue, self.write_queue):
            sibling = None
            for req in queue:
                if req is request:
                    continue
                rm = req.mapped
                if (
                    rm.rank == m.rank
                    and rm.bank_group == m.bank_group
                    and rm.bank == m.bank
                    and rm.row == m.row
                ):
                    sibling = req
                    break
            if sibling is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # Scheduling engine
    # ------------------------------------------------------------------
    def _urgent_refresh_action(self, now: int):
        """(cmd, rank, group, bank, earliest) for overdue refresh, or None."""
        if self.refresh is None or not self.refresh.any_urgent():
            return None
        for rank in range(self.geometry.ranks):
            if not self.refresh.urgent(rank):
                continue
            # Close any open bank, oldest constraint first.  The channel
            # scans only its open-bank set, in the same (group, bank)
            # order the old exhaustive loop used.
            best = self.channel.earliest_any_issue(
                CommandType.PRECHARGE, rank, now
            )
            if best is not None:
                earliest, g, b = best
                return (CommandType.PRECHARGE, rank, g, b, earliest)
            earliest = self.channel.earliest_issue(
                CommandType.REFRESH, rank, 0, 0, now
            )
            return (CommandType.REFRESH, rank, 0, 0, earliest)
        return None

    def _idle_refresh_action(self, now: int):
        """Opportunistic refresh when no transactions are pending."""
        if self.refresh is None or self.has_pending:
            return None
        if not self.refresh.any_debt():
            return None
        for rank in self.refresh.pending_ranks():
            if not self.channel.all_banks_closed(rank):
                best = self.channel.earliest_any_issue(
                    CommandType.PRECHARGE, rank, now
                )
                if best is None:
                    return None
                earliest, g, b = best
                return (CommandType.PRECHARGE, rank, g, b, earliest)
            earliest = self.channel.earliest_issue(
                CommandType.REFRESH, rank, 0, 0, now
            )
            return (CommandType.REFRESH, rank, 0, 0, earliest)
        return None

    def _sync_drain(self, now: int) -> None:
        """Advance the write-drain hysteresis from current queue depths.

        Idempotent for fixed queue lengths, so it only needs to run
        when the state version moved (every push/pop changes a length
        and bumps the version).
        """
        draining = self.drain.update(
            len(self.write_queue), len(self.read_queue)
        )
        if draining != self.draining_now:
            self.draining_now = draining
            self._state_version += 1
            if self._probe is not None:
                self._probe.drain_transition(now, draining)

    def _active_entries(self, now: int) -> list[MemoryRequest]:
        self._sync_drain(now)
        queue = self.write_queue if self.draining_now else self.read_queue
        return queue.oldest_first()

    def _derive_bank_candidate(self, bucket: list, open_row):
        """(kind, request) for one bank's queued requests.

        kind 0: column command for the oldest request hitting the open
        row (oldest by the FR-FCFS (arrival, serial) key).  kind 1:
        ACTIVATE on behalf of the bucket head (bank closed).  kind 2:
        PRECHARGE — the open row is wanted by nobody in the bucket.
        """
        if open_row is None:
            return 1, bucket[0]
        best = None
        for req in bucket:
            if req.mapped.row == open_row and (
                best is None
                or (req.arrival, req.serial) < (best.arrival, best.serial)
            ):
                best = req
        if best is not None:
            return 0, best
        return 2, None

    def _assemble_candidates(self, now: int) -> list:
        """Incremental equivalent of ``FRFCFSScheduler.candidates``.

        Each bank contributes exactly one candidate; per-bank (kind,
        request) derivations are memoised against the queue bucket
        version and the bank's open row, so only banks touched since
        the last assembly are re-derived.  Assembly order reproduces
        the full scan: hit/ACT candidates by bucket-head queue
        position, all PREs after them in the same order — the only
        orderings ``pick``'s ready[0] tie-break can observe.
        """
        queue = self.write_queue if self.draining_now else self.read_queue
        buckets = queue.bank_buckets()
        if not buckets:
            return []
        channel = self.channel
        open_row_of = channel.open_row
        earliest_issue = channel.earliest_issue
        is_write_q = queue is self.write_queue
        memo = self._bank_memo_wr if is_write_q else self._bank_memo_rd
        versions = queue.bank_versions()
        read_cmd, write_cmd = CommandType.READ, CommandType.WRITE
        act_cmd, pre_cmd = CommandType.ACTIVATE, CommandType.PRECHARGE
        main: list = []
        pres: list = []
        for key in sorted(buckets, key=lambda k: buckets[k][0].queue_seq):
            bucket = buckets[key]
            rank, group, bank = key
            open_row = open_row_of(rank, group, bank)
            ver = versions[key]
            cached = memo.get(key)
            if cached is not None and cached[0] == ver and cached[1] == open_row:
                kind, req = cached[2], cached[3]
                self.cand_bank_hits += 1
            else:
                kind, req = self._derive_bank_candidate(bucket, open_row)
                memo[key] = (ver, open_row, kind, req)
                self.cand_bank_misses += 1
            if kind == 0:
                cmd = write_cmd if req.is_write else read_cmd
                main.append(CandidateCommand(
                    cmd, rank, group, bank, open_row,
                    earliest_issue(cmd, rank, group, bank, now, 4), req,
                ))
            elif kind == 1:
                main.append(CandidateCommand(
                    act_cmd, rank, group, bank, req.mapped.row,
                    earliest_issue(act_cmd, rank, group, bank, now), req,
                ))
            else:
                pres.append(CandidateCommand(
                    pre_cmd, rank, group, bank, open_row,
                    earliest_issue(pre_cmd, rank, group, bank, now), None,
                ))
        if pres:
            main.extend(pres)
        return main

    def _candidates(self, now: int) -> list:
        """Memoised FR-FCFS candidate list (see ``_state_version``)."""
        if not self._cache_enabled:
            return self.scheduler.candidates(self._active_entries(now), now)
        if self._cand_version != self._state_version:
            self._sync_drain(now)
            self._cand_cache = self._assemble_candidates(now)
            self._cand_version = self._state_version
        return self._cand_cache

    def _schedule_query(self, now: int):
        """Fused ``(pick, wake)`` for cycle ``now`` in one bucket pass.

        Equivalent to ``scheduler.pick(self._candidates(now), now)``
        plus ``scheduler.next_wakeup(...)`` but without building the
        list: the pass tracks the oldest ready column (FR-FCFS
        (arrival, serial) order), the first-generated ready ACTIVATE,
        the first-generated ready PRECHARGE, and the minimum earliest
        over all per-bank candidates.  Memoised per (state version,
        cycle) so ``step`` and ``next_event`` at the same cycle share
        one pass.
        """
        if (
            self._sched_version == self._state_version
            and self._sched_now == now
        ):
            return self._sched_pick, self._sched_wake
        self._sync_drain(now)
        queue = self.write_queue if self.draining_now else self.read_queue
        buckets = queue.bank_buckets()
        pick = None
        wake: int | None = None
        if buckets:
            banks = self.channel.banks
            earliest_issue = self.channel.earliest_issue
            versions = queue.bank_versions()
            is_write_q = queue is self.write_queue
            memo = self._bank_memo_wr if is_write_q else self._bank_memo_rd
            derive = self._derive_bank_candidate
            read_cmd, write_cmd = CommandType.READ, CommandType.WRITE
            act_cmd = CommandType.ACTIVATE
            best_col = best_col_key = None
            best_act = best_act_seq = None
            best_pre = best_pre_seq = None
            hits = misses = 0
            for key, bucket in buckets.items():
                rank, group, bank = key
                bstate = banks[rank][group][bank]
                open_row = bstate.open_row
                ver = versions[key]
                cached = memo.get(key)
                if (
                    cached is not None
                    and cached[0] == ver
                    and cached[1] == open_row
                ):
                    kind = cached[2]
                    req = cached[3]
                    hits += 1
                else:
                    kind, req = derive(bucket, open_row)
                    memo[key] = (ver, open_row, kind, req)
                    misses += 1
                # The bank-scope "earliest next" register is an exact
                # lower bound on the full earliest_issue answer (which
                # only adds rank/bus constraints).  A bank whose bound
                # is both past ``now`` (cannot be picked) and at or past
                # the running ``wake`` minimum (cannot lower it) is
                # skipped without the expensive full query.
                if kind == 0:
                    bound = bstate.next_wr if is_write_q else bstate.next_rd
                    if bound > now and wake is not None and bound >= wake:
                        continue
                    cmd = write_cmd if is_write_q else read_cmd
                    earliest = earliest_issue(cmd, rank, group, bank, now, 4)
                    if earliest <= now:
                        col_key = (req.arrival, req.serial)
                        if best_col is None or col_key < best_col_key:
                            best_col = (cmd, rank, group, bank, open_row, req)
                            best_col_key = col_key
                elif kind == 1:
                    bound = bstate.next_act
                    if bound > now and wake is not None and bound >= wake:
                        continue
                    earliest = earliest_issue(act_cmd, rank, group, bank, now)
                    if earliest <= now and best_col is None:
                        seq = bucket[0].queue_seq
                        if best_act is None or seq < best_act_seq:
                            best_act = (
                                act_cmd, rank, group, bank,
                                req.mapped.row, req,
                            )
                            best_act_seq = seq
                else:
                    # PRECHARGE's only constraint IS the bank register,
                    # so the bound is the exact answer (see
                    # DRAMChannel.earliest_issue).
                    earliest = bstate.next_pre
                    if earliest < now:
                        earliest = now
                    if (
                        earliest <= now
                        and best_col is None
                        and best_act is None
                    ):
                        seq = bucket[0].queue_seq
                        if best_pre is None or seq < best_pre_seq:
                            best_pre = (
                                CommandType.PRECHARGE, rank, group, bank,
                                open_row, None,
                            )
                            best_pre_seq = seq
                if wake is None or earliest < wake:
                    wake = earliest
            self.cand_bank_hits += hits
            self.cand_bank_misses += misses
            won = best_col if best_col is not None else (
                best_act if best_act is not None else best_pre
            )
            if won is not None:
                pick = CandidateCommand(
                    won[0], won[1], won[2], won[3], won[4], now, won[5]
                )
        self._sched_version = self._state_version
        self._sched_now = now
        self._sched_pick = pick
        self._sched_wake = wake
        return pick, wake

    def sync(self, now: int) -> None:
        """Fold elapsed wall time into mutable bookkeeping.

        The one sanctioned mutation point for refresh debt:
        :meth:`step` calls this before scheduling, so :meth:`next_event`
        can stay a pure query (see the purity contract in DESIGN.md).
        """
        if self.refresh is not None:
            self.refresh.accrue(now)

    def step(self, now: int) -> bool:
        """Issue at most one command at cycle ``now``; True if issued."""
        if now < self.next_cmd_cycle:
            return False
        if (
            self._cache_enabled
            and self._wake_version == self._state_version
            and self._wake_time is not None
            and now < self._wake_time
        ):
            return False  # provably nothing to do yet
        self.sync(now)

        action = self._urgent_refresh_action(now)
        if action is not None:
            cmd, rank, group, bank, earliest = action
            if earliest > now:
                return False
            self.channel.issue(cmd, rank, group, bank, now)
            if cmd is CommandType.REFRESH:
                self.refresh.paid(rank)
            self._state_version += 1
            self.next_cmd_cycle = now + 1
            return True

        if self._cache_enabled:
            pick, _ = self._schedule_query(now)
        else:
            pick = self.scheduler.pick(self._candidates(now), now)

        if pick is None:
            action = self._idle_refresh_action(now)
            if action is not None:
                cmd, rank, group, bank, earliest = action
                if earliest <= now:
                    self.channel.issue(cmd, rank, group, bank, now)
                    if cmd is CommandType.REFRESH:
                        self.refresh.paid(rank)
                    self._state_version += 1
                    self.next_cmd_cycle = now + 1
                    return True
            return False

        if pick.cmd.is_column:
            req = pick.request
            scheme = self.policy.choose(self, req, now)
            fmt = scheme_info(scheme)
            auto_pre = (
                self.page_policy == "closed"
                and not self._row_has_more_hits(req)
            )
            data_end = self.channel.issue(
                pick.cmd, pick.rank, pick.group, pick.bank, now,
                bus_cycles=fmt.bus_cycles, scheme=scheme,
                request_id=req.line_id, auto_precharge=auto_pre,
            )
            req.issue_cycle = now
            req.finish_cycle = data_end
            req.scheme = scheme
            queue = self.write_queue if req.is_write else self.read_queue
            queue.remove(req)
            self.completed.append(req)
            self.scheme_counts[scheme] = self.scheme_counts.get(scheme, 0) + 1
        else:
            self.channel.issue(
                pick.cmd, pick.rank, pick.group, pick.bank, now, row=pick.row
            )
        self._state_version += 1
        self.next_cmd_cycle = now + 1
        return True

    def next_event(self, now: int) -> int | None:
        """Earliest cycle > ``now`` worth calling :meth:`step` at.

        ``None`` means nothing will ever happen without new requests
        (queues empty and refresh disabled).

        Pure query: repeated calls at the same ``now`` return the same
        value and mutate nothing (refresh debt accrual happens in
        :meth:`step` via :meth:`sync`).  If refresh intervals have
        elapsed since the last ``step``, ``refresh.next_event()`` is
        simply in the past and the ``now + 1`` floor wakes the caller
        immediately, so no refresh is ever missed.
        """
        floor = max(now + 1, self.next_cmd_cycle)
        if (
            self._cache_enabled
            and self._wake_version == self._state_version
            and self._wake_time is not None
            and now < self._wake_time
        ):
            return max(floor, self._wake_time)

        times: list[int] = []
        if self.refresh is not None:
            times.append(self.refresh.next_event())
            action = self._urgent_refresh_action(now)
            if action is None and not self.has_pending:
                action = self._idle_refresh_action(now)
            if action is not None:
                times.append(action[4])
        if self.has_pending:
            if self._cache_enabled:
                _, wake = self._schedule_query(now)
            else:
                wake = self.scheduler.next_wakeup(self._candidates(now))
            if wake is not None:
                times.append(wake)
        if not times:
            self._wake_version = self._state_version
            self._wake_time = None
            return None
        wake = min(times)
        self._wake_version = self._state_version
        self._wake_time = wake
        return max(floor, wake)

"""Multi-tenant result store: namespaces, quotas, and a GC sweep.

The store does **not** re-invent result storage — the bytes live in the
existing content-addressed campaign cache (one ``<key>.json`` per run,
written atomically by :mod:`repro.campaign.cache`), which is what makes
served results byte-identical to local ones.  What the store adds is
*tenancy*:

* each namespace owns an index (``tenants/<ns>.json``) mapping the
  cache keys its jobs produced to a last-access sequence number;
* a per-namespace **quota** bounds how many results a tenant may pin;
  the least-recently-accessed keys are evicted from the index first;
* the **GC sweep** deletes cache files no namespace references any
  more — safe because the sweep only runs over the store's own cache
  directory, and reference counting spans all tenants, so one tenant
  evicting a key never deletes a result another tenant still pins.

Access order is a monotonic integer sequence persisted in the store
root (``seq``), not wall-clock: recency comparisons stay total and
restart-stable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["ResultStore", "DEFAULT_QUOTA"]

DEFAULT_QUOTA = 4096


class ResultStore:
    """Namespace bookkeeping over one serve-owned cache directory."""

    def __init__(
        self,
        root: str | Path,
        quota: int = DEFAULT_QUOTA,
        quotas: dict | None = None,
    ) -> None:
        if quota < 1:
            raise ValueError("quota must be positive")
        self.root = Path(root)
        self.default_quota = quota
        self.quotas = dict(quotas or {})
        self.runs_dir = self.root / "runs"
        self.tenants_dir = self.root / "tenants"
        self._seq = 0
        self._tenants: dict[str, dict[str, int]] = {}  # ns -> key -> seq
        self._load()

    # -- persistence ----------------------------------------------------
    def _load(self) -> None:
        seq_file = self.root / "seq"
        try:
            self._seq = int(seq_file.read_text())
        except (OSError, ValueError):
            self._seq = 0
        if self.tenants_dir.is_dir():
            for path in sorted(self.tenants_dir.glob("*.json")):
                try:
                    payload = json.loads(path.read_text())
                    keys = {str(k): int(v)
                            for k, v in payload["keys"].items()}
                except (OSError, ValueError, KeyError, TypeError):
                    continue  # corrupt tenant index: start it empty
                self._tenants[path.stem] = keys
                if keys:
                    self._seq = max(self._seq, max(keys.values()))

    def _save(self, namespace: str) -> None:
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        path = self.tenants_dir / f"{namespace}.json"
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(
            {"namespace": namespace, "keys": self._tenants[namespace]},
            sort_keys=True,
        ))
        os.replace(tmp, path)
        # The seq file gets the same tmp+rename treatment as the tenant
        # indexes: a crash mid-write must never leave a truncated
        # sequence behind (recency comparisons are restart-stable).
        seq_path = self.root / "seq"
        seq_tmp = seq_path.with_name(f"seq.tmp{os.getpid()}")
        seq_tmp.write_text(str(self._seq))
        os.replace(seq_tmp, seq_path)

    # -- recording ------------------------------------------------------
    def quota_for(self, namespace: str) -> int:
        return int(self.quotas.get(namespace, self.default_quota))

    def record(self, namespace: str, keys) -> None:
        """Mark ``keys`` as (re)accessed by ``namespace``, newest last."""
        index = self._tenants.setdefault(namespace, {})
        for key in keys:
            self._seq += 1
            index[key] = self._seq
        self._save(namespace)

    # -- queries --------------------------------------------------------
    def namespaces(self) -> list[str]:
        return sorted(self._tenants)

    def keys(self, namespace: str) -> list[str]:
        """A namespace's keys, least recently accessed first."""
        index = self._tenants.get(namespace, {})
        return sorted(index, key=lambda k: index[k])

    def usage(self, namespace: str) -> dict:
        index = self._tenants.get(namespace, {})
        size = 0
        for key in index:
            try:
                size += (self.runs_dir / f"{key}.json").stat().st_size
            except OSError:
                pass
        return {
            "namespace": namespace,
            "keys": len(index),
            "bytes": size,
            "quota": self.quota_for(namespace),
        }

    def referenced(self) -> set:
        """Every key any namespace still pins."""
        out: set = set()
        for index in self._tenants.values():
            out.update(index)
        return out

    # -- eviction and GC ------------------------------------------------
    def sweep(self) -> dict:
        """Enforce quotas, then GC unreferenced result files.

        Returns ``{"evicted": {ns: n}, "removed_files": n}``.  Eviction
        order is strictly LRU per namespace.  The GC pass only touches
        ``runs/``: a cache file is removed when its key is referenced by
        no tenant index (including keys that never belonged to any —
        e.g. leftovers from an evicted tenant file).
        """
        evicted: dict[str, int] = {}
        for namespace, index in self._tenants.items():
            quota = self.quota_for(namespace)
            excess = len(index) - quota
            if excess <= 0:
                continue
            for key in self.keys(namespace)[:excess]:
                del index[key]
            evicted[namespace] = excess
            self._save(namespace)

        removed = 0
        if self.runs_dir.is_dir():
            live = self.referenced()
            for path in self.runs_dir.glob("*.json"):
                if path.stem not in live:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return {"evicted": evicted, "removed_files": removed}

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "namespaces": {
                ns: self.usage(ns) for ns in self.namespaces()
            },
        }

"""Figure 21: impact of the look-ahead distance X on execution time.

X is how far ahead the rdyX comparators look for soon-ready column
commands before granting the long 3-LWC slot.  Small X grants long
codes recklessly (more energy, more slowdown); the natural value is
X = 8 (the 3-LWC bus occupancy), and the paper finds execution times
within 4 % of each other for X >= 6, with X = 14 marginally best
because the simple logic cannot see requests that arrive later.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "LOOKAHEADS"]

LOOKAHEADS = (0, 2, 4, 6, 8, 14, 20)


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    specs = [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy="dbi",
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
    ]
    specs += [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy="mil",
                lookahead=x, accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
        for x in LOOKAHEADS
    ]
    return specs


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    geomeans = {}
    ratios_by_x = {x: [] for x in LOOKAHEADS}
    for bench in BENCHMARK_ORDER:
        base = runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                            policy="dbi",
                            accesses_per_core=accesses_per_core)]
        row = [bench]
        for x in LOOKAHEADS:
            summary = runs[RunSpec(
                benchmark=bench, system=NIAGARA_SERVER.name, policy="mil",
                lookahead=x, accesses_per_core=accesses_per_core,
            )]
            ratio = summary.cycles / base.cycles
            row.append(ratio)
            ratios_by_x[x].append(ratio)
        rows.append(row)
    for x, ratios in ratios_by_x.items():
        geomeans[x] = float(np.exp(np.mean(np.log(ratios))))

    result = ExperimentResult(
        experiment="fig21",
        title=(
            "Figure 21: execution time vs look-ahead distance X, "
            "normalized to DBI (DDR4 server)"
        ),
        headers=["benchmark"] + [f"X={x}" for x in LOOKAHEADS],
        rows=rows,
        paper_claim=(
            "geomean execution within 4% of baseline for X >= 6; the "
            "natural X = 8, slightly better at X = 14"
        ),
    )
    for x, gm in geomeans.items():
        result.observations[f"geomean_X{x}"] = gm
    return result


if __name__ == "__main__":
    print(run_experiment().format())

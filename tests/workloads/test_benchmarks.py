"""Tests for the Table 3 benchmark suite."""

import numpy as np
import pytest

from repro.system import NIAGARA_SERVER
from repro.workloads import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    MEMORY_INTENSIVE,
    build_trace,
    clear_trace_cache,
    get_benchmark,
)

SMALL = 800  # accesses per core for quick structural checks


class TestSuiteStructure:
    def test_all_eleven_present(self):
        assert len(BENCHMARK_ORDER) == 11
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)

    def test_table3_suites(self):
        assert get_benchmark("GUPS").suite == "HPCC"
        assert get_benchmark("CG").suite == "NAS OpenMP"
        assert get_benchmark("SCALPARC").suite == "NuMineBench"
        assert get_benchmark("MM").suite == "Phoenix"
        assert get_benchmark("SWIM").suite == "SPEC OpenMP"
        assert get_benchmark("FFT").suite == "SPLASH-2"

    def test_memory_intensive_subset(self):
        assert set(MEMORY_INTENSIVE) <= set(BENCHMARK_ORDER)
        assert "MM" not in MEMORY_INTENSIVE
        assert "GUPS" in MEMORY_INTENSIVE

    def test_lookup_case_insensitive(self):
        assert get_benchmark("gups") is get_benchmark("GUPS")
        with pytest.raises(KeyError):
            get_benchmark("nosuch")


class TestStreams:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_every_benchmark_builds(self, name):
        spec = get_benchmark(name)
        streams = spec.streams(NIAGARA_SERVER, seed=0, accesses_per_core=200)
        assert len(streams) == NIAGARA_SERVER.cores
        for s in streams:
            assert len(s) > 0
            assert (s.addresses >= 0).all()

    def test_streams_deterministic_by_seed(self):
        spec = get_benchmark("CG")
        a = spec.streams(NIAGARA_SERVER, seed=5, accesses_per_core=200)
        b = spec.streams(NIAGARA_SERVER, seed=5, accesses_per_core=200)
        c = spec.streams(NIAGARA_SERVER, seed=6, accesses_per_core=200)
        assert (a[0].addresses == b[0].addresses).all()
        assert not (a[0].addresses == c[0].addresses).all()

    def test_cores_get_distinct_chunks(self):
        spec = get_benchmark("SWIM")
        streams = spec.streams(NIAGARA_SERVER, seed=0, accesses_per_core=200)
        assert streams[0].addresses[0] != streams[1].addresses[0]


class TestTraces:
    def test_trace_cached(self):
        clear_trace_cache()
        a = build_trace("MM", NIAGARA_SERVER, accesses_per_core=SMALL)
        b = build_trace("MM", NIAGARA_SERVER, accesses_per_core=SMALL)
        assert a is b
        clear_trace_cache()
        c = build_trace("MM", NIAGARA_SERVER, accesses_per_core=SMALL)
        assert c is not a

    def test_trace_has_payloads(self):
        trace = build_trace("GUPS", NIAGARA_SERVER, accesses_per_core=SMALL)
        assert trace.line_data.shape == (trace.total_records, 64)
        assert trace.line_data.dtype == np.uint8

    def test_gups_has_writes(self):
        # Updates dirty random lines; once the L1/L2 fill, the dirty
        # victims stream back to memory (needs enough accesses to fill).
        trace = build_trace("GUPS", NIAGARA_SERVER, accesses_per_core=4000)
        assert trace.writes > 0

    def test_strmatch_is_read_dominated(self):
        # Warm-cache writebacks exist, but reads+prefetches dominate by
        # far (the file is scanned, barely written).
        trace = build_trace("STRMATCH", NIAGARA_SERVER,
                            accesses_per_core=SMALL)
        assert trace.writes < 0.35 * trace.total_records
        assert trace.demand_reads + trace.prefetches > 2 * trace.writes

    def test_mm_misses_less_than_gups(self):
        mm = build_trace("MM", NIAGARA_SERVER, accesses_per_core=SMALL)
        gups = build_trace("GUPS", NIAGARA_SERVER, accesses_per_core=SMALL)
        # Per CPU access, the blocked kernel touches memory far less.
        mm_rate = mm.total_records / mm.cpu_accesses
        gups_rate = gups.total_records / gups.cpu_accesses
        assert mm_rate < 0.5 * gups_rate

    def test_access_scale_respected(self):
        spec = get_benchmark("FFT")
        trace = build_trace("FFT", NIAGARA_SERVER, accesses_per_core=1000)
        expect = max(64, int(1000 * spec.access_scale))
        assert trace.cpu_accesses == expect * NIAGARA_SERVER.cores


class TestDataCharacter:
    def test_gups_data_is_integer_sparse(self):
        dm = get_benchmark("GUPS").data_model()
        lines = dm.lines_for(np.arange(2000, dtype=np.int64) * 64)
        zero_byte_share = (lines == 0).mean()
        assert zero_byte_share > 0.5

    def test_strmatch_data_is_texty(self):
        dm = get_benchmark("STRMATCH").data_model()
        lines = dm.lines_for(np.arange(2000, dtype=np.int64) * 64)
        printable = ((lines >= 0x20) & (lines <= 0x7E)).mean()
        assert printable > 0.35

    def test_fp_benchmarks_share_exponents(self):
        dm = get_benchmark("SWIM").data_model()
        lines = dm.lines_for(np.arange(500, dtype=np.int64) * 64)
        words = lines.reshape(-1, 8, 8)
        fp_lines = words[np.isin(words[:, 0, 7], (0x3F, 0x40))]
        assert len(fp_lines) > 100
        assert (fp_lines[:, :, 7] == fp_lines[:, 0:1, 7]).all()

"""Memory request representation shared by the CPU model and controller."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.address import MappedAddress

__all__ = ["MemoryRequest"]

_next_serial = 0


def _serial() -> int:
    global _next_serial
    _next_serial += 1
    return _next_serial


@dataclass
class MemoryRequest:
    """One cache-line transfer between the LLC and DRAM.

    Attributes
    ----------
    address:
        Physical byte address of the line.
    mapped:
        DRAM coordinates (filled in by the controller front end).
    is_write:
        Writebacks are posted: the issuing core never waits on them.
    core:
        Issuing core id (``-1`` for prefetches and flushes).
    line_id:
        Index into the workload's line-data arrays; the energy model
        looks up precomputed per-scheme zero counts with it.
    is_prefetch:
        Prefetches occupy the bus but nobody stalls on them.
    arrival:
        Cycle the request entered the controller queue (DRAM clock).
    serial:
        Monotonic tie-breaker giving FR-FCFS its FCFS order.
    """

    address: int
    is_write: bool
    core: int = -1
    line_id: int = -1
    is_prefetch: bool = False
    arrival: int = 0
    mapped: MappedAddress | None = None
    serial: int = field(default_factory=_serial)

    # Position stamp assigned by TransactionQueue.push: the queue's own
    # FIFO axis, used to order per-bank bucket heads exactly as the
    # flat entries list would.  (``serial`` is construction order, which
    # callers may not push in.)
    queue_seq: int = 0

    # Filled in while the request is in flight.
    issue_cycle: int | None = None
    finish_cycle: int | None = None
    scheme: str | None = None

    @property
    def completed(self) -> bool:
        """True once the data burst for this request has finished."""
        return self.finish_cycle is not None

    def queue_latency(self) -> int:
        """Cycles from arrival to data completion (requires completion)."""
        if self.finish_cycle is None:
            raise ValueError("request has not completed")
        return self.finish_cycle - self.arrival

"""The (8, 17) 3-limited-weight code with the paper's improved mode table.

A k-limited-weight code (k-LWC) [Stan & Burleson 1994] bounds the
Hamming weight of every codeword to at most ``k``.  Stan's 3-LWC maps
8 data bits to a 17-bit codeword of weight <= 3; transmitting the ones'
complement of the codeword then bounds the number of 0s on the wires to
three per 17 bits — far sparser than DBI's four per 9 bits.

Algorithm (Section 5.2.2, Figure 13 and Table 1 of the paper):

1. Split the byte into a left nibble ``l`` and right nibble ``r``.
2. One-hot encode each nibble into 15 bits (value 0 maps to all-zeros,
   value ``v`` in 1..15 maps to a single 1 at position ``v - 1``).
3. OR the two one-hot vectors into the 15-bit ``code`` field.
4. Choose the 2-bit ``mode`` from Table 1.  The paper's improvement over
   the original 1995 algorithm is that mode values are *reused* across
   cases that the code field itself disambiguates (weight 0 vs 1 vs 2),
   so the mode never needs to exceed weight 1:

   ====  ========  ========  ========
   Mode  Code      Left      Right
   ====  ========  ========  ========
   00    all 0s    all 0s    all 0s
   01    single 1  single 1  single 1   (l == r != 0)
   00    single 1  single 1  all 0s     (l != 0, r == 0)
   10    single 1  all 0s    single 1   (l == 0, r != 0)
   10    two 1s    greater   smaller    (l > r > 0)
   00    two 1s    smaller   greater    (0 < l < r)
   ====  ========  ========  ========

The *transmitted* codeword is the complement of ``code || mode`` so that
the weight bound becomes a zero bound (footnote 4 of the paper).

Codeword layout used here: ``[c0..c14, m1, m0]`` where ``c(v-1)`` is the
one-hot lane for nibble value ``v`` and ``m1 m0`` is the mode, all after
complementing for transmission.
"""

from __future__ import annotations

import numpy as np

from .base import CodingScheme
from .registry import register_codec

__all__ = [
    "ThreeLWC",
    "lwc_mode_table",
    "lwc_zero_table",
    "MAX_ZEROS_PER_CODEWORD",
]

MAX_ZEROS_PER_CODEWORD = 3

_MODE_ZERO = 0b00
_MODE_EQUAL = 0b01
_MODE_SWAPPED = 0b10

_MODE_ONES = {0b00: 0, 0b01: 1, 0b10: 1, 0b11: 2}


def _classify(left: int, right: int) -> int:
    """Return the Table 1 mode for a (left, right) nibble pair."""
    if left == right:
        # Covers both the all-zeros row (mode 00 by table, but 01 decodes
        # identically for l == r == 0; we follow the table exactly).
        return _MODE_ZERO if left == 0 else _MODE_EQUAL
    if right == 0:
        return _MODE_ZERO
    if left == 0:
        return _MODE_SWAPPED
    return _MODE_SWAPPED if left > right else _MODE_ZERO


def lwc_mode_table() -> np.ndarray:
    """256-entry table: byte value -> Table 1 mode (2-bit value).

    ``_classify`` is the per-pair specification; this is its closed form
    over all 256 byte values, precomputed once at import so the batched
    encode kernel never classifies pairs one at a time.
    """
    return _LWC_MODES.copy()


def lwc_zero_table() -> np.ndarray:
    """256-entry table: byte value -> zeros in its transmitted codeword.

    Zeros after complementing equal the pre-complement weight:
    ``weight(code) + weight(mode)``, which Table 1 keeps <= 3.
    """
    table = np.empty(256, dtype=np.uint8)
    for byte in range(256):
        left, right = byte >> 4, byte & 0xF
        code_ones = len({left, right} - {0})
        table[byte] = code_ones + _MODE_ONES[_classify(left, right)]
    return table


def _build_mode_and_codeword_tables() -> tuple[np.ndarray, np.ndarray]:
    """Precompute byte -> mode and byte -> transmitted-codeword tables.

    The whole (8, 17) map is only 256 entries, so the entire codec
    collapses to one gather: ``codewords[byte_values]``.  Built once at
    import from the same ``_classify`` specification the docstring
    table documents.
    """
    modes = np.empty(256, dtype=np.uint8)
    words = np.ones((256, 17), dtype=np.uint8)  # transmitted complement
    for byte in range(256):
        left, right = byte >> 4, byte & 0xF
        mode = _classify(left, right)
        modes[byte] = mode
        if left:
            words[byte, left - 1] = 0
        if right:
            words[byte, right - 1] = 0
        words[byte, 15] = 1 - ((mode >> 1) & 1)
        words[byte, 16] = 1 - (mode & 1)
    return modes, words


_LWC_MODES, _LWC_CODEWORDS = _build_mode_and_codeword_tables()
_LWC_ZEROS = lwc_zero_table()


@register_codec(
    "3lwc", burst_length=16, extra_latency=1, layout="line", pins=72,
    description="always-on (8, 17) 3-LWC: 64 codewords over the 72 "
                "data+DBI pins, 64 pad bits sent as 1s",
)
class ThreeLWC(CodingScheme):
    """The improved (8, 17) 3-LWC used as MiL's opportunistic long code."""

    name = "3lwc"
    data_bits = 8
    code_bits = 17
    # Synthesis shows ~0.1 ns codec latency; the paper folds all MiL codec
    # latencies into a single extra tCL cycle (Section 7.1).
    extra_latency_cycles = 1

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        # The whole code is a 256-entry map, so the batched kernel is a
        # single table gather: pack each 8-bit block back into its byte
        # value and look the transmitted codeword up.
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        byte_vals = np.packbits(data_bits.reshape(-1, 8), axis=-1).ravel()
        return _LWC_CODEWORDS[byte_vals].reshape(lead + (17,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        word = (1 - code_bits.reshape(-1, 17)).astype(np.uint8)
        code = word[:, :15]
        mode = (word[:, 15].astype(np.int64) << 1) | word[:, 16]

        n = word.shape[0]
        left = np.zeros(n, dtype=np.int64)
        right = np.zeros(n, dtype=np.int64)
        ones = code.sum(axis=1)

        pos = np.argmax(code, axis=1) + 1  # first set lane as nibble value
        # For weight-2 codewords the two set lanes, small and large value.
        rev_pos = 15 - np.argmax(code[:, ::-1], axis=1)

        one_hot = ones == 1
        left[one_hot & (mode == _MODE_EQUAL)] = pos[one_hot & (mode == _MODE_EQUAL)]
        right[one_hot & (mode == _MODE_EQUAL)] = pos[one_hot & (mode == _MODE_EQUAL)]
        left[one_hot & (mode == _MODE_ZERO)] = pos[one_hot & (mode == _MODE_ZERO)]
        right[one_hot & (mode == _MODE_SWAPPED)] = pos[one_hot & (mode == _MODE_SWAPPED)]

        two_hot = ones == 2
        small = pos[two_hot]
        large = rev_pos[two_hot]
        swapped = mode[two_hot] == _MODE_SWAPPED
        left[two_hot] = np.where(swapped, large, small)
        right[two_hot] = np.where(swapped, small, large)

        combined = (left << 4) | right
        out = np.unpackbits(combined.astype(np.uint8)[:, None], axis=1)
        return out.reshape(lead + (8,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.shape[-1] % 8 != 0:
            raise ValueError("3-LWC zero counting needs whole bytes")
        byte_vals = np.packbits(data_bits, axis=-1)
        return _LWC_ZEROS[byte_vals].sum(axis=-1, dtype=np.int64)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zero count straight from uint8 byte values (fast path)."""
        data = np.asarray(data, dtype=np.uint8)
        return _LWC_ZEROS[data].sum(axis=-1, dtype=np.int64)

    def encode_lines(self, lines: np.ndarray) -> np.ndarray:
        """Byte-domain trace kernel: one gather per line, no unpacking."""
        lines = self._check_lines(lines)
        return _LWC_CODEWORDS[lines].reshape(lines.shape[0], -1)

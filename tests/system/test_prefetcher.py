"""Tests for the stream prefetcher."""

from repro.system import PrefetcherConfig, StreamPrefetcher


def feed_sequential(pf, start_line, count, direction=1):
    issued = []
    for i in range(count):
        issued += pf.observe((start_line + i * direction) * 64)
    return issued


class TestTraining:
    def test_no_prefetch_before_confirmation(self):
        pf = StreamPrefetcher(PrefetcherConfig(degree=2))
        assert pf.observe(0) == []
        assert pf.observe(64) == []  # first confirmation only trains

    def test_sequential_stream_prefetches_ahead(self):
        pf = StreamPrefetcher(PrefetcherConfig(distance=8, degree=2))
        issued = feed_sequential(pf, 100, 10)
        assert issued, "trained stream must prefetch"
        # Prefetches are strictly ahead of the demand stream.
        assert min(issued) > 101 * 64

    def test_descending_stream_supported(self):
        pf = StreamPrefetcher(PrefetcherConfig(distance=8, degree=2))
        issued = feed_sequential(pf, 500, 10, direction=-1)
        assert issued
        assert max(issued) < 500 * 64

    def test_repeated_same_line_is_quiet(self):
        pf = StreamPrefetcher(PrefetcherConfig())
        pf.observe(0)
        for _ in range(5):
            assert pf.observe(0) == []


class TestLimits:
    def test_degree_caps_prefetches_per_access(self):
        pf = StreamPrefetcher(PrefetcherConfig(distance=32, degree=4))
        for i in range(20):
            issued = pf.observe(i * 64)
            assert len(issued) <= 4

    def test_distance_caps_runahead(self):
        cfg = PrefetcherConfig(distance=4, degree=4)
        pf = StreamPrefetcher(cfg)
        last_line = 0
        for i in range(30):
            last_line = i
            for addr in pf.observe(i * 64):
                assert addr // 64 <= last_line + cfg.distance

    def test_no_duplicate_prefetches(self):
        pf = StreamPrefetcher(PrefetcherConfig(distance=16, degree=2))
        issued = feed_sequential(pf, 0, 40)
        assert len(issued) == len(set(issued))

    def test_stream_table_capacity(self):
        pf = StreamPrefetcher(PrefetcherConfig(nstreams=4))
        for s in range(10):
            pf.observe(s * 1_000_000)
        assert pf.active_streams <= 4

    def test_lru_stream_replacement(self):
        pf = StreamPrefetcher(PrefetcherConfig(nstreams=2, degree=1))
        pf.observe(0)  # stream A
        pf.observe(1_000_000)  # stream B
        pf.observe(64)  # refresh A
        pf.observe(2_000_000)  # evicts B (LRU)
        issued = pf.observe(128)  # A still trained enough to advance
        assert pf.active_streams == 2
        assert issued or pf.observe(192)


class TestTable2Configs:
    def test_server_config(self):
        from repro.system import NIAGARA_SERVER

        cfg = NIAGARA_SERVER.prefetcher
        assert (cfg.nstreams, cfg.distance, cfg.degree) == (64, 32, 4)

    def test_mobile_config(self):
        from repro.system import SNAPDRAGON_MOBILE

        cfg = SNAPDRAGON_MOBILE.prefetcher
        assert (cfg.nstreams, cfg.distance, cfg.degree) == (64, 8, 1)

"""Baseline comparison and regression gating.

``repro bench --compare benchmarks/baseline.json --max-regression 20``
loads both reports, matches results by benchmark name, and flags every
benchmark whose best (min) per-op time grew by more than the allowed
percentage.  Comparison refuses to match entries whose ``params``
differ — a corpus-size change would otherwise masquerade as a speedup
or regression.

The gate is deliberately one-sided: getting *faster* never fails, it
just shows up in the report so the baseline can be refreshed
(``repro bench --update-baseline``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Comparison", "Delta", "compare_reports", "format_comparison"]


@dataclass(frozen=True)
class Delta:
    """One benchmark's current-vs-baseline movement."""

    name: str
    baseline_ns: float
    current_ns: float

    @property
    def ratio(self) -> float:
        """current / baseline; > 1 means slower than the baseline."""
        if self.baseline_ns <= 0:
            return float("inf") if self.current_ns > 0 else 1.0
        return self.current_ns / self.baseline_ns


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing a current report against a baseline."""

    max_regression_pct: float
    regressions: tuple  # Deltas beyond the threshold, worst first
    improvements: tuple  # Deltas faster than the baseline
    unchanged: tuple  # Deltas within the gate
    param_mismatches: tuple  # names whose params differ (not compared)
    missing_in_baseline: tuple  # current names the baseline lacks
    missing_in_current: tuple  # baseline names this run did not produce

    @property
    def ok(self) -> bool:
        return not self.regressions


def _min_ns(entry: dict) -> float:
    return float(entry["ns_per_op"]["min"])


def compare_reports(
    current: dict, baseline: dict, max_regression_pct: float = 20.0
) -> Comparison:
    """Match results by name and gate on the per-op minimum."""
    if max_regression_pct < 0:
        raise ValueError("max_regression_pct must be >= 0")
    base_by_name = {e["name"]: e for e in baseline["results"]}
    cur_by_name = {e["name"]: e for e in current["results"]}

    regressions: list[Delta] = []
    improvements: list[Delta] = []
    unchanged: list[Delta] = []
    mismatches: list[str] = []
    limit = 1.0 + max_regression_pct / 100.0

    for name, cur in cur_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            continue
        if base.get("params", {}) != cur.get("params", {}):
            mismatches.append(name)
            continue
        delta = Delta(name, _min_ns(base), _min_ns(cur))
        if delta.ratio > limit:
            regressions.append(delta)
        elif delta.ratio < 1.0:
            improvements.append(delta)
        else:
            unchanged.append(delta)

    regressions.sort(key=lambda d: -d.ratio)
    improvements.sort(key=lambda d: d.ratio)
    return Comparison(
        max_regression_pct=max_regression_pct,
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        unchanged=tuple(unchanged),
        param_mismatches=tuple(sorted(mismatches)),
        missing_in_baseline=tuple(
            sorted(cur_by_name.keys() - base_by_name.keys())
        ),
        missing_in_current=tuple(
            sorted(base_by_name.keys() - cur_by_name.keys())
        ),
    )


def _fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def format_comparison(cmp: Comparison) -> str:
    """Human-readable verdict, one line per moved benchmark."""
    lines: list[str] = []
    for d in cmp.regressions:
        lines.append(
            f"REGRESSED  {d.name}: {_fmt_ns(d.baseline_ns)} -> "
            f"{_fmt_ns(d.current_ns)}  ({d.ratio:.2f}x, limit "
            f"{1 + cmp.max_regression_pct / 100:.2f}x)"
        )
    for d in cmp.improvements:
        lines.append(
            f"improved   {d.name}: {_fmt_ns(d.baseline_ns)} -> "
            f"{_fmt_ns(d.current_ns)}  ({d.ratio:.2f}x)"
        )
    for name in cmp.param_mismatches:
        lines.append(f"SKIPPED    {name}: params differ from baseline")
    for name in cmp.missing_in_baseline:
        lines.append(f"new        {name}: not in baseline")
    for name in cmp.missing_in_current:
        lines.append(f"absent     {name}: in baseline but not in this run")
    verdict = (
        "baseline comparison OK"
        if cmp.ok
        else f"baseline comparison FAILED: {len(cmp.regressions)} "
        f"regression(s) beyond {cmp.max_regression_pct:.0f}%"
    )
    lines.append(
        f"{verdict} ({len(cmp.unchanged) + len(cmp.improvements)} within "
        "gate)"
    )
    return "\n".join(lines)

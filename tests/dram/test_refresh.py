"""Tests for the refresh scheduler."""

import pytest

from repro.dram import DDR4_3200, RefreshScheduler
from repro.dram.refresh import MAX_POSTPONED


class TestAccrual:
    def test_no_debt_before_first_interval(self):
        rs = RefreshScheduler(DDR4_3200, ranks=2)
        rs.accrue(DDR4_3200.REFI - 1)
        assert rs.debt(0) == 0
        assert rs.debt(1) == 0

    def test_debt_accrues_per_interval(self):
        rs = RefreshScheduler(DDR4_3200, ranks=2)
        rs.accrue(DDR4_3200.REFI * 3)
        assert rs.debt(0) == 3
        assert rs.debt(1) == 3

    def test_accrue_is_idempotent(self):
        rs = RefreshScheduler(DDR4_3200, ranks=1)
        rs.accrue(DDR4_3200.REFI)
        rs.accrue(DDR4_3200.REFI)
        assert rs.debt(0) == 1

    def test_debt_clamped_to_postponement_budget(self):
        # A long event-skip (empty queue) must not batch-accrue debt
        # past the 8-postponement JEDEC budget; pre-fix this reached 50.
        rs = RefreshScheduler(DDR4_3200, ranks=2)
        rs.accrue(DDR4_3200.REFI * 50)
        assert rs.debt(0) == MAX_POSTPONED
        assert rs.debt(1) == MAX_POSTPONED

    def test_clamp_keeps_due_schedule_aligned(self):
        # Forgiven intervals still advance the due clock: after the
        # clamp, new debt accrues on the normal tREFI grid.
        rs = RefreshScheduler(DDR4_3200, ranks=1)
        rs.accrue(DDR4_3200.REFI * 50)
        assert rs.next_event() == DDR4_3200.REFI * 51
        rs.accrue(DDR4_3200.REFI * 51)
        assert rs.debt(0) == MAX_POSTPONED  # still clamped
        for _ in range(MAX_POSTPONED):
            rs.paid(0)
        rs.accrue(DDR4_3200.REFI * 52)
        assert rs.debt(0) == 1


class TestUrgency:
    def test_urgent_after_postponement_budget(self):
        rs = RefreshScheduler(DDR4_3200, ranks=1)
        rs.accrue(DDR4_3200.REFI * (MAX_POSTPONED - 1))
        assert not rs.urgent(0)
        rs.accrue(DDR4_3200.REFI * MAX_POSTPONED)
        assert rs.urgent(0)

    def test_paying_reduces_debt(self):
        rs = RefreshScheduler(DDR4_3200, ranks=1)
        rs.accrue(DDR4_3200.REFI * 2)
        rs.paid(0)
        assert rs.debt(0) == 1

    def test_pay_without_debt_rejected(self):
        rs = RefreshScheduler(DDR4_3200, ranks=1)
        with pytest.raises(ValueError):
            rs.paid(0)


class TestOrdering:
    def test_pending_ranks_most_indebted_first(self):
        rs = RefreshScheduler(DDR4_3200, ranks=2)
        rs.accrue(DDR4_3200.REFI * 2)
        rs.paid(0)
        assert rs.pending_ranks() == [1, 0]

    def test_next_event_is_earliest_due(self):
        rs = RefreshScheduler(DDR4_3200, ranks=2)
        assert rs.next_event() == DDR4_3200.REFI
        rs.accrue(DDR4_3200.REFI)
        assert rs.next_event() == 2 * DDR4_3200.REFI

"""DRAM-system energy model (Micron power-calculator style).

Splits DRAM energy into the five categories of the paper's Figure 18:
background, activate/precharge, read/write (column array + peripheral),
refresh, and IO.  The inputs are a finished
:class:`~repro.system.simulator.SimulationResult` plus the per-scheme
zero tables from :func:`repro.coding.pipeline.precompute_line_zeros`.

Background power follows the paper's observation that DDR4 lacks a fast
power-down mode: a rank burns active-standby power whenever requests
are in flight on its channel (approximated by the controller's
pending-cycle integral) and precharge-standby power otherwise, all of
it scaling with *execution time* — which is exactly why sparse codes
that slow the program can lose system energy (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..system.simulator import SimulationResult
from .constants import DramEnergyParams
from .io_power import IOEnergyModel

__all__ = ["DramEnergyBreakdown", "DramEnergyModel"]


@dataclass(frozen=True)
class DramEnergyBreakdown:
    """Joules per category (the Figure 18 bars)."""

    background: float
    activate: float
    read_write: float
    refresh: float
    io: float

    @property
    def total(self) -> float:
        return (
            self.background + self.activate + self.read_write
            + self.refresh + self.io
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "background": self.background,
            "activate": self.activate,
            "read_write": self.read_write,
            "refresh": self.refresh,
            "io": self.io,
        }

    def share(self, category: str) -> float:
        """Fraction of total energy in one category."""
        total = self.total
        return self.as_dict()[category] / total if total else 0.0


class DramEnergyModel:
    """Evaluates a simulation run into a Figure 18-style breakdown.

    Parameters
    ----------
    params:
        Per-event energies for the DRAM type.
    fast_powerdown:
        Model the power-down modes of Malladi et al. [MICRO 2012], which
        the paper cites as a way to shrink DDR4's background slice and
        thereby *increase* MiL's relative savings (Section 7.3).  When
        enabled: (a) idle (no-pending) cycles burn only
        ``powerdown_fraction`` of precharge-standby power, and (b) a
        ``rank_idle_overlap`` fraction of *pending* cycles — the time a
        rank sits untouched while its sibling serves the queue — drops
        from active standby to the same napping level (per-rank
        power-down is exactly what those modes enable).
    """

    def __init__(
        self,
        params: DramEnergyParams,
        fast_powerdown: bool = False,
        powerdown_fraction: float = 0.2,
        rank_idle_overlap: float = 0.4,
    ):
        if not 0.0 <= powerdown_fraction <= 1.0:
            raise ValueError("powerdown_fraction must be in [0, 1]")
        if not 0.0 <= rank_idle_overlap <= 1.0:
            raise ValueError("rank_idle_overlap must be in [0, 1]")
        self.params = params
        self.fast_powerdown = fast_powerdown
        self.powerdown_fraction = powerdown_fraction
        self.rank_idle_overlap = rank_idle_overlap
        self.io_model = IOEnergyModel(params)

    def evaluate(
        self,
        result: SimulationResult,
        zeros_by_scheme: dict[str, np.ndarray],
    ) -> DramEnergyBreakdown:
        p = self.params
        cycle_s = result.controllers[0].timing.cycle_ns * 1e-9

        activate = 0.0
        read_write = 0.0
        refresh = 0.0
        io = 0.0
        background = 0.0

        for ch, mc in enumerate(result.controllers):
            chan = mc.channel
            activate += chan.activate_count * p.energy_activate_precharge
            read_write += (
                chan.read_count * p.energy_column_read
                + chan.write_count * p.energy_column_write
            )
            refresh += chan.refresh_count * p.energy_refresh_per_rank
            io += self.io_model.evaluate(
                chan.transactions, zeros_by_scheme
            ).energy_j

            # Ranks on this channel: active standby while transactions
            # are pending, precharge standby otherwise.
            ranks = mc.geometry.ranks
            active_cycles = min(result.pending_cycles[ch], result.cycles)
            idle_cycles = result.cycles - active_cycles
            idle_w = p.background_precharge_w
            active_w = p.background_active_w
            if self.fast_powerdown:
                nap_w = idle_w * self.powerdown_fraction
                idle_w = nap_w
                # A rank not being accessed naps even while its sibling
                # keeps the channel "pending".
                active_w = (
                    (1 - self.rank_idle_overlap) * active_w
                    + self.rank_idle_overlap * nap_w
                )
            background += ranks * cycle_s * (
                active_cycles * active_w + idle_cycles * idle_w
            )

        return DramEnergyBreakdown(
            background=background,
            activate=activate,
            read_write=read_write,
            refresh=refresh,
            io=io,
        )

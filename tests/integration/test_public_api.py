"""Tests for the top-level public API surface."""

import pytest


class TestLazyExports:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_lazy_attributes_resolve(self):
        import repro

        assert callable(repro.run)
        assert repro.NIAGARA_SERVER.name == "ddr4-server"
        assert len(repro.BENCHMARK_ORDER) == 11
        assert "fig16" in repro.ALL_EXPERIMENTS

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_lazy_names(self):
        import repro

        listing = dir(repro)
        for name in ("run", "MiLConfig", "SNAPDRAGON_MOBILE"):
            assert name in listing


class TestSubpackageImports:
    @pytest.mark.parametrize("module", [
        "repro.coding", "repro.dram", "repro.controller", "repro.core",
        "repro.system", "repro.energy", "repro.workloads",
        "repro.analysis", "repro.experiments", "repro.cli",
    ])
    def test_importable(self, module):
        import importlib

        assert importlib.import_module(module) is not None

    def test_all_exports_resolve(self):
        # Every name in each subpackage's __all__ must actually exist.
        import importlib

        for module_name in (
            "repro.coding", "repro.dram", "repro.controller",
            "repro.core", "repro.system", "repro.energy",
            "repro.workloads", "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"

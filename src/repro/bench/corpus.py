"""Fixed-seed burst corpora shared by every coding benchmark.

Benchmark inputs must be *pinned*: the same bytes on every machine, in
every session, forever — otherwise a data-dependent codec (CAFO's flip
search, MiLC's candidate choice) measures corpus luck, not code speed.
The corpus is generated from a hard-coded PCG64 seed (numpy guarantees
stream stability for a fixed seed) and mixes the line categories real
traffic shows: dense random bytes, zero-dominated lines, and spatially
correlated lines that repeat a stride pattern — the cases the paper's
codes were designed around.

The determinism regression test pins :func:`corpus_digest`; if corpus
generation ever changes, that test fails and the committed baseline
must be refreshed in the same PR.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

__all__ = ["CORPUS_SEED", "LINE_BYTES", "corpus_digest", "lines"]

CORPUS_SEED = 0x5EED_C0DE
LINE_BYTES = 64


@lru_cache(maxsize=8)
def lines(n: int = 2048) -> np.ndarray:
    """``(n, 64)`` uint8 cache lines, deterministic for a given ``n``.

    Thirds by category, in fixed order: dense random, zero-heavy
    (~85% zero bytes), and correlated (a per-line 8-byte pattern tiled
    across the line with small perturbations).  The returned array is
    marked read-only so one benchmark cannot corrupt another's input.
    """
    if n < 3:
        raise ValueError("corpus needs at least 3 lines")
    rng = np.random.default_rng(CORPUS_SEED)
    third = n // 3

    dense = rng.integers(0, 256, size=(third, LINE_BYTES), dtype=np.uint8)

    sparse = rng.integers(0, 256, size=(third, LINE_BYTES), dtype=np.uint8)
    zero_mask = rng.random(size=sparse.shape) < 0.85
    sparse[zero_mask] = 0

    rest = n - 2 * third
    pattern = rng.integers(0, 256, size=(rest, 8), dtype=np.uint8)
    correlated = np.tile(pattern, (1, LINE_BYTES // 8))
    jitter = rng.integers(0, LINE_BYTES, size=rest)
    correlated[np.arange(rest), jitter] ^= 0xFF

    out = np.concatenate([dense, sparse, correlated], axis=0)
    out.setflags(write=False)
    return out


def corpus_digest(n: int = 2048) -> str:
    """SHA-256 of the corpus bytes — the determinism test's anchor."""
    return hashlib.sha256(lines(n).tobytes()).hexdigest()

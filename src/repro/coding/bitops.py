"""Bit-level utilities shared by every coding scheme.

All codecs in :mod:`repro.coding` operate on *bit arrays*: numpy ``uint8``
arrays whose elements are 0 or 1, with the most significant bit of each
byte first.  This matches the way the paper draws codewords (Figure 10,
Figure 13) and makes odd codeword widths (9, 17, 80 bits) natural to
express.

The helpers here are vectorised: they accept an array of any leading
shape and operate on the trailing axis, so the same code path serves a
single byte in a unit test and a 30k-line trace in the simulator.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "popcount_bits",
    "zeros_in_bits",
    "ints_to_bits",
    "bits_to_ints",
    "byte_popcount_table",
    "parse_bitstring",
    "format_bits",
]


def bytes_to_bits(data: np.ndarray) -> np.ndarray:
    """Expand a uint8 array into a bit array (MSB first).

    The output has the same leading shape with the trailing axis expanded
    by a factor of eight: shape ``(..., n)`` becomes ``(..., n * 8)``.
    """
    data = np.asarray(data, dtype=np.uint8)
    return np.unpackbits(data, axis=-1)


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a bit array (MSB first) back into uint8 bytes.

    The trailing axis length must be a multiple of eight.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape[-1] % 8 != 0:
        raise ValueError(
            f"bit array trailing axis ({bits.shape[-1]}) is not a multiple of 8"
        )
    return np.packbits(bits, axis=-1)


def popcount_bits(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Count the 1s along ``axis`` of a bit array."""
    return np.count_nonzero(np.asarray(bits), axis=axis)


def zeros_in_bits(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Count the 0s along ``axis`` of a bit array.

    The number of 0s is what the DDR4 pseudo-open-drain interface pays
    energy for, so this is the quantity every experiment ultimately sums.
    """
    bits = np.asarray(bits)
    return bits.shape[axis] - np.count_nonzero(bits, axis=axis)


def ints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Convert integers to fixed-width bit arrays (MSB first).

    ``values`` of shape ``(...,)`` become bits of shape ``(..., width)``.
    """
    values = np.asarray(values, dtype=np.int64)
    if width < 1 or width > 63:
        raise ValueError(f"width must be in [1, 63], got {width}")
    if np.any(values < 0) or np.any(values >= (1 << width)):
        raise ValueError(f"values do not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    return ((values[..., None] >> shifts) & 1).astype(np.uint8)


def bits_to_ints(bits: np.ndarray) -> np.ndarray:
    """Convert fixed-width bit arrays (MSB first) back to integers."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[-1]
    if width > 63:
        raise ValueError(f"width {width} too large for int64 conversion")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    return (bits << shifts).sum(axis=-1)


_BYTE_POPCOUNT = np.array(
    [bin(v).count("1") for v in range(256)], dtype=np.uint8
)


def byte_popcount_table() -> np.ndarray:
    """Return a 256-entry lookup table mapping a byte to its popcount.

    Returned as a copy so callers can't corrupt the module-level table.
    """
    return _BYTE_POPCOUNT.copy()


def parse_bitstring(text: str) -> np.ndarray:
    """Parse a human-readable bit string like ``"1011 0001"`` into bits.

    Spaces and underscores are ignored, which makes test vectors easy to
    transcribe from the paper's figures.
    """
    cleaned = text.replace(" ", "").replace("_", "")
    if not cleaned or any(c not in "01" for c in cleaned):
        raise ValueError(f"not a bit string: {text!r}")
    return np.array([int(c) for c in cleaned], dtype=np.uint8)


def format_bits(bits: np.ndarray, group: int = 8) -> str:
    """Render a 1-D bit array as a grouped string for debugging."""
    bits = np.asarray(bits).ravel()
    chars = "".join(str(int(b)) for b in bits)
    if group <= 0:
        return chars
    return " ".join(chars[i : i + group] for i in range(0, len(chars), group))

"""Experiment result container shared by every figure/table module."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows of one reproduced table or figure, plus the paper's claim.

    ``headers``/``rows`` carry the reproduced numbers; ``paper_claim``
    states what the original figure reports so EXPERIMENTS.md can put
    the two side by side; ``observations`` summarise how the
    reproduction compares (filled by each experiment).
    """

    experiment: str  # e.g. "fig16"
    title: str
    headers: list = field(default_factory=list)
    rows: list = field(default_factory=list)
    paper_claim: str = ""
    observations: dict = field(default_factory=dict)

    def format(self) -> str:
        table = format_table(self.headers, self.rows, title=self.title)
        parts = [table]
        if self.paper_claim:
            parts.append(f"paper: {self.paper_claim}")
        for key, value in self.observations.items():
            shown = f"{value:.3f}" if isinstance(value, float) else value
            parts.append(f"{key}: {shown}")
        return "\n".join(parts)

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_for(self, label) -> list:
        """Extract the row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r}")

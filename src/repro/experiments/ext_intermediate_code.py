"""Extension study: the intermediate-length code of Section 7.5.3.

Figure 22's take-away is that data-intensive benchmarks cannot fit the
(8,17) 3-LWC's BL16 bursts into their shorter idle windows, and the
paper concludes that "an intermediate sparse code with code length in
between that of MiLC and 3-LWC may improve the energy efficiency".

This study builds that code — an (8,12) 3-limited-weight code whose 64
codewords fill exactly BL12 over the 64 data pins — and runs MiL with
it as the long scheme on the memory-intensive half of the suite.  The
expected trade: more long-code grants and less slowdown per grant, at a
lower per-burst zero saving.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import MEMORY_INTENSIVE
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]


def _long_share(summary) -> float:
    counts = summary.scheme_counts
    total = sum(counts.values()) or 1
    return sum(
        count for scheme, count in counts.items()
        if scheme in ("3lwc", "lwc12")
    ) / total


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy=policy,
                accesses_per_core=accesses_per_core)
        for bench in MEMORY_INTENSIVE
        for policy in ("dbi", "mil", "mil-lwc12")
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))

    def lookup(bench, policy):
        return runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                            policy=policy,
                            accesses_per_core=accesses_per_core)]

    rows = []
    shares = {"mil": [], "mil-lwc12": []}
    times = {"mil": [], "mil-lwc12": []}
    for bench in MEMORY_INTENSIVE:
        base = lookup(bench, "dbi")
        row = [bench]
        for policy in ("mil", "mil-lwc12"):
            summary = lookup(bench, policy)
            time_ratio = summary.cycles / base.cycles
            zero_ratio = summary.total_zeros / max(1, base.total_zeros)
            share = _long_share(summary)
            row += [time_ratio, zero_ratio, share]
            shares[policy].append(share)
            times[policy].append(time_ratio)
        rows.append(row)

    result = ExperimentResult(
        experiment="ext_intermediate",
        title=(
            "Extension: MiL with the Section 7.5.3 intermediate (8,12) "
            "long code vs the default (8,17), memory-intensive suite"
        ),
        headers=[
            "benchmark",
            "mil:time", "mil:zeros", "mil:long%",
            "lwc12:time", "lwc12:zeros", "lwc12:long%",
        ],
        rows=rows,
        paper_claim=(
            "an intermediate sparse code with length between MiLC and "
            "3-LWC may improve energy efficiency for data-intensive "
            "benchmarks (Section 7.5.3)"
        ),
    )
    result.observations["mean_long_share_mil"] = float(np.mean(shares["mil"]))
    result.observations["mean_long_share_lwc12"] = float(
        np.mean(shares["mil-lwc12"])
    )
    result.observations["mean_time_mil"] = float(np.mean(times["mil"]))
    result.observations["mean_time_lwc12"] = float(
        np.mean(times["mil-lwc12"])
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

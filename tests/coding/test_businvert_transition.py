"""Tests for bus-invert coding and transition signaling (LPDDR3 stack)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coding import BusInvertCode, TransitionSignaling
from repro.coding.bitops import bytes_to_bits

BI = BusInvertCode()


class TestBusInvert:
    def test_few_transitions_passthrough(self):
        prev = np.zeros(9, dtype=np.uint8)
        data = bytes_to_bits(np.array([0x01], dtype=np.uint8)).reshape(8)
        code, trans = BI.encode_step(data, prev)
        assert code[8] == 0  # not inverted
        assert trans == 1

    def test_many_transitions_inverted(self):
        prev = np.zeros(9, dtype=np.uint8)
        data = bytes_to_bits(np.array([0xFF], dtype=np.uint8)).reshape(8)
        code, trans = BI.encode_step(data, prev)
        # Sending 0xFF over all-low wires would flip 8; inverting flips
        # only the BI wire.
        assert code[8] == 1
        assert trans == 1

    @settings(max_examples=100)
    @given(
        arrays(np.uint8, (8,), elements=st.integers(0, 1)),
        arrays(np.uint8, (9,), elements=st.integers(0, 1)),
    )
    def test_round_trip_and_bound(self, data, prev):
        code, trans = BI.encode_step(data, prev)
        assert (BI.decode_step(code) == data).all()
        # BI bounds flips to at most ceil(9/2).
        assert trans <= 5
        assert trans == int((code != prev).sum())

    def test_sequence_round_trip(self):
        rng = np.random.default_rng(12)
        data = rng.integers(0, 256, size=50, dtype=np.uint8)
        codes, trans = BI.encode_sequence(data)
        decoded = BI.decode_sequence(codes)
        expect = bytes_to_bits(data).reshape(50, 8)
        assert (decoded == expect).all()
        assert trans.max() <= 5

    def test_sequence_transitions_consistent(self):
        data = np.array([0xFF, 0x00, 0xFF, 0x00], dtype=np.uint8)
        codes, trans = BI.encode_sequence(data)
        wire = np.zeros(9, dtype=np.uint8)
        for beat, count in zip(codes, trans):
            assert int((beat != wire).sum()) == count
            wire = beat


class TestTransitionSignaling:
    def test_flip_per_zero_polarity(self):
        # Default polarity: a logical 0 flips the wire, a 1 holds it.
        ts = TransitionSignaling(lanes=4, flip_on=0)
        levels = ts.encode(np.array([[0, 1, 0, 1]], dtype=np.uint8))
        assert levels[0].tolist() == [1, 0, 1, 0]

    def test_flip_per_one_polarity(self):
        ts = TransitionSignaling(lanes=4, flip_on=1)
        levels = ts.encode(np.array([[0, 1, 0, 1]], dtype=np.uint8))
        assert levels[0].tolist() == [0, 1, 0, 1]

    @settings(max_examples=100)
    @given(arrays(np.uint8, (6, 8), elements=st.integers(0, 1)))
    def test_round_trip(self, beats):
        ts = TransitionSignaling(lanes=8)
        levels = ts.encode(beats)
        decoded = ts.decode(levels)
        assert (decoded == beats).all()

    @settings(max_examples=100)
    @given(arrays(np.uint8, (5, 8), elements=st.integers(0, 1)))
    def test_flip_count_equals_zero_count(self, beats):
        # The property Section 2.1.2 relies on: wire flips == logical 0s.
        ts = TransitionSignaling(lanes=8)
        prev = ts.wire_state
        levels = ts.encode(beats)
        flips = int((levels[0] != prev).sum()) + int(
            (np.diff(levels.astype(np.int8), axis=0) != 0).sum()
        )
        zeros = int(beats.size - beats.sum())
        assert flips == zeros

    def test_state_persists_across_calls(self):
        ts = TransitionSignaling(lanes=2)
        first = ts.encode(np.array([[0, 0]], dtype=np.uint8))
        second = ts.encode(np.array([[0, 0]], dtype=np.uint8))
        assert first[0].tolist() == [1, 1]
        assert second[0].tolist() == [0, 0]

    def test_reset_and_validation(self):
        ts = TransitionSignaling(lanes=3)
        ts.encode(np.zeros((2, 3), dtype=np.uint8))
        ts.reset()
        assert ts.wire_state.tolist() == [0, 0, 0]
        with pytest.raises(ValueError):
            ts.reset(np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            TransitionSignaling(lanes=3, flip_on=2)

    def test_count_flips_matches_zero_count(self):
        ts = TransitionSignaling(lanes=8)
        bits = np.array([1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        assert ts.count_flips(bits) == 3

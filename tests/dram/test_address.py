"""Tests for the page-interleaved address mapper."""

import numpy as np
import pytest

from repro.dram import (
    DDR4_GEOMETRY,
    LPDDR3_GEOMETRY,
    AddressMapper,
    Geometry,
)


class TestBijectivity:
    @pytest.mark.parametrize("geometry", [DDR4_GEOMETRY, LPDDR3_GEOMETRY])
    def test_round_trip_random(self, geometry):
        mapper = AddressMapper(geometry, channels=2)
        rng = np.random.default_rng(17)
        lines = rng.integers(0, mapper.capacity_bytes // 64, size=500)
        for line in lines:
            addr = int(line) * 64
            assert mapper.reverse(mapper.map(addr)) == addr

    def test_distinct_lines_map_distinctly(self):
        mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
        seen = set()
        for line in range(4096):
            m = mapper.map(line * 64)
            key = (m.channel, m.rank, m.bank_group, m.bank, m.row, m.column)
            assert key not in seen
            seen.add(key)


class TestInterleaving:
    def test_sequential_lines_stay_in_one_row(self):
        # Page interleaving: consecutive lines fill a row before moving.
        mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
        first = mapper.map(0)
        per_page = DDR4_GEOMETRY.lines_per_row
        for i in range(per_page):
            m = mapper.map(i * 64)
            assert (m.row, m.bank, m.rank) == (first.row, first.bank, first.rank)
            assert m.column == i

    def test_consecutive_pages_switch_channel_first(self):
        mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
        page = DDR4_GEOMETRY.row_bytes
        a = mapper.map(0)
        b = mapper.map(page)
        assert a.channel != b.channel
        assert (a.rank, a.bank_group, a.bank, a.row) == (
            b.rank, b.bank_group, b.bank, b.row,
        )

    def test_rank_then_bank_interleave(self):
        mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
        page = DDR4_GEOMETRY.row_bytes
        channels = 2
        ranks = DDR4_GEOMETRY.ranks
        # After cycling channels and ranks, the bank group advances.
        same_row_stride = page * channels * ranks
        a = mapper.map(0)
        c = mapper.map(same_row_stride)
        assert (a.channel, a.rank) == (c.channel, c.rank)
        assert a.bank_group != c.bank_group or a.bank != c.bank


class TestValidation:
    def test_capacity(self):
        mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
        geom = DDR4_GEOMETRY
        expect = (
            2 * geom.ranks * geom.bank_groups * geom.banks_per_group
            * geom.rows * geom.row_bytes
        )
        assert mapper.capacity_bytes == expect

    def test_negative_address_rejected(self):
        mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
        with pytest.raises(ValueError):
            mapper.map(-64)

    def test_non_power_of_two_rejected(self):
        geom = Geometry(
            ranks=3, bank_groups=2, banks_per_group=4, rows=1 << 14,
            row_bytes=8192,
        )
        with pytest.raises(ValueError):
            AddressMapper(geom, channels=2)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Geometry(ranks=0, bank_groups=2, banks_per_group=4,
                     rows=16, row_bytes=8192)
        with pytest.raises(ValueError):
            Geometry(ranks=2, bank_groups=2, banks_per_group=4,
                     rows=16, row_bytes=100)

"""MiL coding policies: the decision logic of Sections 4.2 and 5.1.

A *policy* is the object the memory controller consults at every column
command; it answers with a coding-scheme name, which fixes the burst
length of that transaction.  The contract (duck-typed by
:class:`repro.controller.controller.ChannelController`) is::

    policy.extra_cl                     # codec cycles folded into tCL
    policy.choose(controller, req, now) # -> scheme name

Policies here:

* :class:`MiLPolicy` — the paper's framework: the rdyX look-ahead
  (Figure 11) grants the long 3-LWC slot only when no other column
  command becomes ready within X cycles, falling back to MiLC
  otherwise; writes granted a long slot may ship the shorter MiLC code
  when it has fewer zeros (the Section 4.6 write optimization).
* :class:`MiLCOnlyPolicy` — always the base code (the "MiLC-only" bars).
* CAFO and fixed-burst-length variants reuse
  :class:`repro.controller.controller.AlwaysScheme`.
"""

from __future__ import annotations

import numpy as np

from ..coding.registry import scheme_info
from .config import MiLConfig

__all__ = ["MiLPolicy", "MiLCOnlyPolicy"]


class MiLCOnlyPolicy:
    """Encode every burst with the base MiLC code."""

    probe = None  # telemetry slot; set by ChannelController.attach_probe

    def __init__(self, scheme: str = "milc"):
        self.scheme = scheme
        self.extra_cl = scheme_info(scheme).extra_latency

    def choose(self, controller, request, now: int) -> str:
        if self.probe is not None:
            self.probe.decision(now, "fixed", self.scheme)
        return self.scheme


class MiLPolicy:
    """The opportunistic MiL decision logic.

    Parameters
    ----------
    config:
        Framework knobs (schemes, look-ahead X, write optimization).
    zeros_by_scheme:
        Per-line zero-count tables (from
        :func:`repro.coding.pipeline.precompute_line_zeros`), indexed by
        the request's ``line_id``.  Needed only for the write
        optimization; reads never inspect data (Section 4.6).

    Statistics ``long_grants``/``base_grants`` record the Figure 22 mix;
    ``write_optimized`` counts long-slot writes that shipped MiLC.
    """

    def __init__(
        self,
        config: MiLConfig | None = None,
        zeros_by_scheme: dict[str, np.ndarray] | None = None,
    ):
        self.config = config if config is not None else MiLConfig()
        self.zeros_by_scheme = zeros_by_scheme
        self.extra_cl = self.config.extra_cl
        self.probe = None  # telemetry slot; observes, never steers
        self.long_grants = 0
        self.base_grants = 0
        self.fallback_grants = 0
        self.write_optimized = 0

    def choose(self, controller, request, now: int) -> str:
        cfg = self.config
        if cfg.short_lookahead is not None:
            # Extended decision tier (Section 4.2's "or the original
            # data"; Section 7.5.2's "more sophisticated decision logic
            # is possible").  Two saturation signals ship the burst
            # uncoded: a deep read queue (random-access workloads whose
            # closed rows never look "ready" yet queue-delay compounds),
            # or several demand reads crowding the short window.  Posted
            # writes are not counted — they lose nothing to one cycle.
            if len(controller.read_queue) >= cfg.fallback_queue_depth:
                self.fallback_grants += 1
                if self.probe is not None:
                    self.probe.decision(now, "fallback", cfg.fallback_scheme)
                return cfg.fallback_scheme
            imminent = controller.column_ready_within(
                now, cfg.short_lookahead, exclude=request,
                include_prefetches=cfg.count_prefetches,
                reads_only=True,
            )
            if imminent >= cfg.fallback_threshold:
                self.fallback_grants += 1
                if self.probe is not None:
                    self.probe.decision(now, "fallback", cfg.fallback_scheme)
                return cfg.fallback_scheme

        window = cfg.effective_lookahead
        others_ready = controller.column_ready_within(
            now, window, exclude=request,
            include_prefetches=cfg.count_prefetches,
        )
        if others_ready > 0:
            # Another column command would be delayed by the long code:
            # Section 4.2 says fall back to the simpler scheme.
            self.base_grants += 1
            if self.probe is not None:
                self.probe.decision(now, "base", cfg.base_scheme, others_ready)
            return cfg.base_scheme

        self.long_grants += 1
        scheme = cfg.long_scheme
        if (
            cfg.write_optimization
            and request.is_write
            and self.zeros_by_scheme is not None
            and request.line_id >= 0
        ):
            # The controller holds write data, so it can encode with
            # both schemes ahead of time and ship the sparser one; the
            # base code is never *longer*, so no command is delayed.
            long_zeros = int(self.zeros_by_scheme[cfg.long_scheme][request.line_id])
            base_zeros = int(self.zeros_by_scheme[cfg.base_scheme][request.line_id])
            if base_zeros < long_zeros:
                self.write_optimized += 1
                if self.probe is not None:
                    self.probe.write_optimized()
                scheme = cfg.base_scheme
        if self.probe is not None:
            self.probe.decision(now, "long", scheme, others_ready)
        return scheme

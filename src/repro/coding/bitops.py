"""Bit-level utilities shared by every coding scheme.

All codecs in :mod:`repro.coding` operate on *bit arrays*: numpy ``uint8``
arrays whose elements are 0 or 1, with the most significant bit of each
byte first.  This matches the way the paper draws codewords (Figure 10,
Figure 13) and makes odd codeword widths (9, 17, 80 bits) natural to
express.

The helpers here are vectorised: they accept an array of any leading
shape and operate on the trailing axis, so the same code path serves a
single byte in a unit test and a 30k-line trace in the simulator.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NATIVE_POPCOUNT",
    "bytes_to_bits",
    "bits_to_bytes",
    "popcount_bits",
    "zeros_in_bits",
    "popcount_bytes",
    "popcount_per_byte",
    "zeros_in_bytes",
    "toggle_count_bytes",
    "int_popcount",
    "ints_to_bits",
    "bits_to_ints",
    "byte_popcount_table",
    "parse_bitstring",
    "format_bits",
]

# numpy >= 2.0 exposes the CPU popcount instruction; older releases fall
# back to the 256-entry byte table below.  The flag is public so the
# benchmark suite can tell which code path its numbers describe.
HAVE_NATIVE_POPCOUNT = hasattr(np, "bitwise_count")

# int.bit_count() arrived in Python 3.10; the lambda keeps 3.9 working.
_int_bit_count = getattr(int, "bit_count", None) or (
    lambda v: bin(v).count("1")
)


def int_popcount(value: int) -> int:
    """Popcount of a non-negative Python int (``int.bit_count`` when available)."""
    if value < 0:
        raise ValueError("popcount of a negative int is undefined")
    return _int_bit_count(value)


def bytes_to_bits(data: np.ndarray) -> np.ndarray:
    """Expand a uint8 array into a bit array (MSB first).

    The output has the same leading shape with the trailing axis expanded
    by a factor of eight: shape ``(..., n)`` becomes ``(..., n * 8)``.
    """
    data = np.asarray(data, dtype=np.uint8)
    return np.unpackbits(data, axis=-1)


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a bit array (MSB first) back into uint8 bytes.

    The trailing axis length must be a multiple of eight.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape[-1] % 8 != 0:
        raise ValueError(
            f"bit array trailing axis ({bits.shape[-1]}) is not a multiple of 8"
        )
    return np.packbits(bits, axis=-1)


def popcount_bits(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Count the 1s along ``axis`` of a bit array."""
    return np.count_nonzero(np.asarray(bits), axis=axis)


def zeros_in_bits(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Count the 0s along ``axis`` of a bit array.

    The number of 0s is what the DDR4 pseudo-open-drain interface pays
    energy for, so this is the quantity every experiment ultimately sums.
    """
    bits = np.asarray(bits)
    return bits.shape[axis] - np.count_nonzero(bits, axis=axis)


def ints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Convert integers to fixed-width bit arrays (MSB first).

    ``values`` of shape ``(...,)`` become bits of shape ``(..., width)``.
    """
    values = np.asarray(values, dtype=np.int64)
    if width < 1 or width > 63:
        raise ValueError(f"width must be in [1, 63], got {width}")
    if np.any(values < 0) or np.any(values >= (1 << width)):
        raise ValueError(f"values do not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    return ((values[..., None] >> shifts) & 1).astype(np.uint8)


def bits_to_ints(bits: np.ndarray) -> np.ndarray:
    """Convert fixed-width bit arrays (MSB first) back to integers."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[-1]
    if width > 63:
        raise ValueError(f"width {width} too large for int64 conversion")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    return (bits << shifts).sum(axis=-1)


_BYTE_POPCOUNT = np.array(
    [_int_bit_count(v) for v in range(256)], dtype=np.uint8
)


def byte_popcount_table() -> np.ndarray:
    """Return a 256-entry lookup table mapping a byte to its popcount.

    Returned as a copy so callers can't corrupt the module-level table.
    """
    return _BYTE_POPCOUNT.copy()


def _per_byte_popcount(data: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint8 array (native or table-driven)."""
    if HAVE_NATIVE_POPCOUNT:
        return np.bitwise_count(data)
    return _BYTE_POPCOUNT[data]


def popcount_per_byte(data: np.ndarray) -> np.ndarray:
    """Element-wise popcount of a uint8 array (same shape, uint8 out).

    The building block the batched codec kernels use to cost candidate
    rows without reducing: each byte is replaced by its number of 1
    bits.  Native ``np.bitwise_count`` when available, byte table
    otherwise.
    """
    data = np.asarray(data, dtype=np.uint8)
    return _per_byte_popcount(data)


def popcount_bytes(data: np.ndarray, axis: int = -1) -> np.ndarray:
    """Count the 1 *bits* along ``axis`` of a uint8 byte array.

    This is the fast path for whole-byte payloads: it never expands the
    data 8x the way ``bytes_to_bits`` + :func:`popcount_bits` would.
    With numpy >= 2.0 it compiles to the CPU popcount instruction
    (``np.bitwise_count``, the vectorised ``int.bit_count()``); older
    numpy uses the 256-entry byte table.
    """
    data = np.asarray(data, dtype=np.uint8)
    return _per_byte_popcount(data).sum(axis=axis, dtype=np.int64)


def zeros_in_bytes(data: np.ndarray, axis: int = -1) -> np.ndarray:
    """Count the 0 *bits* along ``axis`` of a uint8 byte array.

    Byte-level dual of :func:`zeros_in_bits` — the quantity the DDR4
    pseudo-open-drain interface pays energy for, counted without ever
    unpacking to a bit array.
    """
    data = np.asarray(data, dtype=np.uint8)
    return data.shape[axis] * 8 - popcount_bytes(data, axis=axis)


def toggle_count_bytes(
    before: np.ndarray, after: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Count bit positions that differ between two uint8 byte arrays.

    The wire-flip (transition) count an unterminated interface pays for
    when the bus goes from ``before`` to ``after``: the popcount of the
    XOR, summed along ``axis``.
    """
    before = np.asarray(before, dtype=np.uint8)
    after = np.asarray(after, dtype=np.uint8)
    return popcount_bytes(before ^ after, axis=axis)


def parse_bitstring(text: str) -> np.ndarray:
    """Parse a human-readable bit string like ``"1011 0001"`` into bits.

    Spaces and underscores are ignored, which makes test vectors easy to
    transcribe from the paper's figures.
    """
    cleaned = text.replace(" ", "").replace("_", "")
    if not cleaned or any(c not in "01" for c in cleaned):
        raise ValueError(f"not a bit string: {text!r}")
    return np.array([int(c) for c in cleaned], dtype=np.uint8)


def format_bits(bits: np.ndarray, group: int = 8) -> str:
    """Render a 1-D bit array as a grouped string for debugging."""
    bits = np.asarray(bits).ravel()
    chars = "".join(str(int(b)) for b in bits)
    if group <= 0:
        return chars
    return " ".join(chars[i : i + group] for i in range(0, len(chars), group))

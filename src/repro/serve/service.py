"""`CampaignService`: the asyncio scheduler loop around the job manager.

One service owns one :class:`~repro.serve.jobs.JobManager`, one
:class:`~repro.serve.shards.ShardPool`, and one
:class:`~repro.serve.store.ResultStore`, all driven from a single event
loop.  The flow per work unit (one content-addressed cache key):

1. ``submit`` scans the campaign cache (hits settle immediately and
   never reach a shard) and queues the misses with priority + FIFO
   order and bounded back-pressure;
2. the scheduler leases keys to free shards; duplicate submissions are
   already coalesced by the manager, so a key executes at most once no
   matter how many jobs want it;
3. a shard reply of ``ok`` is finished through the exact code path a
   local campaign uses (:func:`repro.campaign.runner._finish`), which
   is what keeps served cache files byte-identical to local ones;
4. ``err`` replies retry with exponential backoff up to ``retries``
   attempts; a *died* shard releases its lease back to the queue
   (charged as one attempt) and the pool respawns the worker;
5. completion updates every waiting job's event log and records the
   keys under the job's namespace in the result store; a quota/GC
   sweep runs opportunistically whenever a job finishes.

The service process pins ``REPRO_CACHE_DIR`` to the store's ``runs/``
directory for its lifetime, so shard children (forked after start)
and in-process cache probes all address the same store.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..campaign import cache
from ..campaign.runner import _finish
from ..campaign.spec import RunSpec
from .jobs import DEFAULT_QUEUE_LIMIT, Job, JobManager
from .journal import JOURNAL_NAME, Journal
from .protocol import spec_from_canonical
from .shards import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TIMEOUT_S,
    DEFAULT_SHARDS,
    LeaseBroker,
    shard_count_from_env,
)
from .store import DEFAULT_QUOTA, ResultStore

__all__ = ["CampaignService", "ServiceConfig", "default_shards"]

METRICS_SCHEMA = "repro.serve.metrics/v1"
METRICS_NAME = "metrics.jsonl"


def default_shards() -> int:
    return shard_count_from_env(DEFAULT_SHARDS)


@dataclass
class ServiceConfig:
    """Everything `repro serve` can tune."""

    store_root: str | Path = ".cache/serve"
    shards: int | None = None  # None -> REPRO_SERVE_SHARDS or 2
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    quota: int = DEFAULT_QUOTA
    quotas: dict = field(default_factory=dict)
    retries: int = 2
    backoff_base_s: float = 0.05  # attempt n sleeps base * 2**(n-1)
    backoff_max_s: float = 2.0
    fingerprint: str | None = None  # tests pin this; None = real model
    # Remote workers: shared handshake token (None = accept any) and
    # the liveness knobs for the lease broker.
    worker_token: str | None = None
    heartbeat_s: float = DEFAULT_HEARTBEAT_S
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S
    # Durability: journal job submissions + events under the store
    # root and resume them on restart.
    journal: bool = True
    # Observability: >0 starts the rolling JSONL metrics exporter at
    # that interval; output defaults to <store_root>/metrics.jsonl.
    metrics_interval_s: float = 0.0
    metrics_out: str | Path | None = None


class CampaignService:
    """The resident campaign engine behind the job API."""

    def __init__(self, config: ServiceConfig | None = None,
                 telemetry=None) -> None:
        self.config = config or ServiceConfig()
        shards = self.config.shards
        self.shards = default_shards() if shards is None else max(0, shards)
        self.store = ResultStore(
            self.config.store_root,
            quota=self.config.quota,
            quotas=self.config.quotas,
        )
        self.manager = JobManager(
            queue_limit=self.config.queue_limit,
            fingerprint=self.config.fingerprint,
        )
        self.pool = LeaseBroker(
            self.shards,
            self._on_result,
            heartbeat_s=self.config.heartbeat_s,
            lease_timeout_s=self.config.lease_timeout_s,
            on_fleet_change=self._fleet_changed,
        )
        # Drop per-key retry bookkeeping the moment the manager forgets
        # a unit (e.g. every waiter cancelled mid-backoff) — otherwise
        # `_attempts` grows forever on cancel-heavy workloads.
        self.manager.on_drop = self._attempts_drop
        self._probe = (
            telemetry.service_probe() if telemetry is not None else None
        )
        self._wake = asyncio.Event()
        self._gate = asyncio.Event()  # cleared == paused
        self._gate.set()
        self._scheduler: asyncio.Task | None = None
        self._metrics_task: asyncio.Task | None = None
        self._retry_tasks: set = set()
        self._attempts: dict[str, int] = {}  # key -> failed attempts
        self._saved_cache_dir: str | None = None
        self._running = False
        self._started_at: float | None = None
        self.journal: Journal | None = None
        self.resume_report: dict | None = None
        self.counters = {
            "executed": 0, "retried": 0, "died": 0, "swept": 0,
        }

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Pin the cache dir, replay the journal, spawn the fleet."""
        if self._running:
            return
        self._running = True
        self._started_at = time.time()
        self.store.runs_dir.mkdir(parents=True, exist_ok=True)
        self._saved_cache_dir = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(self.store.runs_dir)
        if self.config.journal:
            self._open_journal()
        self.pool.start()
        loop = asyncio.get_running_loop()
        self._scheduler = loop.create_task(self._schedule_loop())
        if self.config.metrics_interval_s > 0:
            self._metrics_task = loop.create_task(self._export_metrics())
        self._wake.set()

    def _open_journal(self) -> None:
        """Replay any prior journal, then keep appending to it.

        Replay happens *before* the broker starts, so re-queued keys
        are simply waiting in the heap when the first slot frees — a
        restarted service resumes a crashed campaign with the same job
        ids and event-log prefix it had before.
        """
        path = self.store.root / JOURNAL_NAME
        records = Journal.read(path)
        self.journal = Journal(path)
        self.journal.open()
        self.manager.bind_journal(self.journal)
        if records:
            self.resume_report = self.manager.restore(records)
            # Results that settled across the crash (cache file landed
            # before the finished event) were completed by restore()
            # directly on the manager, so re-pin them in the tenant
            # indexes here: the GC sweep must keep seeing them.
            by_namespace: dict[str, list[str]] = {}
            for job in self.manager.jobs.values():
                done = [k for k, s in job.key_state.items() if s == "done"]
                if done:
                    by_namespace.setdefault(job.namespace, []).extend(done)
            for namespace, keys in by_namespace.items():
                self.store.record(namespace, keys)

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wake.set()
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            try:
                await self._metrics_task
            except asyncio.CancelledError:
                pass
            self._metrics_task = None
            self._write_metrics_sample()  # final sample at shutdown
        for task in list(self._retry_tasks):
            task.cancel()
        self.pool.close()
        if self.journal is not None:
            self.journal.close()
        if self._saved_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = self._saved_cache_dir

    def pause(self) -> None:
        """Stop leasing new work (in-flight leases drain normally)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()
        self._wake.set()

    # -- submission -----------------------------------------------------
    def submit_specs(
        self,
        specs,
        namespace: str = "default",
        priority: int = 0,
        label: str | None = None,
    ) -> Job:
        """Queue a campaign of :class:`RunSpec`; returns the job.

        Raises :class:`~repro.serve.jobs.QueueFullError` on
        back-pressure and ``KeyError``/``ValueError`` on invalid specs
        (both mapped to client errors by the HTTP layer).
        """
        job = self.manager.submit(
            specs, namespace=namespace, priority=priority, label=label,
        )
        hits = job.counters["cache_hits"]
        if hits and job.keys:
            # Cache hits touch the namespace index too: recency is
            # about *use*, not just execution.
            self.store.record(
                namespace,
                [k for k, s in job.key_state.items() if s == "done"],
            )
        if self._probe is not None:
            self._probe.submitted(job, hits)
            self._update_gauges()
        self._wake.set()
        return job

    def submit_payload(self, payload: dict) -> Job:
        """Submit from a wire payload (``POST /v1/jobs`` body)."""
        specs = payload_specs(payload)
        return self.submit_specs(
            specs,
            namespace=str(payload.get("namespace", "default")),
            priority=int(payload.get("priority", 0)),
            label=payload.get("label"),
        )

    # -- scheduling -----------------------------------------------------
    async def _schedule_loop(self) -> None:
        while True:
            await self._gate.wait()
            dispatched = False
            while self._gate.is_set() and self.pool.free_slots > 0:
                work = self.manager.next_work()
                if work is None:
                    break
                key, spec = work
                # The cache may have filled in since submit (another
                # tenant, another service on the same store).
                summary = cache.load(spec, self.manager.fingerprint)
                if summary is not None:
                    self._complete(key, wall_s=None, executed=False)
                    dispatched = True
                    continue
                if not self.pool.dispatch(key, spec):
                    # The free slot vanished between the check and the
                    # lease (a remote worker died on send): put the key
                    # straight back so it can't strand in the leased set.
                    self.manager.release(
                        key, error="no free worker", requeue=True
                    )
                    break
                dispatched = True
            if self._probe is not None and dispatched:
                self._update_gauges()
            self._wake.clear()
            if self.manager.queue_depth == 0 or self.pool.free_slots == 0:
                await self._wake.wait()

    def _on_result(self, key: str, spec: RunSpec, outcome: tuple) -> None:
        kind = outcome[0]
        if kind == "ok":
            _, body, wall_s = outcome
            _finish(spec, body, wall_s, self.manager.fingerprint)
            self._attempts.pop(key, None)
            self.counters["executed"] += 1
            self._complete(key, wall_s=wall_s, executed=True)
        else:  # "err" (worker exception) or "died" (killed shard)
            error = outcome[1]
            if kind == "died":
                self.counters["died"] += 1
            attempts = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempts
            if attempts > self.config.retries:
                self._attempts.pop(key, None)
                self.manager.fail(key, error)
                self._sweep_if_idle()
            else:
                self.counters["retried"] += 1
                delay = min(
                    self.config.backoff_max_s,
                    self.config.backoff_base_s * (2 ** (attempts - 1)),
                )
                task = asyncio.get_running_loop().create_task(
                    self._requeue_later(key, error, delay)
                )
                self._retry_tasks.add(task)
                task.add_done_callback(self._retry_tasks.discard)
        if self._probe is not None:
            self._probe.result(kind)
            self._update_gauges()
        self._wake.set()

    async def _requeue_later(self, key: str, error: str,
                             delay: float) -> None:
        """Retry-with-backoff: the lease returns to the queue later."""
        await asyncio.sleep(delay)
        self.manager.release(key, error=error, requeue=True)
        self._wake.set()

    def _complete(self, key: str, wall_s, executed: bool) -> None:
        jobs = self.manager.complete(key, wall_s=wall_s, executed=executed)
        by_namespace: dict[str, list[str]] = {}
        for job in jobs:
            by_namespace.setdefault(job.namespace, []).append(key)
        for namespace, keys in by_namespace.items():
            self.store.record(namespace, keys)
        self._sweep_if_idle()

    def _attempts_drop(self, key: str) -> None:
        """Manager forgot a unit (all waiters gone): forget its retries."""
        self._attempts.pop(key, None)

    def _fleet_changed(self) -> None:
        """Broker capacity changed: wake the scheduler, refresh gauges."""
        self._wake.set()
        if self._probe is not None:
            self._update_gauges()

    def _sweep_if_idle(self) -> None:
        """Quota/GC sweep whenever the work queue drains.

        Sweeping only at idle keeps eviction from racing a key that a
        queued job is about to pin; an admin can also force one through
        ``POST /v1/sweep``.
        """
        if self.manager.outstanding == 0:
            report = self.store.sweep()
            if report["evicted"] or report["removed_files"]:
                self.counters["swept"] += 1

    def _update_gauges(self) -> None:
        self._probe.gauges(
            queue_depth=self.manager.queue_depth,
            inflight=self.manager.inflight,
            shards=len(self.pool.busy_leases),
            workers=self.pool.workers_connected,
        )

    # -- observability ---------------------------------------------------
    def metrics(self) -> dict:
        """One ``/v1/metrics`` sample: gauges, counters, and the fleet."""
        now = time.time()
        manager = self.manager
        sample = {
            "schema": METRICS_SCHEMA,
            "ts": round(now, 3),
            "uptime_s": (
                round(now - self._started_at, 3)
                if self._started_at is not None else None
            ),
            "queue": {
                "depth": manager.queue_depth,
                "inflight": manager.inflight,
                "outstanding": manager.outstanding,
                "limit": manager.queue_limit,
            },
            "jobs": {
                state: len(manager.list_jobs(state=state))
                for state in ("queued", "running", "done", "failed",
                              "cancelled")
            },
            "counters": {
                "manager": dict(manager.counters),
                "service": dict(self.counters),
            },
            "workers": {
                "connected": self.pool.workers_connected,
                "deaths": self.pool.worker_deaths,
                "shard_respawns": self.pool.respawns,
                "fleet": self.pool.fleet(),
            },
            "journal": (
                self.journal.stats() if self.journal is not None else None
            ),
        }
        return sample

    def _metrics_path(self) -> Path:
        if self.config.metrics_out is not None:
            return Path(self.config.metrics_out)
        return self.store.root / METRICS_NAME

    def _write_metrics_sample(self) -> None:
        path = self._metrics_path()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(self.metrics(), sort_keys=True) + "\n")
        except OSError:
            pass  # an unwritable exporter must never take the service down

    async def _export_metrics(self) -> None:
        """The rolling exporter: one JSONL sample per interval."""
        while True:
            await asyncio.sleep(self.config.metrics_interval_s)
            self._write_metrics_sample()

    # -- queries --------------------------------------------------------
    def job(self, job_id: str) -> Job:
        return self.manager.job(job_id)

    def cancel(self, job_id: str) -> Job:
        job = self.manager.cancel(job_id)
        self._wake.set()
        return job

    def result_rows(self, job_id: str) -> list:
        """One dict per completed spec, submission-ordered.

        ``summary`` is the cached payload's ``summary`` block verbatim
        (the byte-identical body); wall-clock facts ride in ``meta``.
        """
        job = self.manager.job(job_id)
        rows = []
        for spec, key in zip(job.specs, job.keys):
            state = job.key_state.get(key)
            if state != "done":
                continue
            path = self.store.runs_dir / f"{key}.json"
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # evicted or raced GC: absent from the rows
            rows.append({
                "job": job.id,
                "cache_key": key,
                "spec": spec.canonical(),
                "summary": payload.get("summary", {}),
                "meta": payload.get("meta", {}),
            })
        return rows

    def stats(self) -> dict:
        return {
            "shards": self.shards,
            "respawns": self.pool.respawns,
            "workers": self.pool.workers_connected,
            "worker_deaths": self.pool.worker_deaths,
            "queue_depth": self.manager.queue_depth,
            "inflight": self.manager.inflight,
            "queue_limit": self.manager.queue_limit,
            "jobs": {
                state: len(self.manager.list_jobs(state=state))
                for state in ("queued", "running", "done", "failed",
                              "cancelled")
            },
            "manager": dict(self.manager.counters),
            "service": dict(self.counters),
            "store": self.store.stats(),
        }


def payload_specs(payload: dict) -> list:
    """Decode a submission payload into a list of :class:`RunSpec`.

    Two kinds are accepted:

    * ``{"kind": "specs", "specs": [RunSpec.canonical() dicts]}``
    * ``{"kind": "scenario", "scenario": <normalized scenario doc>}`` —
      compiled server-side, so a thin client can submit a scenario file
      without importing the engine.
    """
    kind = payload.get("kind", "specs")
    if kind == "specs":
        raw = payload.get("specs")
        if not isinstance(raw, list) or not raw:
            raise ValueError("payload needs a non-empty 'specs' list")
        return [spec_from_canonical(entry) for entry in raw]
    if kind == "scenario":
        from ..scenario import compile_scenario, parse_scenario

        doc = payload.get("scenario")
        if not isinstance(doc, dict):
            raise ValueError("payload needs a 'scenario' document")
        return compile_scenario(parse_scenario(doc))
    raise ValueError(f"unknown submission kind {kind!r}")

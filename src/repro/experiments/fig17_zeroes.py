"""Figure 17: zeros transferred, normalized to the DDR4 DBI baseline.

The paper reports MiL beating DBI, CAFO2, CAFO4, and MiLC-only by 49 %,
12 %, 11 %, and 9 % on average, with the biggest cuts on MM, STRMATCH,
and GUPS.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "SCHEMES"]

SCHEMES = ("cafo2", "cafo4", "milc", "mil")


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy=policy,
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
        for policy in ("dbi",) + SCHEMES
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))

    def summary(bench, policy):
        return runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                            policy=policy,
                            accesses_per_core=accesses_per_core)]

    rows = []
    per_scheme = {s: [] for s in SCHEMES}
    for bench in BENCHMARK_ORDER:
        base = summary(bench, "dbi")
        row = [bench]
        for scheme in SCHEMES:
            ratio = (summary(bench, scheme).total_zeros
                     / max(1, base.total_zeros))
            row.append(ratio)
            per_scheme[scheme].append(ratio)
        rows.append(row)

    result = ExperimentResult(
        experiment="fig17",
        title=(
            "Figure 17: zeros on the bus, normalized to the DDR4 DBI "
            "baseline"
        ),
        headers=["benchmark"] + list(SCHEMES),
        rows=rows,
        paper_claim=(
            "MiL reduces zeros 49% vs DBI and beats CAFO2/CAFO4/"
            "MiLC-only by 12%/11%/9%"
        ),
    )
    for scheme, ratios in per_scheme.items():
        result.observations[f"mean_{scheme}"] = float(np.mean(ratios))
    mil = np.array(per_scheme["mil"])
    result.observations["mil_vs_milc_only"] = float(
        1 - np.mean(mil / np.array(per_scheme["milc"]))
    )
    result.observations["mil_vs_cafo2"] = float(
        1 - np.mean(mil / np.array(per_scheme["cafo2"]))
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Memory-trace data structures passed between pipeline stages.

The reproduction pipeline is::

    benchmark generator        (repro.workloads.benchmarks)
        -> per-core CPU access streams
    cache hierarchy filter     (repro.system.hierarchy)
        -> MemoryTrace: DRAM-level records with think-time gaps
    timing simulator           (repro.system.simulator)
        -> SimulationResult

A :class:`TraceRecord` is one DRAM transaction candidate.  ``gap`` is the
CPU think time (already converted to DRAM cycles) separating it from the
core's previous record — the quantity that turns cache hit-rates into
memory intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceRecord", "MemoryTrace"]


@dataclass(slots=True)
class TraceRecord:
    """One LLC-to-memory transaction in program order for a core."""

    core: int
    gap: int  # DRAM cycles of CPU work before this record can issue
    address: int
    is_write: bool
    line_id: int
    is_prefetch: bool = False
    dependent: bool = False  # serialised behind the previous demand read


@dataclass
class MemoryTrace:
    """Everything the timing simulator needs for one benchmark run."""

    name: str
    records_by_core: list  # list[list[TraceRecord]]
    line_data: np.ndarray  # (n_records, 64) uint8 payloads
    cpu_accesses: int = 0  # CPU-level accesses the trace represents
    l1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n_records = sum(len(recs) for recs in self.records_by_core)
        if self.line_data.shape != (n_records, 64):
            raise ValueError(
                f"line_data shape {self.line_data.shape} does not match "
                f"{n_records} trace records"
            )

    @property
    def line_digest(self) -> str:
        """Content digest of ``line_data`` (zero-table cache key).

        Hashed once per trace object; ``build_trace`` caches and reuses
        traces within a process, so every policy replaying this trace
        shares the digest — and therefore the cached zero tables.
        """
        digest = getattr(self, "_line_digest", None)
        if digest is None:
            from ..coding.zerocache import lines_digest

            digest = self._line_digest = lines_digest(self.line_data)
        return digest

    @property
    def total_records(self) -> int:
        return sum(len(recs) for recs in self.records_by_core)

    @property
    def demand_reads(self) -> int:
        return sum(
            1
            for recs in self.records_by_core
            for r in recs
            if not r.is_write and not r.is_prefetch
        )

    @property
    def writes(self) -> int:
        return sum(
            1 for recs in self.records_by_core for r in recs if r.is_write
        )

    @property
    def prefetches(self) -> int:
        return sum(
            1 for recs in self.records_by_core for r in recs if r.is_prefetch
        )

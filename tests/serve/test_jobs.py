"""JobManager unit tests: scheduling, coalescing, back-pressure.

The manager is synchronous and process-free, so everything here drives
it directly — no shards, no sockets, and a ``cache_probe`` stub instead
of the real campaign cache.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import RunSpec, cache
from repro.serve.jobs import JobManager, JobState, QueueFullError

SCALE = 80
FP = "test-fp"

NO_HITS = lambda spec: None  # noqa: E731


def spec(seed: int, policy: str = "dbi") -> RunSpec:
    return RunSpec(benchmark="GUPS", system="ddr4-server", policy=policy,
                   accesses_per_core=SCALE, seed=seed)


def manager(**kwargs) -> JobManager:
    kwargs.setdefault("fingerprint", FP)
    return JobManager(**kwargs)


def drain(mgr: JobManager) -> list[str]:
    """Lease-and-complete everything; returns keys in lease order."""
    order = []
    while True:
        work = mgr.next_work()
        if work is None:
            return order
        key, _spec = work
        order.append(key)
        mgr.complete(key, wall_s=0.0, executed=True)


class TestSubmission:
    def test_submit_dedupes_and_preserves_order(self):
        mgr = manager()
        job = mgr.submit([spec(1), spec(2), spec(1)], cache_probe=NO_HITS)
        assert job.total == 2
        assert job.specs == [spec(1), spec(2)]
        assert job.keys == [cache.cache_key(s, FP) for s in job.specs]
        assert job.state == JobState.QUEUED

    def test_empty_submission_rejected(self):
        with pytest.raises(ValueError):
            manager().submit([], cache_probe=NO_HITS)

    def test_cache_hits_settle_immediately(self):
        mgr = manager()
        job = mgr.submit([spec(1)], cache_probe=lambda s: object())
        assert job.state == JobState.DONE
        assert job.counters["cache_hits"] == 1
        assert mgr.outstanding == 0

    def test_descriptor_shape(self):
        job = manager().submit([spec(1)], cache_probe=NO_HITS,
                               namespace="ns", priority=3, label="x")
        d = job.descriptor()
        assert d["id"] == job.id and d["namespace"] == "ns"
        assert d["priority"] == 3 and d["label"] == "x"
        assert d["total"] == 1 and d["done"] == 0
        assert d["state"] == "queued"


class TestScheduling:
    def test_fifo_within_priority(self):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        b = mgr.submit([spec(2)], cache_probe=NO_HITS)
        assert drain(mgr) == [a.keys[0], b.keys[0]]

    def test_priority_beats_fifo(self):
        mgr = manager()
        low = mgr.submit([spec(1)], priority=0, cache_probe=NO_HITS)
        high = mgr.submit([spec(2)], priority=5, cache_probe=NO_HITS)
        assert drain(mgr) == [high.keys[0], low.keys[0]]

    def test_lease_then_complete_settles_job(self):
        mgr = manager()
        job = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, leased_spec = mgr.next_work()
        assert leased_spec == spec(1)
        assert job.state == JobState.RUNNING
        assert mgr.inflight == 1
        touched = mgr.complete(key, wall_s=1.0, executed=True)
        assert touched == [job]
        assert job.state == JobState.DONE
        assert job.counters["executed"] == 1

    def test_fail_after_retries_fails_job(self):
        mgr = manager()
        job = mgr.submit([spec(1), spec(2)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()
        mgr.fail(key, "boom")
        assert job.state == JobState.RUNNING  # one key still pending
        key2, _ = mgr.next_work()
        mgr.complete(key2, executed=True)
        assert job.state == JobState.FAILED
        assert "1 of 2" in job.error
        assert job.counters["failed"] == 1


class TestCoalescing:
    def test_duplicate_submission_coalesces(self):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        b = mgr.submit([spec(1)], cache_probe=NO_HITS)
        assert mgr.queue_depth == 1  # one work unit, two waiters
        assert b.counters["coalesced"] == 1
        key, _ = mgr.next_work()
        assert mgr.next_work() is None  # nothing else to lease
        mgr.complete(key, executed=True)
        assert a.state == JobState.DONE and b.state == JobState.DONE
        # One execution settled both jobs.
        assert a.counters["executed"] == b.counters["executed"] == 1

    def test_coalescing_onto_leased_key(self):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()  # leased before the duplicate arrives
        b = mgr.submit([spec(1)], cache_probe=NO_HITS)
        assert b.counters["coalesced"] == 1
        mgr.complete(key, executed=True)
        assert a.state == b.state == JobState.DONE

    def test_hot_duplicate_bumps_priority(self):
        mgr = manager()
        mgr.submit([spec(1)], priority=0, cache_probe=NO_HITS)
        mgr.submit([spec(2)], priority=0, cache_probe=NO_HITS)
        hot = mgr.submit([spec(2)], priority=9, cache_probe=NO_HITS)
        assert drain(mgr)[0] == hot.keys[0]


class TestBackPressure:
    def test_rejection_is_atomic(self):
        mgr = manager(queue_limit=2)
        mgr.submit([spec(1), spec(2)], cache_probe=NO_HITS)
        before = (mgr.queue_depth, dict(mgr.counters))
        with pytest.raises(QueueFullError):
            mgr.submit([spec(3)], cache_probe=NO_HITS)
        # No partial enqueue, no ghost job.
        assert mgr.queue_depth == before[0]
        assert mgr.counters["rejected"] == 1
        assert mgr.counters["submitted"] == before[1]["submitted"]

    def test_coalesced_keys_do_not_count_against_limit(self):
        mgr = manager(queue_limit=2)
        mgr.submit([spec(1), spec(2)], cache_probe=NO_HITS)
        # Same keys again: zero fresh work, accepted at the limit.
        job = mgr.submit([spec(1), spec(2)], cache_probe=NO_HITS)
        assert job.counters["coalesced"] == 2

    def test_leased_work_still_counts(self):
        mgr = manager(queue_limit=1)
        mgr.submit([spec(1)], cache_probe=NO_HITS)
        mgr.next_work()  # now leased, not queued
        with pytest.raises(QueueFullError):
            mgr.submit([spec(2)], cache_probe=NO_HITS)


class TestReleaseAndCancel:
    def test_release_requeues_for_waiters(self):
        mgr = manager()
        job = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()
        mgr.release(key, error="shard died", requeue=True)
        assert mgr.queue_depth == 1 and mgr.inflight == 0
        assert job.counters["retries"] == 1
        key2, _ = mgr.next_work()
        assert key2 == key
        mgr.complete(key, executed=True)
        assert job.state == JobState.DONE

    def test_cancel_drops_queued_only_keys(self):
        mgr = manager()
        job = mgr.submit([spec(1)], cache_probe=NO_HITS)
        mgr.cancel(job.id)
        assert job.state == JobState.CANCELLED
        assert mgr.next_work() is None  # unit dropped from the queue

    def test_cancel_keeps_keys_other_jobs_want(self):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        b = mgr.submit([spec(1)], cache_probe=NO_HITS)
        mgr.cancel(a.id)
        work = mgr.next_work()
        assert work is not None  # b still wants it
        mgr.complete(work[0], executed=True)
        assert b.state == JobState.DONE
        assert a.state == JobState.CANCELLED

    def test_unknown_job_raises(self):
        with pytest.raises(KeyError):
            manager().job("j999")


def assert_no_residue(mgr: JobManager) -> None:
    """Every per-key index must be empty once all jobs are terminal."""
    assert mgr._waiters == {}
    assert mgr._spec_by_key == {}
    assert mgr._pushed == {}
    assert mgr._queued == set()
    assert mgr._leased == set()
    assert mgr.next_work() is None


class TestCancelReleaseDeadlock:
    """Regression: cancelling a leased key's only waiter used to leave
    ``_waiters[key] == []`` forever — release() neither re-queued nor
    failed the key, the spec/waiter indexes leaked, and a later
    submission of the same spec coalesced onto a dead execution and
    hung."""

    def test_cancel_then_die_then_resubmit_completes(self):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()  # leased
        mgr.cancel(a.id)  # the only waiter goes away mid-lease
        # The worker then dies: the release must *drop* the unit, not
        # strand it.
        assert mgr.release(key, error="shard died", requeue=True) \
            == "dropped"
        assert_no_residue(mgr)
        # A fresh submission of the same spec must queue, lease, and
        # complete — pre-fix it coalesced onto nothing and hung.
        b = mgr.submit([spec(1)], cache_probe=NO_HITS)
        work = mgr.next_work()
        assert work is not None and work[0] == key
        mgr.complete(key, executed=True)
        assert b.state == JobState.DONE
        assert_no_residue(mgr)

    def test_cancel_then_success_still_drops_cleanly(self):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()
        mgr.cancel(a.id)
        # The lease finishes normally after the cancel: complete() on a
        # key whose only waiter is cancelled must also leave no residue.
        mgr.complete(key, executed=True)
        assert_no_residue(mgr)

    def test_release_outcomes(self):
        mgr = manager()
        assert mgr.release("nope") == "idle"
        job = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()
        assert mgr.release(key, error="x", requeue=True) == "requeued"
        key, _ = mgr.next_work()
        assert mgr.release(key, error="x", requeue=False) == "failed"
        assert job.state == JobState.FAILED
        assert_no_residue(mgr)

    def test_on_drop_fires_for_forgotten_units(self):
        dropped = []
        mgr = manager()
        mgr.on_drop = dropped.append
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()
        mgr.cancel(a.id)
        assert dropped == []  # leased: the drop waits for the release
        mgr.release(key, error="died", requeue=True)
        assert dropped == [key]


class TestCoalescePriorityBump:
    """Regression: the re-push condition was ``priority > 0``, which
    never bumped negative-priority keys and pushed useless duplicates
    whenever the new priority was merely positive."""

    def test_bump_works_below_zero(self):
        mgr = manager()
        cold = mgr.submit([spec(1)], priority=-5, cache_probe=NO_HITS)
        mgr.submit([spec(2)], priority=-1, cache_probe=NO_HITS)
        # A hotter duplicate at priority 0 must jump spec(1) ahead of
        # spec(2) even though 0 is not "> 0".
        mgr.submit([spec(1)], priority=0, cache_probe=NO_HITS)
        assert drain(mgr)[0] == cold.keys[0]

    def test_cooler_duplicate_pushes_nothing(self):
        mgr = manager()
        mgr.submit([spec(1)], priority=5, cache_probe=NO_HITS)
        mgr.submit([spec(1)], priority=3, cache_probe=NO_HITS)
        assert len(mgr._heap) == 1  # no useless duplicate entry

    def test_equal_duplicate_pushes_nothing(self):
        mgr = manager()
        mgr.submit([spec(1)], priority=2, cache_probe=NO_HITS)
        mgr.submit([spec(1)], priority=2, cache_probe=NO_HITS)
        assert len(mgr._heap) == 1


OPS = ("lease", "cancel_a", "cancel_b", "release", "complete", "fail")


class TestLifecycleInterleavings:
    """Exhaustive 4-step interleavings of cancel × release × retry ×
    complete over one coalesced work unit: whatever the order, no key
    strands, no index grows, and the spec stays resubmittable."""

    @pytest.mark.parametrize(
        "sequence", list(itertools.product(OPS, repeat=4)),
        ids=lambda s: "-".join(s),
    )
    def test_no_stranded_state(self, sequence):
        mgr = manager()
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        b = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key = a.keys[0]
        for op in sequence:
            if op == "lease":
                if key in mgr._queued:
                    assert mgr.next_work()[0] == key
            elif op == "cancel_a":
                mgr.cancel(a.id)
            elif op == "cancel_b":
                mgr.cancel(b.id)
            elif op == "release":
                mgr.release(key, error="retry", requeue=True)
            elif op == "complete":
                if key in mgr._leased:
                    mgr.complete(key, executed=True)
            elif op == "fail":
                if key in mgr._leased:
                    mgr.fail(key, "boom")
        # Settle whatever the interleaving left behind.
        if key in mgr._leased:
            mgr.complete(key, executed=True)
        work = mgr.next_work()
        if work is not None:
            mgr.complete(work[0], executed=True)
        assert a.finished and b.finished
        assert_no_residue(mgr)
        # Liveness: the same spec must still be runnable from scratch.
        c = mgr.submit([spec(1)], cache_probe=NO_HITS)
        work = mgr.next_work()
        assert work is not None and work[0] == key
        mgr.complete(key, executed=True)
        assert c.state == JobState.DONE
        assert_no_residue(mgr)

"""FR-FCFS memory controller with write drain and the MiL policy hook."""

from .controller import NO_EVENT_CACHE_ENV, AlwaysScheme, ChannelController
from .frfcfs import CandidateCommand, FRFCFSScheduler
from .queues import QueueFullError, TransactionQueue
from .request import MemoryRequest
from .writedrain import WriteDrainPolicy

__all__ = [
    "AlwaysScheme",
    "ChannelController",
    "CandidateCommand",
    "FRFCFSScheduler",
    "QueueFullError",
    "TransactionQueue",
    "MemoryRequest",
    "NO_EVENT_CACHE_ENV",
    "WriteDrainPolicy",
]

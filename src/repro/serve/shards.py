"""Process-based worker shards: leases, death detection, respawn.

Each shard is one long-lived ``multiprocessing.Process`` connected to
the service by a duplex pipe.  A shard holds **at most one lease** at a
time — the parent sends one :class:`~repro.campaign.spec.RunSpec`,
the shard answers with ``("ok", summary_body, wall_s)`` or
``("err", repr)`` — which makes lease accounting exact: whatever a dead
shard was holding is precisely ``shard.lease``.

Death detection needs no signals or polling loops: the parent registers
each pipe with the event loop (``loop.add_reader``), and a shard killed
mid-lease (SIGKILL included) closes its pipe end, which surfaces as
``EOFError`` on the next read.  The pool then reports the orphaned
lease to its ``on_result`` callback as a failure with ``died=True`` —
releasing the RunSpec back to the scheduler — and spawns a replacement
shard.

Shards are forked (falling back to ``spawn`` where ``fork`` is
unavailable) so they inherit the loaded model and the cache/codec
environment; the number of shards comes from ``--shards`` or
``REPRO_SERVE_SHARDS``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os

from ..campaign.runner import _execute

__all__ = ["ShardPool", "shard_count_from_env"]

SHARDS_ENV = "REPRO_SERVE_SHARDS"
DEFAULT_SHARDS = 2


def shard_count_from_env(default: int = DEFAULT_SHARDS) -> int:
    raw = os.environ.get(SHARDS_ENV, "")
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def _shard_main(conn) -> None:
    """Worker loop: one spec in, one summary out, until ``stop``."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if message[0] == "stop":
            return
        spec = message[1]
        try:
            body, wall_s = _execute(spec)
            reply = ("ok", body, wall_s)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            reply = ("err", repr(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Shard:
    """One worker process plus its parent-side pipe and current lease."""

    __slots__ = ("index", "proc", "conn", "lease")

    def __init__(self, index: int, ctx) -> None:
        self.index = index
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_main, args=(child,),
            name=f"repro-serve-shard-{index}", daemon=True,
        )
        self.proc.start()
        child.close()  # the parent keeps only its own end
        self.lease: tuple | None = None  # (key, spec) while working

    @property
    def busy(self) -> bool:
        return self.lease is not None

    def assign(self, key: str, spec) -> None:
        self.lease = (key, spec)
        self.conn.send(("run", spec))

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.proc.join(timeout=5)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)


class ShardPool:
    """Fixed-width pool of shards driven from one asyncio loop.

    ``on_result(key, spec, outcome)`` is called on the loop for every
    finished lease, where ``outcome`` is one of::

        ("ok", summary_body, wall_s)
        ("err", "<repr of the worker exception>")
        ("died", "<shard death description>")

    With ``width=0`` the pool executes leases inline on a thread of the
    loop's default executor — no processes at all, for tests and for
    cache-hit-dominated benches.
    """

    def __init__(self, width: int, on_result) -> None:
        self.width = max(0, int(width))
        self.on_result = on_result
        self._ctx = _mp_context()
        self._shards: dict[int, _Shard] = {}
        self._indices = iter(range(10 ** 9))
        self._loop: asyncio.AbstractEventLoop | None = None
        self.respawns = 0
        self._closing = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for _ in range(self.width):
            self._spawn()

    def _spawn(self) -> _Shard:
        shard = _Shard(next(self._indices), self._ctx)
        self._shards[shard.index] = shard
        self._loop.add_reader(
            shard.conn.fileno(), self._on_readable, shard
        )
        return shard

    def close(self) -> None:
        self._closing = True
        for shard in list(self._shards.values()):
            try:
                self._loop.remove_reader(shard.conn.fileno())
            except (ValueError, OSError):
                pass
            shard.close()
        self._shards.clear()

    # -- dispatch -------------------------------------------------------
    @property
    def free_slots(self) -> int:
        if self.width == 0:
            return 1  # inline mode: serial, but always willing
        return sum(1 for s in self._shards.values() if not s.busy)

    @property
    def busy_leases(self) -> list:
        return [s.lease for s in self._shards.values() if s.busy]

    def dispatch(self, key: str, spec) -> bool:
        """Lease ``spec`` to a free shard; False when all are busy."""
        if self.width == 0:
            self._loop.create_task(self._run_inline(key, spec))
            return True
        for shard in self._shards.values():
            if not shard.busy:
                try:
                    shard.assign(key, spec)
                except (BrokenPipeError, OSError):
                    self._reap(shard, notify=False)
                    continue
                return True
        return False

    async def _run_inline(self, key: str, spec) -> None:
        try:
            body, wall_s = await self._loop.run_in_executor(
                None, _execute, spec
            )
            outcome = ("ok", body, wall_s)
        except Exception as exc:  # noqa: BLE001
            outcome = ("err", repr(exc))
        self.on_result(key, spec, outcome)

    # -- completion and death ------------------------------------------
    def _on_readable(self, shard: _Shard) -> None:
        try:
            reply = shard.conn.recv()
        except (EOFError, OSError):
            self._reap(shard, notify=True)
            return
        lease, shard.lease = shard.lease, None
        if lease is None:
            return  # stray message (e.g. reply raced a close)
        key, spec = lease
        self.on_result(key, spec, tuple(reply))

    def _reap(self, shard: _Shard, notify: bool) -> None:
        """A shard died: release its lease and spawn a replacement."""
        try:
            self._loop.remove_reader(shard.conn.fileno())
        except (ValueError, OSError):
            pass
        try:
            shard.conn.close()
        except OSError:
            pass
        self._shards.pop(shard.index, None)
        lease, shard.lease = shard.lease, None
        exitcode = shard.proc.exitcode
        if shard.proc.is_alive():
            shard.proc.terminate()
        shard.proc.join(timeout=5)
        if not self._closing:
            self.respawns += 1
            self._spawn()
        if notify and lease is not None:
            key, spec = lease
            self.on_result(
                key, spec,
                ("died", f"shard {shard.index} died (exit {exitcode})"),
            )

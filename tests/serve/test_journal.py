"""The durable job table: journal replay and service restart-resume.

The contract under test (docs/SERVICE.md): a restarted service resumes
queued *and* leased-at-crash work with identical job ids and event-log
prefixes, settles keys whose cache file beat the crash without
re-executing, and loses or duplicates zero executions either side of
the crash point.
"""

from __future__ import annotations

import asyncio
import json

from repro.campaign import RunSpec, cache
from repro.campaign.runner import _execute, _finish
from repro.serve.jobs import JobManager
from repro.serve.journal import JOURNAL_NAME, Journal
from repro.serve.service import CampaignService, ServiceConfig

SCALE = 80
FP = "test-fp"

NO_HITS = lambda spec: None  # noqa: E731


def spec(seed: int, policy: str = "dbi") -> RunSpec:
    return RunSpec(benchmark="GUPS", system="ddr4-server", policy=policy,
                   accesses_per_core=SCALE, seed=seed)


def config(tmp_path, **kw) -> ServiceConfig:
    kw.setdefault("store_root", tmp_path / "store")
    kw.setdefault("shards", 0)
    kw.setdefault("fingerprint", FP)
    kw.setdefault("backoff_base_s", 0.01)
    return ServiceConfig(**kw)


async def wait_terminal(job, timeout: float = 120.0) -> None:
    async def _drain():
        async for _event in job.log.subscribe():
            pass

    await asyncio.wait_for(_drain(), timeout)


class TestJournalFile:
    def test_read_missing_file_is_empty(self, tmp_path):
        assert Journal.read(tmp_path / "absent.jsonl") == []

    def test_append_then_read_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.open()
        journal.append({"op": "job", "id": "j1"})
        journal.append({"op": "event", "job": "j1", "event": {"seq": 0}})
        journal.close()
        records = Journal.read(path)
        assert [r["op"] for r in records] == ["job", "event"]
        assert journal.stats()["appended"] == 2

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"op": "job", "id": "j1"}) + "\n")
            fh.write('{"op": "event", "job": "j1", "ev')  # crash mid-append
        records = Journal.read(path)
        assert records == [{"op": "job", "id": "j1"}]

    def test_non_dict_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('[1, 2]\n{"op": "job", "id": "j9"}\n\n')
        assert Journal.read(path) == [{"op": "job", "id": "j9"}]


class TestManagerRestore:
    def _manager(self, path) -> tuple[JobManager, Journal]:
        journal = Journal(path)
        journal.open()
        mgr = JobManager(fingerprint=FP)
        mgr.bind_journal(journal)
        return mgr, journal

    def test_restore_rebuilds_ids_events_and_queue(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        mgr, journal = self._manager(path)
        a = mgr.submit([spec(1), spec(2)], namespace="ns", priority=3,
                       cache_probe=NO_HITS)
        b = mgr.submit([spec(1)], cache_probe=NO_HITS)  # coalesces
        done_key, _ = mgr.next_work()
        mgr.complete(done_key, wall_s=0.5, executed=True)
        leased_key, _ = mgr.next_work()  # leased at "crash" time
        journal.close()
        pre_events = {j.id: list(j.log._events) for j in (a, b)}

        fresh = JobManager(fingerprint=FP)
        report = fresh.restore(Journal.read(path), cache_probe=NO_HITS)
        assert report["jobs"] == 2
        assert report["settled"] == 0
        assert report["requeued"] == 1  # the leased key, back in queue

        ra, rb = fresh.job(a.id), fresh.job(b.id)
        assert ra.namespace == "ns" and ra.priority == 3
        # Event logs replay verbatim — seq and ts included.
        assert list(ra.log._events) == pre_events[a.id]
        assert list(rb.log._events) == pre_events[b.id]
        # Per-key outcomes and counters re-derive from the events.
        assert ra.key_state[done_key] == "done"
        assert ra.counters["executed"] == 1
        assert rb.counters["coalesced"] == 1
        # The leased-at-crash key is simply queued again.
        work = fresh.next_work()
        assert work is not None and work[0] == leased_key
        fresh.complete(leased_key, executed=True)
        assert ra.state == "done" and rb.state == "done"
        # New ids continue past the restored ones.
        c = fresh.submit([spec(9)], cache_probe=NO_HITS)
        assert int(c.id[1:]) > max(int(a.id[1:]), int(b.id[1:]))

    def test_restore_requires_fresh_manager(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        mgr, journal = self._manager(path)
        mgr.submit([spec(1)], cache_probe=NO_HITS)
        journal.close()
        import pytest

        with pytest.raises(RuntimeError):
            mgr.restore(Journal.read(path), cache_probe=NO_HITS)

    def test_terminal_jobs_restore_terminal(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        mgr, journal = self._manager(path)
        a = mgr.submit([spec(1)], cache_probe=NO_HITS)
        key, _ = mgr.next_work()
        mgr.fail(key, "boom")
        cancelled = mgr.submit([spec(2)], cache_probe=NO_HITS)
        mgr.cancel(cancelled.id)
        journal.close()

        fresh = JobManager(fingerprint=FP)
        report = fresh.restore(Journal.read(path), cache_probe=NO_HITS)
        assert report["requeued"] == 0 and report["settled"] == 0
        assert fresh.job(a.id).state == "failed"
        assert fresh.job(a.id).error == a.error
        assert fresh.job(cancelled.id).state == "cancelled"
        assert fresh.next_work() is None


class TestServiceRestartResume:
    def test_restart_resumes_with_zero_lost_or_duplicated(self, tmp_path):
        """The full crash drill: one key's result lands in the cache but
        its ``finished`` event never makes the journal (crash between
        the two); one key is leased with no result; the rest is queued.
        The restarted service must settle the first from the cache and
        execute only the others — same job id, same event prefix."""
        cfg = config(tmp_path)
        specs = [spec(21), spec(22), spec(23)]
        state: dict = {}

        async def phase1():
            service = CampaignService(cfg)
            await service.start()
            service.pause()  # nothing leases on its own
            job = service.submit_specs(specs, namespace="crash")
            # Lease spec(21) and land its result in the cache WITHOUT
            # journaling a finished event — the crash window.
            key, leased_spec = service.manager.next_work()
            body, wall_s = _execute(leased_spec)
            _finish(leased_spec, body, wall_s, FP)
            assert cache.load(leased_spec, FP) is not None
            state["job_id"] = job.id
            state["events"] = list(job.log._events)
            state["keys"] = list(job.keys)
            # Simulated SIGKILL: no graceful journal of outcomes.
            service.journal.close()
            service.journal = None
            await service.stop()

        asyncio.run(phase1())
        journal_path = cfg.store_root / JOURNAL_NAME
        assert journal_path.exists()

        async def phase2():
            service = CampaignService(cfg)
            await service.start()
            try:
                report = service.resume_report
                assert report == {"jobs": 1, "requeued": 2, "settled": 1}
                job = service.manager.job(state["job_id"])
                assert job.keys == state["keys"]
                # The pre-crash event log survives verbatim as a prefix.
                assert job.log._events[:len(state["events"])] \
                    == state["events"]
                await wait_terminal(job)
                assert job.state == "done"
                # Zero lost, zero duplicated: the cache-settled key is
                # not re-executed, the other two run exactly once.
                assert service.counters["executed"] == 2
                assert job.counters["executed"] == 2
                assert job.counters["cache_hits"] == 0
                # The settled key is re-pinned for the GC sweep.
                assert set(service.store.keys("crash")) \
                    == set(state["keys"])
                # New submissions get ids past the restored ones.
                newer = service.submit_specs([spec(24)])
                assert int(newer.id[1:]) > int(state["job_id"][1:])
                await wait_terminal(newer)
            finally:
                await service.stop()

        asyncio.run(phase2())

    def test_journal_can_be_disabled(self, tmp_path):
        cfg = config(tmp_path, journal=False)

        async def body():
            service = CampaignService(cfg)
            await service.start()
            try:
                job = service.submit_specs([spec(25)])
                await wait_terminal(job)
            finally:
                await service.stop()

        asyncio.run(body())
        assert not (cfg.store_root / JOURNAL_NAME).exists()

    def test_restarted_service_completes_journal_events(self, tmp_path):
        """A graceful stop + restart replays to a no-op: everything
        finished pre-restart restores terminal and nothing re-queues."""
        cfg = config(tmp_path)

        async def phase1():
            service = CampaignService(cfg)
            await service.start()
            try:
                job = service.submit_specs([spec(26)])
                await wait_terminal(job)
                return job.id
            finally:
                await service.stop()

        job_id = asyncio.run(phase1())

        async def phase2():
            service = CampaignService(cfg)
            await service.start()
            try:
                assert service.resume_report["requeued"] == 0
                job = service.manager.job(job_id)
                assert job.state == "done"
                assert service.manager.outstanding == 0
            finally:
                await service.stop()

        asyncio.run(phase2())

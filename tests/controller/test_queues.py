"""Tests for transaction queues and the write-drain policy."""

import pytest

from repro.controller import (
    MemoryRequest,
    QueueFullError,
    TransactionQueue,
    WriteDrainPolicy,
)


def req(addr, write=False, arrival=0):
    r = MemoryRequest(address=addr, is_write=write)
    r.arrival = arrival
    return r


class TestTransactionQueue:
    def test_push_and_len(self):
        q = TransactionQueue(4)
        q.push(req(0))
        q.push(req(64))
        assert len(q) == 2
        assert q.occupancy == 0.5

    def test_overflow_raises(self):
        q = TransactionQueue(1)
        q.push(req(0))
        with pytest.raises(QueueFullError):
            q.push(req(64))

    def test_coalescing_write(self):
        q = TransactionQueue(2)
        first = req(128, write=True)
        first.line_id = 1
        q.push(first, coalesce=True)
        second = req(128, write=True)
        second.line_id = 9
        took_slot = q.push(second, coalesce=True)
        assert not took_slot
        assert len(q) == 1
        assert first.line_id == 9  # payload updated in place

    def test_find_by_address(self):
        q = TransactionQueue(4)
        r = req(256)
        q.push(r)
        assert q.find(256) is r
        assert q.find(512) is None

    def test_remove_clears_lookup(self):
        q = TransactionQueue(4)
        r = req(256)
        q.push(r)
        q.remove(r)
        assert q.find(256) is None
        assert len(q) == 0

    def test_oldest_first_is_push_order(self):
        # Simulation time is monotonic, so push order == arrival order;
        # oldest_first documents (and relies on) that invariant.
        q = TransactionQueue(4)
        first = req(0, arrival=5)
        second = req(64, arrival=10)
        q.push(first)
        q.push(second)
        assert q.oldest_first()[0] is first
        assert q.oldest_first()[1] is second

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TransactionQueue(0)


class TestWriteDrain:
    def test_enters_drain_at_high_watermark(self):
        policy = WriteDrainPolicy(60, 50, 64)
        assert not policy.update(59, 5)
        assert policy.update(60, 5)
        assert policy.draining

    def test_exits_drain_at_low_watermark(self):
        policy = WriteDrainPolicy(60, 50, 64)
        policy.update(60, 5)
        assert policy.update(51, 5)  # still draining
        assert not policy.update(50, 5)
        assert not policy.draining

    def test_hysteresis_between_watermarks(self):
        policy = WriteDrainPolicy(60, 50, 64)
        assert not policy.update(55, 5)  # below high, never entered
        policy.update(60, 5)
        assert policy.update(55, 5)  # above low, stays draining

    def test_opportunistic_drain_when_no_reads(self):
        policy = WriteDrainPolicy(60, 50, 64)
        assert policy.update(3, 0)  # writes pending, no reads
        assert not policy.draining  # not a sticky drain episode

    def test_episode_counting(self):
        policy = WriteDrainPolicy(60, 50, 64)
        policy.update(60, 1)
        policy.update(49, 1)
        policy.update(61, 1)
        assert policy.drain_entries == 2

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            WriteDrainPolicy(50, 60, 64)
        with pytest.raises(ValueError):
            WriteDrainPolicy(70, 50, 64)

"""Benchmark target: Figure 7 optimal static LWC potential.

Regenerates the paper's fig07 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig07_optimal_lwc import run_experiment


def test_fig07(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

"""The lease broker: local process shards plus remote TCP workers.

The broker owns the service's execution fleet.  Two member kinds share
one lease discipline — **at most one lease per member**, so lease
accounting is exact: whatever a dead member was holding is precisely
``member.lease``.

* **Local shards** are long-lived ``multiprocessing.Process`` children
  connected by duplex pipes.  Each receives one
  :class:`~repro.campaign.spec.RunSpec` and answers
  ``("ok", summary_body, wall_s)`` or ``("err", repr)``.  Death
  detection needs no signals or polling: the parent registers each
  pipe with the event loop (``loop.add_reader``), and a shard killed
  mid-lease (SIGKILL included) closes its pipe end, which surfaces as
  ``EOFError`` on the next read.  Dead shards are respawned.

* **Remote workers** are ``repro worker`` daemons on this or other
  hosts that dialed the service over TCP (``POST /v1/workers`` with a
  shared token, then one JSON frame per line in both directions — see
  :mod:`repro.serve.worker`).  A worker whose connection drops
  (process SIGKILLed, host rebooted) surfaces as EOF on its stream; a
  worker whose *host vanished without closing TCP* (network partition,
  power loss) is caught by the heartbeat loop — the broker pings every
  ``heartbeat_s`` and detaches a worker silent for three intervals —
  or by the hard ``lease_timeout_s`` cap on any single lease.

Either way the orphaned lease is reported to ``on_result`` as
``("died", reason)``, which releases the key back to the queue exactly
like a SIGKILLed local shard: one charged retry, never a stranded spec.

With ``width=0`` and no remote workers attached, the broker executes
leases inline on the loop's default executor — the no-fleet fallback
tests and cache-hit-dominated benches rely on.  The moment a remote
worker attaches, inline execution stops and the fleet does the work.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import time

from ..campaign.runner import _execute
from .protocol import frame

__all__ = ["LeaseBroker", "RemoteWorker", "ShardPool",
           "shard_count_from_env"]

SHARDS_ENV = "REPRO_SERVE_SHARDS"
DEFAULT_SHARDS = 2
DEFAULT_HEARTBEAT_S = 10.0
DEFAULT_LEASE_TIMEOUT_S = 600.0
# A worker silent for this many heartbeat intervals is presumed gone.
MISSED_HEARTBEATS = 3


def shard_count_from_env(default: int = DEFAULT_SHARDS) -> int:
    raw = os.environ.get(SHARDS_ENV, "")
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def _shard_main(conn) -> None:
    """Worker loop: one spec in, one summary out, until ``stop``."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if message[0] == "stop":
            return
        spec = message[1]
        try:
            body, wall_s = _execute(spec)
            reply = ("ok", body, wall_s)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            reply = ("err", repr(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Shard:
    """One worker process plus its parent-side pipe and current lease."""

    __slots__ = ("index", "proc", "conn", "lease", "completed")

    def __init__(self, index: int, ctx) -> None:
        self.index = index
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_main, args=(child,),
            name=f"repro-serve-shard-{index}", daemon=True,
        )
        self.proc.start()
        child.close()  # the parent keeps only its own end
        self.lease: tuple | None = None  # (key, spec) while working
        self.completed = 0

    @property
    def busy(self) -> bool:
        return self.lease is not None

    def assign(self, key: str, spec) -> None:
        self.lease = (key, spec)
        self.conn.send(("run", spec))

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.proc.join(timeout=5)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)


class RemoteWorker:
    """Parent-side handle for one connected ``repro worker`` daemon."""

    __slots__ = ("name", "writer", "lease", "lease_started", "last_seen",
                 "completed")

    def __init__(self, name: str, writer) -> None:
        self.name = name
        self.writer = writer
        self.lease: tuple | None = None  # (key, spec) while working
        self.lease_started: float | None = None
        self.last_seen = time.monotonic()
        self.completed = 0

    @property
    def busy(self) -> bool:
        return self.lease is not None

    def send(self, obj: dict) -> None:
        self.writer.write(frame(obj))

    def assign(self, key: str, spec) -> None:
        self.lease = (key, spec)
        self.lease_started = time.monotonic()
        self.send({"op": "lease", "key": key, "spec": spec.canonical()})


class LeaseBroker:
    """A mixed fleet of shards and remote workers on one asyncio loop.

    ``on_result(key, spec, outcome)`` is called on the loop for every
    finished lease, where ``outcome`` is one of::

        ("ok", summary_body, wall_s)
        ("err", "<repr of the worker exception>")
        ("died", "<member death description>")

    ``on_fleet_change()`` (optional) is called whenever capacity
    changes — a worker attaches, detaches, or frees a slot — so the
    scheduler can wake without polling.
    """

    def __init__(self, width: int, on_result,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
                 on_fleet_change=None) -> None:
        self.width = max(0, int(width))
        self.on_result = on_result
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = lease_timeout_s
        self.on_fleet_change = on_fleet_change
        self._ctx = _mp_context()
        self._shards: dict[int, _Shard] = {}
        self._workers: dict[str, RemoteWorker] = {}
        self._indices = iter(range(10 ** 9))
        self._worker_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self.respawns = 0
        self.worker_deaths = 0
        self._closing = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for _ in range(self.width):
            self._spawn()
        if self.heartbeat_s > 0:
            self._heartbeat_task = self._loop.create_task(
                self._heartbeat_loop()
            )

    def _spawn(self) -> _Shard:
        shard = _Shard(next(self._indices), self._ctx)
        self._shards[shard.index] = shard
        self._loop.add_reader(
            shard.conn.fileno(), self._on_readable, shard
        )
        return shard

    def close(self) -> None:
        self._closing = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        for worker in list(self._workers.values()):
            self._detach(worker, "service shutting down", notify=False,
                         stop=True)
        for shard in list(self._shards.values()):
            try:
                self._loop.remove_reader(shard.conn.fileno())
            except (ValueError, OSError):
                pass
            shard.close()
        self._shards.clear()

    def _fleet_changed(self) -> None:
        if self.on_fleet_change is not None:
            self.on_fleet_change()

    # -- dispatch -------------------------------------------------------
    @property
    def workers_connected(self) -> int:
        return len(self._workers)

    @property
    def free_slots(self) -> int:
        free = sum(1 for s in self._shards.values() if not s.busy)
        free += sum(1 for w in self._workers.values() if not w.busy)
        if self.width == 0 and not self._workers:
            return 1  # no fleet at all: inline fallback, always willing
        return free

    @property
    def busy_leases(self) -> list:
        out = [s.lease for s in self._shards.values() if s.busy]
        out += [w.lease for w in self._workers.values() if w.busy]
        return out

    def dispatch(self, key: str, spec) -> bool:
        """Lease ``spec`` to a free member; False when all are busy."""
        for shard in self._shards.values():
            if not shard.busy:
                try:
                    shard.assign(key, spec)
                except (BrokenPipeError, OSError):
                    self._reap(shard, notify=False)
                    continue
                return True
        for worker in list(self._workers.values()):
            if not worker.busy:
                try:
                    worker.assign(key, spec)
                except (ConnectionError, OSError, RuntimeError):
                    self._detach(worker, "send failed", notify=False)
                    continue
                return True
        if self.width == 0 and not self._workers:
            self._loop.create_task(self._run_inline(key, spec))
            return True
        return False

    async def _run_inline(self, key: str, spec) -> None:
        try:
            body, wall_s = await self._loop.run_in_executor(
                None, _execute, spec
            )
            outcome = ("ok", body, wall_s)
        except Exception as exc:  # noqa: BLE001
            outcome = ("err", repr(exc))
        self.on_result(key, spec, outcome)

    # -- shard completion and death ------------------------------------
    def _on_readable(self, shard: _Shard) -> None:
        try:
            reply = shard.conn.recv()
        except (EOFError, OSError):
            self._reap(shard, notify=True)
            return
        lease, shard.lease = shard.lease, None
        if lease is None:
            return  # stray message (e.g. reply raced a close)
        shard.completed += 1
        key, spec = lease
        self.on_result(key, spec, tuple(reply))

    def _reap(self, shard: _Shard, notify: bool) -> None:
        """A shard died: release its lease and spawn a replacement."""
        try:
            self._loop.remove_reader(shard.conn.fileno())
        except (ValueError, OSError):
            pass
        try:
            shard.conn.close()
        except OSError:
            pass
        self._shards.pop(shard.index, None)
        lease, shard.lease = shard.lease, None
        exitcode = shard.proc.exitcode
        if shard.proc.is_alive():
            shard.proc.terminate()
        shard.proc.join(timeout=5)
        if not self._closing:
            self.respawns += 1
            self._spawn()
        if notify and lease is not None:
            key, spec = lease
            self.on_result(
                key, spec,
                ("died", f"shard {shard.index} died (exit {exitcode})"),
            )

    # -- remote workers -------------------------------------------------
    async def serve_worker(self, name: str, reader, writer) -> str:
        """Register a remote worker and pump its frames until it leaves.

        Called by the HTTP layer after the token handshake; returns a
        human-readable reason once the worker is gone.  The worker's
        lease (if any) is released via ``on_result`` with ``died``.
        """
        base = name or "worker"
        wname = base
        while wname in self._workers:
            wname = f"{base}~{next(self._worker_ids)}"
        worker = RemoteWorker(wname, writer)
        self._workers[wname] = worker
        self._fleet_changed()
        reason = "disconnected"
        try:
            worker.send({
                "op": "welcome", "name": wname,
                "heartbeat_s": self.heartbeat_s,
            })
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:
                    reason = "protocol error (undecodable frame)"
                    break
                worker.last_seen = time.monotonic()
                op = message.get("op")
                if op == "result":
                    self._finish_lease(worker, message)
                # "pong" just refreshes last_seen; unknown ops are
                # ignored for forward compatibility.
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self._detach(worker, reason)
        return reason

    def _finish_lease(self, worker: RemoteWorker, message: dict) -> None:
        lease, worker.lease = worker.lease, None
        worker.lease_started = None
        if lease is None:
            return  # stray result (raced a timeout release)
        key, spec = lease
        answered = message.get("key")
        body = message.get("body")
        if answered not in (None, key):
            outcome = ("err",
                       f"worker {worker.name} answered for key "
                       f"{answered!r}, expected {key!r}")
        elif message.get("status") == "ok" and isinstance(body, dict):
            worker.completed += 1
            outcome = ("ok", body, float(message.get("wall_s") or 0.0))
        else:
            outcome = ("err", str(message.get("error", "worker error")))
        self.on_result(key, spec, outcome)
        self._fleet_changed()  # a slot freed

    def _detach(self, worker: RemoteWorker, reason: str,
                notify: bool = True, stop: bool = False) -> None:
        if self._workers.get(worker.name) is not worker:
            return  # already detached (e.g. heartbeat raced EOF)
        del self._workers[worker.name]
        if stop:
            try:
                worker.send({"op": "stop"})
            except (ConnectionError, OSError, RuntimeError):
                pass
        try:
            worker.writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass
        lease, worker.lease = worker.lease, None
        if lease is not None and notify:
            self.worker_deaths += 1
            key, spec = lease
            self.on_result(
                key, spec, ("died", f"worker {worker.name} {reason}"),
            )
        self._fleet_changed()

    async def _heartbeat_loop(self) -> None:
        """Ping the remote fleet; cull the silent and the wedged."""
        while True:
            await asyncio.sleep(self.heartbeat_s)
            now = time.monotonic()
            for worker in list(self._workers.values()):
                silent = now - worker.last_seen
                if silent > MISSED_HEARTBEATS * self.heartbeat_s:
                    self._detach(
                        worker,
                        f"missed heartbeats ({silent:.1f}s silent)",
                    )
                    continue
                if (worker.busy and self.lease_timeout_s > 0
                        and now - worker.lease_started
                        > self.lease_timeout_s):
                    self._detach(
                        worker,
                        f"lease timed out after "
                        f"{self.lease_timeout_s:.0f}s",
                    )
                    continue
                try:
                    worker.send({"op": "ping"})
                except (ConnectionError, OSError, RuntimeError):
                    self._detach(worker, "ping failed")

    # -- observability --------------------------------------------------
    def fleet(self) -> list:
        """Per-member state for ``/v1/metrics`` and ``/v1/workers``."""
        now = time.monotonic()
        out = []
        for shard in self._shards.values():
            out.append({
                "name": f"shard-{shard.index}",
                "kind": "local",
                "pid": shard.proc.pid,
                "busy": shard.busy,
                "key": shard.lease[0] if shard.lease else None,
                "completed": shard.completed,
            })
        for worker in self._workers.values():
            out.append({
                "name": worker.name,
                "kind": "remote",
                "busy": worker.busy,
                "key": worker.lease[0] if worker.lease else None,
                "lease_age_s": (
                    round(now - worker.lease_started, 3)
                    if worker.lease_started is not None else None
                ),
                "idle_s": round(now - worker.last_seen, 3),
                "completed": worker.completed,
            })
        return out


# The pre-PR-9 name: the broker grew out of the local-only shard pool
# and keeps answering to it.
ShardPool = LeaseBroker

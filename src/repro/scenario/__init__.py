"""Declarative scenario engine: traffic synthesis as checked-in data.

The layer between workload generation (:mod:`repro.workloads`) and
campaign orchestration (:mod:`repro.campaign`):

* :mod:`~repro.scenario.schema` — the validated YAML/JSON scenario
  format (``repro.scenario/v1``) and its canonical digest;
* :mod:`~repro.scenario.compiler` — deterministic expansion into
  frozen :class:`~repro.campaign.spec.RunSpec` matrices;
* :mod:`~repro.scenario.runner` — execution on the campaign engine
  (content-addressed cache, retries, fan-out all inherited);
* :mod:`~repro.scenario.results` — schema-versioned JSONL rows for
  time-series tracking;
* :mod:`~repro.scenario.corpus` — discovery of the checked-in
  ``scenarios/`` corpus (SYN-* stress sweeps, RL-* realistic mixes).

See ``docs/SCENARIOS.md`` for the schema reference and authoring guide.
"""

from .compiler import compile_scenario, point_benchmark
from .corpus import SCENARIO_SUFFIXES, default_corpus_dir, discover
from .results import (
    RESULT_SCHEMA,
    git_rev,
    render_rows,
    result_row,
    write_rows,
)
from .runner import ScenarioResult, run_scenario
from .schema import (
    GRID_AXES,
    SCHEMA_VERSION,
    Arrival,
    Scenario,
    ScenarioError,
    load_scenario,
    normalized,
    parse_scenario,
    scenario_digest,
)

__all__ = [
    "GRID_AXES",
    "RESULT_SCHEMA",
    "SCENARIO_SUFFIXES",
    "SCHEMA_VERSION",
    "Arrival",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "compile_scenario",
    "default_corpus_dir",
    "discover",
    "git_rev",
    "load_scenario",
    "normalized",
    "parse_scenario",
    "point_benchmark",
    "render_rows",
    "result_row",
    "run_scenario",
    "scenario_digest",
    "write_rows",
]

"""Pretty-printing for saved telemetry metrics dumps.

``repro telemetry PATH.metrics.jsonl`` renders through here.  The
metric namespace is hierarchical (``controller.ch0.rdq.occupancy``);
the renderer groups instruments by their first dotted component so the
controller, DRAM, decision-logic, and campaign families each get their
own table, and histograms additionally show mean/max and their bucket
counts in compact form.
"""

from __future__ import annotations

from .report import format_table

__all__ = ["render_metrics", "summarize_decisions"]


def _histogram_cells(body: dict) -> str:
    bounds = body.get("bounds", [])
    counts = body.get("counts", [])
    cells = [
        f"<={bound}:{count}"
        for bound, count in zip(bounds, counts)
        if count
    ]
    if len(counts) == len(bounds) + 1 and counts[-1]:
        cells.append(f">{bounds[-1]}:{counts[-1]}")
    return " ".join(cells) or "-"


def _metric_row(name: str, body: dict) -> list:
    kind = body.get("kind", "?")
    if kind == "counter":
        return [name, kind, str(body.get("value", 0)), "-"]
    if kind == "gauge":
        lo, hi = body.get("min"), body.get("max")
        detail = f"min {lo} max {hi}" if body.get("updates") else "-"
        return [name, kind, f"{body.get('value', 0):g}", detail]
    if kind == "histogram":
        mean = body.get("mean", 0.0)
        peak = body.get("max")
        head = f"n={body.get('count', 0)} mean={mean:.2f} max={peak}"
        return [name, kind, head, _histogram_cells(body)]
    return [name, kind, str(body), "-"]


def summarize_decisions(metrics: dict) -> dict:
    """Per-mode decision counts summed over channels.

    Picks up every ``core.ch<N>.decision.<mode>`` counter; the values
    sum to the run's total issued bursts (each column command reports
    exactly one decision mode).
    """
    merged: dict[str, int] = {}
    for name, body in metrics.items():
        parts = name.split(".")
        if (
            len(parts) == 4
            and parts[0] == "core"
            and parts[2] == "decision"
            and body.get("kind") == "counter"
            and body.get("value")
        ):
            mode = parts[3]
            merged[mode] = merged.get(mode, 0) + body["value"]
    return merged


def render_metrics(payload: dict) -> str:
    """Render a loaded metrics dump (see ``load_metrics_jsonl``)."""
    meta = payload.get("meta", {})
    metrics = payload.get("metrics", {})
    blocks: list[str] = []

    head = [
        ["session", meta.get("label", "?")],
        ["time unit", meta.get("time_unit", "?")],
        ["instruments", str(len(metrics))],
        ["trace events", str(meta.get("trace_events", 0))],
        ["trace dropped", str(meta.get("trace_dropped", 0))],
    ]
    decisions = summarize_decisions(metrics)
    if decisions:
        mix = ", ".join(f"{m}={n}" for m, n in sorted(decisions.items()))
        head.append(["decision mix", f"{mix} (sum {sum(decisions.values())})"])
    blocks.append(format_table(["field", "value"], head, title="telemetry"))

    groups: dict[str, list[list]] = {}
    for name in sorted(metrics):
        family = name.split(".", 1)[0]
        groups.setdefault(family, []).append(_metric_row(name, metrics[name]))
    for family in sorted(groups):
        blocks.append(format_table(
            ["metric", "kind", "value", "detail"],
            groups[family],
            title=family,
        ))
    return "\n\n".join(blocks)

"""Structured per-run progress events and pluggable sinks.

The runner narrates a campaign through :class:`RunEvent` records —
``queued``, ``started``, ``cache-hit``, ``finished``, ``retried``,
``failed`` — pushed into a sink callable.  Sinks range from
:func:`null_sink` (the default) to :class:`ProgressLine` (the CLI's
live one-line display) to a plain ``list.append`` in tests.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from ..telemetry.clock import monotonic_ts
from .spec import RunSpec

__all__ = ["EVENT_KINDS", "ProgressLine", "RunEvent", "null_sink"]

EVENT_KINDS = (
    "queued", "started", "cache-hit", "finished", "retried", "failed",
)


@dataclass(frozen=True)
class RunEvent:
    """One orchestration event for one run of a campaign."""

    kind: str
    spec: RunSpec
    key: str  # content-addressed cache key
    total: int  # campaign size, for progress displays
    wall_s: float | None = None  # set on finished
    error: str | None = None  # set on retried/failed
    # Monotonic timestamp on the clock telemetry shares, so campaign
    # events and run-level traces merge onto one Perfetto timeline.
    ts: float = field(default_factory=monotonic_ts)


def null_sink(event: RunEvent) -> None:
    """Discard events (the default sink)."""


class ProgressLine:
    """Live single-line campaign progress written to a stream.

    Counts hits/runs/failures and shows the most recent event; call
    :meth:`close` to terminate the line once the campaign ends.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.hits = 0
        self.executed = 0
        self.failed = 0
        self._started = time.perf_counter()
        self._open = False

    def __call__(self, event: RunEvent) -> None:
        self.total = max(self.total, event.total)
        if event.kind == "cache-hit":
            self.done += 1
            self.hits += 1
        elif event.kind == "finished":
            self.done += 1
            self.executed += 1
        elif event.kind == "failed":
            self.done += 1
            self.failed += 1
        if event.kind == "queued":
            return
        elapsed = time.perf_counter() - self._started
        line = (
            f"\rcampaign {self.done}/{self.total} "
            f"[hits {self.hits}, runs {self.executed}, "
            f"fails {self.failed}, {elapsed:.1f}s] {event.kind}: "
            f"{event.spec.slug}"
        )
        self.stream.write(line[:110].ljust(110))
        self.stream.flush()
        self._open = True

    def close(self) -> None:
        if self._open:
            self.stream.write("\n")
            self.stream.flush()
            self._open = False

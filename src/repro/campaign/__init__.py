"""Parallel, content-addressed campaign engine for simulation runs.

The experiment layer used to re-derive the same (benchmark x system x
policy) sweep through ad-hoc serial loops, memoised by a hand-bumped
``CACHE_VERSION``.  This subsystem replaces that plumbing with three
pieces:

``RunSpec``
    A frozen, hashable description of exactly one simulation run —
    benchmark, system (plus design-space overrides), policy, look-ahead,
    scale, seed, and MiLConfig overrides.  Specs are the unit of
    planning, execution, caching, and result lookup.
``cache``
    Content-addressed on-disk memoisation: the cache file name embeds a
    hash of the spec *and* a fingerprint of the model source
    (``repro.coding``/``dram``/``controller``/``energy``/``system``/
    ``core``/``workloads``), so editing the model invalidates stale
    summaries automatically.
``CampaignRunner``
    Fans independent specs out over a process pool (worker count from
    ``--jobs`` / ``REPRO_JOBS``), retries on worker failure, and emits
    structured progress events through a pluggable sink.

Environment knobs: ``REPRO_JOBS`` (default worker count),
``REPRO_CACHE_DIR`` (cache location), ``REPRO_NO_CACHE=1`` (bypass both
the read and the write path).
"""

from .cache import cache_dir, cache_enabled, cache_path, load, store
from .events import ProgressLine, RunEvent, null_sink
from .fingerprint import model_fingerprint
from .runner import CampaignRunner, default_jobs, run_cached
from .spec import RunSpec

__all__ = [
    "CampaignRunner",
    "ProgressLine",
    "RunEvent",
    "RunSpec",
    "cache_dir",
    "cache_enabled",
    "cache_path",
    "default_jobs",
    "load",
    "model_fingerprint",
    "null_sink",
    "run_cached",
    "store",
]

"""Tests for the DRAM and system energy models."""

import numpy as np
import pytest

from repro.coding import precompute_line_zeros
from repro.energy import (
    DDR4_ENERGY,
    SERVER_SYSTEM_ENERGY,
    DramEnergyModel,
    SystemEnergyModel,
)
from repro.energy.dram_power import DramEnergyBreakdown
from repro.system import NIAGARA_SERVER, simulate
from repro.workloads import MemoryTrace, TraceRecord


def small_trace(n=40, gap=30):
    rng = np.random.default_rng(23)
    records = [[
        TraceRecord(core=0, gap=gap, address=int(a) * 64, is_write=False,
                    line_id=i)
        for i, a in enumerate(rng.integers(0, 1 << 18, size=n))
    ]]
    data = rng.integers(0, 256, size=(n, 64), dtype=np.uint8)
    return MemoryTrace(name="unit", records_by_core=records, line_data=data)


@pytest.fixture(scope="module")
def run_result():
    trace = small_trace()
    result = simulate(trace, NIAGARA_SERVER)
    zeros = precompute_line_zeros(trace.line_data, ("dbi",))
    return trace, result, zeros


class TestDramModel:
    def test_breakdown_sums_to_total(self, run_result):
        _, result, zeros = run_result
        breakdown = DramEnergyModel(DDR4_ENERGY).evaluate(result, zeros)
        assert breakdown.total == pytest.approx(
            sum(breakdown.as_dict().values())
        )

    def test_all_components_positive(self, run_result):
        _, result, zeros = run_result
        breakdown = DramEnergyModel(DDR4_ENERGY).evaluate(result, zeros)
        for name, value in breakdown.as_dict().items():
            if name == "refresh":
                # Short runs may finish inside the first tREFI window.
                assert value >= 0
            else:
                assert value > 0, name

    def test_shares_sum_to_one(self, run_result):
        _, result, zeros = run_result
        breakdown = DramEnergyModel(DDR4_ENERGY).evaluate(result, zeros)
        total_share = sum(
            breakdown.share(c) for c in breakdown.as_dict()
        )
        assert total_share == pytest.approx(1.0)

    def test_activate_energy_scales_with_activates(self, run_result):
        _, result, zeros = run_result
        breakdown = DramEnergyModel(DDR4_ENERGY).evaluate(result, zeros)
        acts = sum(mc.channel.activate_count for mc in result.controllers)
        assert breakdown.activate == pytest.approx(
            acts * DDR4_ENERGY.energy_activate_precharge
        )

    def test_background_scales_with_time(self):
        # Same work spread over more time must burn more background.
        fast = simulate(small_trace(gap=10), NIAGARA_SERVER)
        slow = simulate(small_trace(gap=400), NIAGARA_SERVER)
        zeros_f = precompute_line_zeros(
            small_trace(gap=10).line_data, ("dbi",)
        )
        model = DramEnergyModel(DDR4_ENERGY)
        assert (
            model.evaluate(slow, zeros_f).background
            > model.evaluate(fast, zeros_f).background
        )


class TestSystemModel:
    def test_totals_nest(self, run_result):
        trace, result, zeros = run_result
        dram = DramEnergyModel(DDR4_ENERGY).evaluate(result, zeros)
        system = SystemEnergyModel(
            SERVER_SYSTEM_ENERGY, NIAGARA_SERVER
        ).evaluate(result, trace, dram)
        assert system.total == pytest.approx(
            system.cores + system.uncore + dram.total
        )
        assert 0 < system.dram_share < 1

    def test_core_energy_positive_even_when_idle(self, run_result):
        trace, result, zeros = run_result
        dram = DramEnergyModel(DDR4_ENERGY).evaluate(result, zeros)
        system = SystemEnergyModel(
            SERVER_SYSTEM_ENERGY, NIAGARA_SERVER
        ).evaluate(result, trace, dram)
        # 8 cores burn at least stall power for the whole run.
        floor = (
            NIAGARA_SERVER.cores
            * SERVER_SYSTEM_ENERGY.core_stall_w
            * result.seconds
        )
        assert system.cores >= floor * 0.99

    def test_active_cycles_from_gaps(self, run_result):
        trace, result, _ = run_result
        model = SystemEnergyModel(SERVER_SYSTEM_ENERGY, NIAGARA_SERVER)
        active = model.core_active_cycles(trace)
        assert active[0] == sum(r.gap for r in trace.records_by_core[0])


class TestConstantsValidation:
    def test_dram_params_reject_negative(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(DDR4_ENERGY, energy_per_zero_bit=-1.0)

    def test_system_params_reject_inverted_powers(self):
        from repro.energy import SystemEnergyParams

        with pytest.raises(ValueError):
            SystemEnergyParams("x", core_active_w=0.1, core_stall_w=0.2,
                               uncore_w=0.1)

    def test_breakdown_dataclass(self):
        b = DramEnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert b.total == 15.0
        assert b.share("io") == pytest.approx(1 / 3)

"""Determinism regression tests: same spec, same bytes, same key.

The campaign cache's whole premise is that a RunSpec plus the model
source *is* the result.  That only holds if simulation is bit-for-bit
deterministic — any hidden global (an unseeded RNG, dict-order
dependence, wall-clock leakage into the payload) silently poisons every
cached campaign.  These tests re-run identical work and require
byte-identical output, and pin the benchmark corpus digest so pinned
performance baselines notice input drift too.
"""

import hashlib
import json

from repro.bench.corpus import corpus_digest
from repro.campaign.cache import cache_key
from repro.campaign.spec import RunSpec
from repro.core.framework import run_spec

SPEC = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200)

# SHA-256 of the default benchmark corpus.  If corpus generation ever
# changes, every recorded benchmark number measures different inputs:
# refresh benchmarks/baseline.json in the same PR (docs/BENCHMARKS.md).
CORPUS_DIGEST = (
    "6ff72708257f8f71426ac8f5ba95a7ee47c07250728a9b5473fdbafd72225188"
)


def _canonical_summary(spec: RunSpec) -> str:
    summary = run_spec(spec).to_dict()
    # `stats` carries orchestration metadata (wall time); everything
    # else is simulation output and must be reproducible.
    summary.pop("stats")
    return json.dumps(summary, sort_keys=True)


def test_identical_specs_produce_byte_identical_summaries():
    assert _canonical_summary(SPEC) == _canonical_summary(SPEC)


def test_summary_is_stable_across_policies():
    for policy in ("dbi", "milc", "mil"):
        spec = RunSpec(benchmark="MM", policy=policy,
                       accesses_per_core=150)
        assert _canonical_summary(spec) == _canonical_summary(spec)


def test_cache_key_is_stable():
    fingerprint = "f" * 16
    first = cache_key(SPEC, fingerprint)
    again = cache_key(SPEC, fingerprint)
    assert first == again
    # Reconstructing an equal spec must key identically: the key hangs
    # off canonical content, not object identity.
    clone = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200)
    assert cache_key(clone, fingerprint) == first


def test_cache_key_changes_with_spec_and_fingerprint():
    fingerprint = "f" * 16
    base = cache_key(SPEC, fingerprint)
    other_spec = RunSpec(benchmark="GUPS", policy="mil",
                         accesses_per_core=201)
    assert cache_key(other_spec, fingerprint) != base
    assert cache_key(SPEC, "0" * 16) != base


def test_benchmark_corpus_is_pinned():
    assert corpus_digest(2048) == CORPUS_DIGEST


class TestRegistryRefactorIdentity:
    """Golden pins proving the registry refactor changed no bytes.

    These values were captured on the pre-registry tree (BURST_FORMATS
    dict, POLICIES tuple, make_policy_factory if-chain).  The registry,
    the derived views, and the zero-table cache must reproduce them
    exactly: same cache keys (same canonical spec encoding) and same
    summary bytes (same simulation and energy arithmetic).  The model
    fingerprint is pinned because it hashes source files and changes
    with any edit — the *keying scheme*, not the fingerprint, is under
    test.
    """

    FINGERPRINT = "f" * 16

    GOLDEN_KEYS = {
        RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200):
            "GUPS-ddr4-server-mil-xauto-n200-s0-c0b4ea98fe7c",
        RunSpec(benchmark="MM", policy="dbi", accesses_per_core=150):
            "MM-ddr4-server-dbi-xauto-n150-s0-db0eb8ad6265",
        RunSpec(benchmark="OCEAN", system="lpddr3-mobile",
                policy="mil-adaptive", accesses_per_core=150, seed=2):
            "OCEAN-lpddr3-mobile-mil-adaptive-xauto-n150-s2-58a8de5a5b53",
        RunSpec(benchmark="CG", policy="bl14", accesses_per_core=150):
            "CG-ddr4-server-bl14-xauto-n150-s0-ff7fa24bf460",
        RunSpec(benchmark="FFT", policy="mil-lwc12", lookahead=9,
                accesses_per_core=150):
            "FFT-ddr4-server-mil-lwc12-x9-n150-s0-36a1996a30d3",
        RunSpec(benchmark="GUPS", policy="cafo2", accesses_per_core=150):
            "GUPS-ddr4-server-cafo2-xauto-n150-s0-c83348fc2d67",
    }

    GOLDEN_SUMMARIES = {
        RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200):
            "b5d7ca8c7ac14b0db7115e507a8985fa"
            "a567193b01215d9b8f1ddc35c39b4c4f",
        RunSpec(benchmark="MM", policy="dbi", accesses_per_core=150):
            "179671d6efda2996b8107764e90b3c2b"
            "33681aafdbae8aec257108abfcb7c600",
        RunSpec(benchmark="OCEAN", system="lpddr3-mobile",
                policy="mil-adaptive", accesses_per_core=150, seed=2):
            "4155a80cc13c02d811bc58c41d2c2eb9"
            "17d970f7244625ed2da788e8c88b044b",
        RunSpec(benchmark="CG", policy="bl14", accesses_per_core=150):
            "481ea5f399041d93ee6f03be9624a158"
            "e9f2b746a055d523bc28dc023c8083b9",
    }

    def test_cache_keys_are_unchanged(self):
        for spec, expected in self.GOLDEN_KEYS.items():
            assert cache_key(spec, self.FINGERPRINT) == expected

    def test_summary_bytes_are_unchanged(self):
        for spec, expected in self.GOLDEN_SUMMARIES.items():
            digest = hashlib.sha256(
                _canonical_summary(spec).encode()
            ).hexdigest()
            assert digest == expected, spec.slug


class TestAuditOutsideRunIdentity:
    """--audit observes a run; it must never change what the run *is*.

    The audit digest lands in ``stats`` (stripped by
    :func:`_canonical_summary`, exactly like telemetry's wall-clock
    entries), and the opt-in travels via environment variable rather
    than a RunSpec field — so summaries stay byte-identical and cache
    keys are untouched whether auditing is off, on via ``audit=``, or
    on via ``REPRO_AUDIT``.
    """

    def test_env_opt_in_leaves_summary_bytes_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        plain = _canonical_summary(SPEC)
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert _canonical_summary(SPEC) == plain

    def test_report_mode_leaves_summary_bytes_unchanged(self, monkeypatch):
        from repro.audit import AuditReport

        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        plain = _canonical_summary(SPEC)
        report = AuditReport()
        summary = run_spec(SPEC, audit=report).to_dict()
        assert summary.pop("stats")["audit"]["violations"] == 0
        assert report.clean and report.commands > 0
        assert json.dumps(summary, sort_keys=True) == plain

    def test_audit_cannot_enter_the_cache_key(self):
        # RunSpec has no audit field at all — the opt-in physically
        # cannot reach cache_key.  Pin that so a future "just add a
        # spec flag" refactor trips here first.
        assert "audit" not in RunSpec.__dataclass_fields__
        fingerprint = "f" * 16
        assert cache_key(SPEC, fingerprint) == cache_key(SPEC, fingerprint)

"""Tests for the frequency-optimal static LWCs (Figure 7 study)."""

import numpy as np
import pytest
from math import comb

from repro.coding import (
    DBICode,
    OptimalStaticLWC,
    byte_frequencies,
    codeword_zero_levels,
)
from repro.coding.bitops import bytes_to_bits


class TestZeroLevels:
    def test_level_structure(self):
        levels = codeword_zero_levels(9)
        # 1 codeword with zero zeros, then C(9,1)=9 with one, C(9,2)=36
        # with two, and the rest (210 of C(9,3)=84... capped at 256).
        assert levels[0] == 0
        assert (levels[1:10] == 1).all()
        assert (levels[10:46] == 2).all()
        assert (levels[46:130] == 3).all()
        assert (levels[130:256] == 4).all()

    def test_wide_code_is_nearly_free(self):
        # A 17-bit codeword space has 1 + 17 + 136 = 154 words of weight
        # >= 15, so most bytes get <= 2 zeros.
        levels = codeword_zero_levels(17)
        assert levels.max() <= 3
        assert levels.mean() < 2.5

    def test_rejects_too_narrow(self):
        with pytest.raises(ValueError):
            codeword_zero_levels(7)

    def test_capacity_math(self):
        for n in (9, 11, 13):
            levels = codeword_zero_levels(n)
            for z in range(int(levels.max())):
                assert (levels == z).sum() == min(comb(n, z), 256)


class TestFrequencies:
    def test_uniform_on_uniform_corpus(self):
        data = np.arange(256, dtype=np.uint8)
        freqs = byte_frequencies(data)
        assert np.allclose(freqs, 1 / 256)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            byte_frequencies(np.array([], dtype=np.uint8))


class TestOptimalCode:
    def test_most_frequent_byte_gets_fewest_zeros(self):
        freqs = np.full(256, 1e-6)
        freqs[0x42] = 1.0
        freqs /= freqs.sum()
        code = OptimalStaticLWC(9, freqs)
        bits = bytes_to_bits(np.array([[0x42]], dtype=np.uint8))
        assert code.count_zeros(bits)[0] == 0

    def test_round_trip_exhaustive(self):
        rng = np.random.default_rng(13)
        freqs = rng.random(256)
        freqs /= freqs.sum()
        code = OptimalStaticLWC(10, freqs)
        values = np.arange(256, dtype=np.uint8)
        bits = bytes_to_bits(values[:, None]).reshape(256, 8)
        assert (code.decode(code.encode(bits)) == bits).all()

    def test_count_matches_encode(self):
        code = OptimalStaticLWC(9)
        values = np.arange(256, dtype=np.uint8)
        bits = bytes_to_bits(values[:, None]).reshape(256, 8)
        encoded = code.encode(bits)
        zeros = encoded.shape[-1] - encoded.sum(axis=-1)
        assert (code.count_zeros(bits) == zeros).all()

    def test_wider_codes_monotonically_better(self):
        # More codeword bits -> at least as few expected zeros.  This is
        # the shape of Figure 7's sweep.
        rng = np.random.default_rng(14)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8)
        freqs = byte_frequencies(data)
        expected = [
            OptimalStaticLWC(n, freqs).expected_zeros_per_byte()
            for n in range(9, 18)
        ]
        assert all(a >= b for a, b in zip(expected, expected[1:]))

    def test_equal_overhead_beats_dbi_on_skewed_data(self):
        # With the same (8, 9) overhead as DBI, the optimal static code
        # should transmit fewer zeros on skewed data — the Figure 7 claim.
        rng = np.random.default_rng(15)
        data = rng.choice(
            np.array([0x00, 0xFF, 0x01, 0x80], dtype=np.uint8),
            p=[0.6, 0.2, 0.1, 0.1],
            size=8192,
        ).astype(np.uint8)
        code = OptimalStaticLWC(9, byte_frequencies(data))
        opt = code.count_zeros_bytes(data[None, :])[0]
        dbi = DBICode().count_zeros_bytes(data[None, :])[0]
        assert opt < dbi

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimalStaticLWC(8)
        with pytest.raises(ValueError):
            OptimalStaticLWC(9, np.ones(10))
        with pytest.raises(ValueError):
            code = OptimalStaticLWC(9)
            code.decode(np.zeros((1, 9), dtype=np.uint8))  # not a codeword

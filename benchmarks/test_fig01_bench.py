"""Benchmark target: Figure 1 power breakdown.

Regenerates the paper's fig01 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig01_power_breakdown import run_experiment


def test_fig01(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

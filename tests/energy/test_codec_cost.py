"""Tests for the Table 4 codec synthesis model."""

import pytest

from repro.dram.timing import DDR4_3200
from repro.energy import (
    CODEC_DESIGNS,
    LIB_22NM,
    PAPER_TABLE4,
    CodecDesign,
    synthesize,
    table4,
)


class TestStructure:
    def test_all_four_blocks_modelled(self):
        costs = table4()
        assert set(costs) == {"milc-enc", "milc-dec", "3lwc-enc", "3lwc-dec"}

    def test_milc_encoder_dominates_area(self):
        costs = table4()
        enc = costs["milc-enc"].area_um2
        for name, cost in costs.items():
            if name != "milc-enc":
                assert enc > 3 * cost.area_um2

    def test_decoder_chain_slower_than_encoder(self):
        # The MiLC decoder's serial row-XOR chain makes it the latency
        # outlier despite being tiny (Table 4: 0.39 ns vs 0.35 ns).
        costs = table4()
        assert costs["milc-dec"].latency_ns > costs["milc-enc"].latency_ns

    def test_lwc_codec_is_fast(self):
        costs = table4()
        assert costs["3lwc-enc"].latency_ns < 0.15
        assert costs["3lwc-dec"].latency_ns < 0.15

    def test_all_latencies_fit_one_dram_cycle(self):
        # The property MiL's +1 tCL accounting depends on.
        for cost in table4().values():
            assert cost.latency_ns < DDR4_3200.cycle_ns


class TestCalibration:
    @pytest.mark.parametrize("block", sorted(PAPER_TABLE4))
    def test_area_within_forty_percent_of_paper(self, block):
        cost = table4()[block]
        paper_area = PAPER_TABLE4[block][0]
        assert 0.6 * paper_area < cost.area_um2 < 1.4 * paper_area

    @pytest.mark.parametrize("block", sorted(PAPER_TABLE4))
    def test_latency_within_forty_percent_of_paper(self, block):
        cost = table4()[block]
        paper_latency = PAPER_TABLE4[block][2]
        assert 0.6 * paper_latency < cost.latency_ns < 1.4 * paper_latency

    def test_power_scales_with_clock(self):
        design = CODEC_DESIGNS["milc-enc"]
        slow = synthesize(design, LIB_22NM, clock_ghz=0.8)
        fast = synthesize(design, LIB_22NM, clock_ghz=1.6)
        assert fast.power_mw == pytest.approx(2 * slow.power_mw)

    def test_area_independent_of_clock(self):
        design = CODEC_DESIGNS["3lwc-dec"]
        assert (
            synthesize(design, clock_ghz=0.8).area_um2
            == synthesize(design, clock_ghz=3.2).area_um2
        )


class TestValidation:
    def test_negative_gates_rejected(self):
        with pytest.raises(ValueError):
            CodecDesign("bad", combinational_ge=-1, flipflops=0,
                        logic_depth=1.0)

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            CodecDesign("bad", combinational_ge=10, flipflops=0,
                        logic_depth=0.0)

"""Figure 5: no-pending vs idle-with-pending vs utilized cycles.

The paper's key enabling observation: for the memory-intensive
benchmarks, requests are pending a majority of the time, yet the bus is
idle in more than half of those cycles — purely because of DRAM timing
constraints.  Those idle-with-pending cycles are MiL's raw material.
"""

from __future__ import annotations

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER, MEMORY_INTENSIVE
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy="dbi",
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    intensive_idle_share = []
    for bench in BENCHMARK_ORDER:
        summary = runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                               policy="dbi",
                               accesses_per_core=accesses_per_core)]
        p = summary.pending
        rows.append(
            [bench, p["no_pending"], p["idle_pending"], p["utilized"]]
        )
        if bench in MEMORY_INTENSIVE:
            pending_total = p["idle_pending"] + p["utilized"]
            if pending_total:
                intensive_idle_share.append(p["idle_pending"] / pending_total)

    result = ExperimentResult(
        experiment="fig05",
        title=(
            "Figure 5: cycle split on the DDR4 data bus (benchmarks "
            "sorted by utilization, low to high)"
        ),
        headers=["benchmark", "no_pending", "idle_pending", "utilized"],
        rows=rows,
        paper_claim=(
            "memory-intensive benchmarks have requests pending most of "
            "the time, but the bus stays idle in more than half of those "
            "cycles due to timing constraints"
        ),
    )
    result.observations["intensive_idle_over_pending"] = (
        sum(intensive_idle_share) / len(intensive_idle_share)
        if intensive_idle_share
        else 0.0
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Extension study: fast power-down modes amplify MiL's relative savings.

Section 7.3: "the new power modes proposed by Malladi et al. can reduce
background power, and help increase the percentage of system energy
savings that MiL can provide."  DDR4's large always-on background slice
dilutes MiL's IO cut; if idle ranks could drop into a fast power-down
state, the background slice shrinks and the *same* absolute IO savings
become a larger fraction of DRAM energy.

This experiment re-evaluates the DBI and MiL runs under both background
models and reports the DRAM-savings percentage each way.
"""

from __future__ import annotations

import numpy as np

from ..coding.pipeline import precompute_line_zeros
from ..core.framework import energy_params_for, make_policy_factory
from ..energy.dram_power import DramEnergyModel
from ..system.machine import NIAGARA_SERVER
from ..system.simulator import simulate
from ..workloads.benchmarks import BENCHMARK_ORDER, build_trace
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE

__all__ = ["run_experiment"]

_SCHEMES = ("raw", "dbi", "milc", "3lwc", "cafo2", "cafo4")


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    params = energy_params_for(NIAGARA_SERVER)
    plain = DramEnergyModel(params)
    powerdown = DramEnergyModel(params, fast_powerdown=True)

    rows = []
    savings_plain = []
    savings_pd = []
    for bench in BENCHMARK_ORDER:
        trace = build_trace(bench, NIAGARA_SERVER,
                            accesses_per_core=accesses_per_core)
        zeros = precompute_line_zeros(trace.line_data, _SCHEMES,
                                      digest=trace.line_digest)
        base = simulate(trace, NIAGARA_SERVER,
                        make_policy_factory("dbi", zeros))
        mil = simulate(trace, NIAGARA_SERVER,
                       make_policy_factory("mil", zeros))

        s_plain = 1 - (
            plain.evaluate(mil, zeros).total
            / plain.evaluate(base, zeros).total
        )
        s_pd = 1 - (
            powerdown.evaluate(mil, zeros).total
            / powerdown.evaluate(base, zeros).total
        )
        rows.append([bench, s_plain, s_pd])
        savings_plain.append(s_plain)
        savings_pd.append(s_pd)

    result = ExperimentResult(
        experiment="ext_powerdown",
        title=(
            "Extension: MiL DRAM-energy savings without / with fast "
            "power-down background (DDR4 server)"
        ),
        headers=["benchmark", "savings_plain", "savings_powerdown"],
        rows=rows,
        paper_claim=(
            "new DRAM power modes reduce background power and increase "
            "the percentage savings MiL provides (Section 7.3)"
        ),
    )
    result.observations["mean_savings_plain"] = float(np.mean(savings_plain))
    result.observations["mean_savings_powerdown"] = float(np.mean(savings_pd))
    return result


if __name__ == "__main__":
    print(run_experiment().format())

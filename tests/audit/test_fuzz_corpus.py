"""Fixed-seed fuzz corpus: channel-legal schedules must audit clean.

Two arms:

* the full deterministic sweep — 528 schedules (11 passes over the
  48-combo grid), past the 500-schedule acceptance floor;
* the checked-in ``seed_corpus.json`` — seeds that earned a permanent
  slot (coverage spread plus any past regression reproducers).  Replays
  are keyed by combo label so a grid reshuffle can't silently retarget
  a seed at a different configuration.
"""

import json
from pathlib import Path

import pytest

from repro.audit.fuzz import combo_grid, fuzz_schedule, run_corpus

CORPUS = Path(__file__).with_name("seed_corpus.json")


def test_grid_covers_every_dimension():
    grid = combo_grid()
    labels = [label for label, *_ in grid]
    assert len(grid) == 48
    assert len(set(labels)) == 48
    joined = " ".join(labels)
    for token in ("ddr4-3200", "lpddr3-1600", "ddr3-1600",
                  "bl8", "bl10", "bl16", "mix",
                  "/r1/", "/r2/", "open", "closed"):
        assert token in joined


def test_full_sweep_audits_clean():
    # 11 passes over the 48-combo grid; the acceptance floor is 500.
    results = list(run_corpus(schedules=528, requests=24, base_seed=0))
    assert len(results) >= 500
    dirty = [r for r in results if not r.clean]
    assert not dirty, "\n".join(
        f"{r.label} seed={r.seed}: {[str(v) for v in r.violations]}"
        for r in dirty
    )
    # The sweep must exercise real traffic, not degenerate empties.
    assert all(r.completed == r.requests for r in results)
    assert all(r.commands > 0 for r in results)


def _corpus_entries():
    entries = json.loads(CORPUS.read_text())
    return [pytest.param(e, id=f"{e['combo']}-{e['seed']}") for e in entries]


@pytest.mark.parametrize("entry", _corpus_entries())
def test_seed_corpus_replays_clean(entry):
    by_label = {label: (timing, geo, schemes, page)
                for label, timing, geo, schemes, page in combo_grid()}
    assert entry["combo"] in by_label, (
        f"corpus entry references unknown combo {entry['combo']!r}; "
        "grid changed without migrating seed_corpus.json"
    )
    timing, geometry, schemes, page = by_label[entry["combo"]]
    result = fuzz_schedule(
        timing, geometry, schemes, requests=entry["requests"],
        seed=entry["seed"], page_policy=page, label=entry["combo"],
    )
    assert result.clean, [str(v) for v in result.violations]
    assert result.completed == entry["requests"]

"""Integration: the audit layer wired through controller, runs, and CLI."""

import os

import pytest

from repro.audit import (
    AUDIT_ENV,
    AuditReport,
    ProtocolViolationError,
    Violation,
    audit_enabled,
)
from repro.audit.fuzz import fuzz_controller
from repro.campaign.spec import RunSpec
from repro.cli import main
from repro.core.framework import run_spec
from repro.dram import DDR4_3200, DDR4_GEOMETRY

SPEC = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200)


class TestControllerAudit:
    def test_controller_audit_method(self):
        mc, done = fuzz_controller(
            DDR4_3200, DDR4_GEOMETRY, ("dbi", "milc", "3lwc"),
            requests=24, seed=5,
        )
        assert done
        assert mc.channel.command_log  # keep_cmd_log=True wired through
        assert mc.audit() == []

    def test_audit_without_log_reports_nothing(self):
        # Default controllers don't record commands; auditing them is a
        # no-op (zero commands), not a crash.
        from repro.controller import ChannelController

        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        assert mc.channel.command_log == []
        assert mc.audit() == []


class TestRunSpecAudit:
    def test_report_mode_fills_report_and_stats(self):
        report = AuditReport()
        summary = run_spec(SPEC, audit=report)
        assert report.clean
        assert report.commands > 0
        assert len(report.channels) == 2  # ddr4-server has two channels
        digest = summary.stats["audit"]
        assert digest["violations"] == 0
        assert digest["commands"] == report.commands
        assert digest["by_constraint"] == {}

    def test_env_mode_audits_and_passes(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        assert audit_enabled()
        summary = run_spec(SPEC)  # raises ProtocolViolationError if dirty
        assert summary.stats["audit"]["violations"] == 0

    def test_env_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "0")
        assert not audit_enabled()
        summary = run_spec(SPEC)
        assert "audit" not in summary.stats

    def test_default_run_records_nothing(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        summary = run_spec(SPEC)
        assert "audit" not in summary.stats

    def test_violation_error_names_first_finding(self):
        report = AuditReport()
        violation = Violation(
            constraint="tFAW", cycle=47, rank=0,
            message="5th ACT in 47 < tFAW=48",
        )
        report.record("channel0", commands=5, transactions=0,
                      violations=[violation])
        err = ProtocolViolationError(report)
        assert "1 violation(s)" in str(err)
        assert "tFAW" in str(err)
        assert err.report is report


class TestIdleRefreshCatchUp:
    def test_long_idle_wakes_to_bounded_refresh_burst(self):
        # Jump the controller 40 tREFI into the future in one step —
        # the path where debt accrues in a single batch.  Before the
        # clamp fix the scheduler would owe 40 refreshes and issue them
        # all back-to-back; the JEDEC postponement budget allows at
        # most 8, and the auditor's overpay check enforces it.
        from repro.controller import ChannelController
        from repro.dram.refresh import MAX_POSTPONED

        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY, keep_cmd_log=True)
        refi = DDR4_3200.REFI
        now = refi * 40
        horizon = refi * 42
        while now < horizon:
            mc.step(now)
            nxt = mc.next_event(now)
            now = max(now + 1, nxt if nxt is not None else horizon)
        catch_up = [
            c for c in mc.channel.command_log
            if c.cmd.name == "REFRESH" and c.cycle < refi * 41
        ]
        per_rank = {}
        for c in catch_up:
            per_rank[c.rank] = per_rank.get(c.rank, 0) + 1
        assert per_rank, "idle wake-up must issue catch-up refreshes"
        assert all(n <= MAX_POSTPONED for n in per_rank.values()), per_rank
        assert mc.audit() == []


class TestCliAudit:
    def test_fuzz_verb_clean(self, capsys):
        assert main(["fuzz", "--schedules", "4", "--seed", "3"]) == 0
        err = capsys.readouterr().err
        assert "4 schedules" in err
        assert "clean" in err

    def test_run_audit_flag(self, capsys):
        assert main([
            "run", "gups", "--scale", "120", "--audit",
        ]) == 0
        err = capsys.readouterr().err
        assert "protocol audit" in err
        assert "clean" in err

    def test_campaign_audit_restores_env(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert main([
            "campaign", "fig02", "--scale", "80", "--no-report", "--audit",
        ]) == 0
        assert AUDIT_ENV not in os.environ
        err = capsys.readouterr().err
        assert "0 failed" in err

    def test_campaign_audit_preserves_prior_env_value(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
        monkeypatch.setenv(AUDIT_ENV, "please")
        assert main([
            "campaign", "fig02", "--scale", "80", "--no-report", "--audit",
        ]) == 0
        assert os.environ[AUDIT_ENV] == "please"

"""Micro-benchmarks: codec throughput on cache-line batches.

Not a paper figure, but the number that decides whether the simulator's
vectorised zero-counting path is fast enough to precompute whole traces
(it is — millions of lines per second).
"""

import numpy as np
import pytest

from repro.coding import line_zeros

RNG = np.random.default_rng(42)
LINES = RNG.integers(0, 256, size=(4096, 64), dtype=np.uint8)


@pytest.mark.parametrize("scheme", ["dbi", "milc", "3lwc", "cafo2", "cafo4"])
def test_line_zero_counting(benchmark, scheme):
    result = benchmark(line_zeros, scheme, LINES)
    assert result.shape == (4096,)
    assert (result >= 0).all()


def test_milc_full_encode(benchmark):
    from repro.coding import MiLCCode

    code = MiLCCode()
    blocks = RNG.integers(0, 2, size=(4096, 64), dtype=np.uint8)
    encoded = benchmark(code.encode, blocks)
    assert encoded.shape == (4096, 80)


def test_lwc_full_encode(benchmark):
    from repro.coding import ThreeLWC

    code = ThreeLWC()
    blocks = RNG.integers(0, 2, size=(4096, 8), dtype=np.uint8)
    encoded = benchmark(code.encode, blocks)
    assert encoded.shape == (4096, 17)

"""Synthetic mixed-arrival traffic: the scenario engine's workloads.

The Table 3 suite is a fixed set of single-application traces; scenario
traffic (:mod:`repro.scenario`) instead *composes* them — a weighted mix
of benchmark address streams, replayed under an explicit arrival process
(:func:`~repro.workloads.generators.arrival_gaps`) with a data-content
knob (:func:`~repro.workloads.datamodel.biased_mix`) that sweeps the
zero density the sparse codes feed on.

A mix is fully described by its canonical **mix name**, e.g.::

    MIX@POISSON:40@Z:0.25@CG:0.6+GUPS:0.4

which reads: Poisson arrivals with a 40-cycle mean gap, zero-density
bias +0.25, and a 60/40 CG/GUPS stream mix.  The name is the single
source of truth: it is what a :class:`~repro.campaign.spec.RunSpec`
carries in its ``benchmark`` field, it survives ``str.upper()`` (specs
normalise benchmarks to uppercase), it round-trips through
:meth:`MixSpec.parse`, and any process can rebuild the identical trace
from it — so mixes cross campaign worker-pool boundaries and land in
the content-addressed result cache exactly like Table 3 names do.

Determinism: the trace is derived from ``(seed, core, crc32(name))``
alone, so the same scenario always produces byte-identical payloads and
therefore the same ``MemoryTrace.line_digest`` — the property the
campaign cache and the zero-table cache key on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from .datamodel import DataModel, biased_mix
from .generators import ARRIVAL_KINDS, arrival_gaps
from .trace import MemoryTrace, TraceRecord

__all__ = [
    "MIX_PREFIX",
    "MixNameError",
    "MixSpec",
    "is_mix_name",
    "build_mixed_trace",
]

MIX_PREFIX = "MIX@"

# Mixes synthesise DRAM-level records directly (no hierarchy filter), so
# tiny requests still produce a simulable trace.
_MIN_RECORDS = 64


class MixNameError(ValueError):
    """A string that looks like a mix name but does not parse."""


def _fmt(value: float) -> str:
    """Canonical float formatting: short, uppercase-stable, re-parsable."""
    return format(float(value), ".4g").upper()


def is_mix_name(name: str) -> bool:
    """Whether ``name`` claims to be a mix (prefix check only)."""
    return name.upper().startswith(MIX_PREFIX)


@dataclass(frozen=True)
class MixSpec:
    """One synthesised traffic mix, canonicalised.

    ``components`` is a tuple of ``(benchmark, weight)`` pairs sorted by
    benchmark name with weights summing to ~1; ``arrival`` is one of
    :data:`~repro.workloads.generators.ARRIVAL_KINDS`; ``mean_gap`` is
    the mean think time between a core's records in DRAM cycles;
    ``burst`` is the mean burst length (bursty arrivals only);
    ``zero_bias`` shifts every component's data mixture toward (+) or
    away from (-) all-zero lines.

    Instances are built via :meth:`make` or :meth:`parse`, which store
    the *formatted* parameter values so ``parse(spec.name) == spec``
    holds exactly.
    """

    components: tuple
    arrival: str = "poisson"
    mean_gap: float = 40.0
    burst: int = 8
    zero_bias: float = 0.0

    @classmethod
    def make(
        cls,
        components: dict,
        arrival: str = "poisson",
        mean_gap: float = 40.0,
        burst: int = 8,
        zero_bias: float = 0.0,
    ) -> "MixSpec":
        """Validate and canonicalise a mix description."""
        from .benchmarks import BENCHMARK_ORDER, BENCHMARKS

        arrival = str(arrival).lower()
        if arrival not in ARRIVAL_KINDS:
            raise MixNameError(
                f"unknown arrival kind {arrival!r}; "
                f"known: {list(ARRIVAL_KINDS)}"
            )
        if not components:
            raise MixNameError("a mix needs at least one component")
        weights: dict[str, float] = {}
        for bench, weight in components.items():
            name = str(bench).upper()
            if name not in BENCHMARKS:
                raise KeyError(
                    f"unknown mix component {bench!r}; "
                    f"known: {list(BENCHMARK_ORDER)}"
                )
            weight = float(weight)
            if weight <= 0:
                raise MixNameError(
                    f"mix weight for {name} must be positive, got {weight}"
                )
            weights[name] = weights.get(name, 0.0) + weight
        total = sum(weights.values())
        if float(mean_gap) < 0:
            raise MixNameError("mean_gap must be non-negative")
        if int(burst) < 1:
            raise MixNameError("burst must be >= 1")
        if not -1.0 <= float(zero_bias) <= 1.0:
            raise MixNameError("zero_bias must be in [-1, 1]")
        # Store the formatted values so the name round-trips exactly.
        canon = tuple(
            (name, float(_fmt(weights[name] / total)))
            for name in sorted(weights)
        )
        return cls(
            components=canon,
            arrival=arrival,
            mean_gap=float(_fmt(mean_gap)),
            burst=int(burst),
            zero_bias=float(_fmt(zero_bias)),
        )

    @property
    def name(self) -> str:
        """The canonical mix name (uppercase-stable, filename-safe)."""
        arr = self.arrival.upper() + ":" + _fmt(self.mean_gap)
        if self.arrival == "bursty":
            arr += f":{self.burst}"
        comps = "+".join(
            f"{bench}:{_fmt(weight)}" for bench, weight in self.components
        )
        return f"{MIX_PREFIX}{arr}@Z:{_fmt(self.zero_bias)}@{comps}"

    @classmethod
    def parse(cls, name: str) -> "MixSpec":
        """Rebuild a :class:`MixSpec` from its canonical name."""
        raw = name.upper()
        if not raw.startswith(MIX_PREFIX):
            raise MixNameError(f"not a mix name: {name!r}")
        parts = raw[len(MIX_PREFIX):].split("@")
        if len(parts) != 3:
            raise MixNameError(
                f"mix name {name!r} must have three @-separated sections "
                "(arrival, zero bias, components)"
            )
        arr, zsec, csec = parts
        arr_fields = arr.split(":")
        kind = arr_fields[0].lower()
        try:
            if kind == "bursty":
                if len(arr_fields) != 3:
                    raise MixNameError(
                        f"bursty arrival in {name!r} needs KIND:GAP:BURST"
                    )
                mean_gap, burst = float(arr_fields[1]), int(arr_fields[2])
            elif len(arr_fields) == 2:
                mean_gap, burst = float(arr_fields[1]), 8
            else:
                raise MixNameError(
                    f"arrival section of {name!r} must be KIND:GAP"
                )
        except ValueError as exc:
            if isinstance(exc, MixNameError):
                raise
            raise MixNameError(
                f"bad arrival parameters in {name!r}: {exc}"
            ) from None
        if not zsec.startswith("Z:"):
            raise MixNameError(
                f"second section of {name!r} must be Z:<bias>"
            )
        try:
            zero_bias = float(zsec[2:])
        except ValueError:
            raise MixNameError(
                f"bad zero bias in {name!r}: {zsec[2:]!r}"
            ) from None
        components: dict[str, float] = {}
        for item in csec.split("+"):
            bench, sep, weight = item.partition(":")
            if not sep or not bench:
                raise MixNameError(
                    f"bad mix component {item!r} in {name!r} "
                    "(expected BENCH:WEIGHT)"
                )
            try:
                components[bench] = components.get(bench, 0.0) + float(weight)
            except ValueError:
                raise MixNameError(
                    f"bad mix weight {weight!r} in {name!r}"
                ) from None
        return cls.make(
            components,
            arrival=kind,
            mean_gap=mean_gap,
            burst=burst,
            zero_bias=zero_bias,
        )

    def weights(self) -> np.ndarray:
        """Component probabilities, re-normalised after formatting."""
        w = np.array([weight for _, weight in self.components])
        return w / w.sum()


def build_mixed_trace(
    mix: "MixSpec | str",
    config,
    seed: int = 0,
    accesses_per_core: int = 1000,
) -> MemoryTrace:
    """Synthesise the :class:`MemoryTrace` for a traffic mix.

    Unlike :func:`~repro.workloads.benchmarks.build_trace` for Table 3
    names, mixes generate DRAM-level records directly: each of the
    ``config.cores`` cores draws a per-record component from the mix
    weights, takes that component's next address in its own program
    order, samples think-time gaps from the arrival process, and fills
    payloads from the component's data model under the mix's zero-bias.
    The per-core RNG is seeded with ``(seed, core, crc32(name))`` only,
    so the same mix name and seed reproduce the trace bit-for-bit in
    any process.
    """
    from .benchmarks import BENCHMARKS

    if isinstance(mix, str):
        mix = MixSpec.parse(mix)
    n = max(_MIN_RECORDS, int(accesses_per_core))
    specs = [BENCHMARKS[bench] for bench, _ in mix.components]
    weights = mix.weights()
    # Per-component data models, shared across cores (payloads are
    # address-derived, so sharing is safe and cheap).
    models = [
        DataModel(
            biased_mix(spec.data_mix, mix.zero_bias), seed=spec._seed_tag()
        )
        for spec in specs
    ]
    dep_fraction = np.array([spec.dependent_fraction for spec in specs])
    tag = zlib.crc32(mix.name.encode()) & 0xFFFFFFFF

    records_by_core: list[list[TraceRecord]] = []
    line_blocks: list[np.ndarray] = []
    for core in range(config.cores):
        rng = np.random.default_rng((seed, core, tag))
        draws = (
            rng.choice(len(specs), size=n, p=weights)
            if len(specs) > 1
            else np.zeros(n, dtype=np.intp)
        )
        addresses = np.zeros(n, dtype=np.int64)
        is_write = np.zeros(n, dtype=bool)
        lines = np.zeros((n, 64), dtype=np.uint8)
        for idx, spec in enumerate(specs):
            mask = draws == idx
            count = int(mask.sum())
            if not count:
                continue
            addr, wr = spec.build(rng, core, count)
            if len(addr) != count:
                # Some builders round to pair/phase boundaries
                # (update_pairs emits an even count); wrap-pad so every
                # drawn slot is filled deterministically.
                addr = np.resize(addr, count)
                wr = np.resize(wr, count)
            addresses[mask] = addr
            is_write[mask] = wr
            lines[mask] = models[idx].lines_for(addr)
        gaps = arrival_gaps(
            rng, n, mix.arrival, mix.mean_gap, burst=mix.burst
        )
        dependent = rng.random(n) < dep_fraction[draws]
        records = [
            TraceRecord(
                core=core,
                gap=int(gaps[k]),
                address=int(addresses[k]),
                is_write=bool(is_write[k]),
                line_id=-1,
                dependent=bool(dependent[k] and not is_write[k]),
            )
            for k in range(n)
        ]
        records_by_core.append(records)
        line_blocks.append(lines)

    next_id = 0
    for records in records_by_core:
        for rec in records:
            rec.line_id = next_id
            next_id += 1
    line_data = (
        np.vstack(line_blocks)
        if line_blocks
        else np.zeros((0, 64), dtype=np.uint8)
    )
    return MemoryTrace(
        name=mix.name,
        records_by_core=records_by_core,
        line_data=line_data,
        cpu_accesses=next_id,
        l1_miss_rate=1.0,  # records *are* the memory traffic
        l2_miss_rate=1.0,
        stats={
            "mixed": True,
            "arrival": mix.arrival,
            "mean_gap": mix.mean_gap,
            "zero_bias": mix.zero_bias,
            "components": dict(mix.components),
        },
    )

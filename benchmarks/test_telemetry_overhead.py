"""Guard: disabled telemetry adds no measurable cost to hot paths.

Two checks, both about the *disabled* state (the repo default):

* The codec-throughput kernel (``line_zeros`` over cache-line batches)
  must carry zero telemetry gating.  Timing it with the global switch
  off versus fully on-with-a-live-session must agree within 2% — any
  per-call ``enabled()`` check or probe lookup threaded into the kernel
  shows up here long before it shows up in a profile.
* A dormant instrumentation site — the single ``probe is None`` test
  the DRAM channel and decision policies pay per event — must stay in
  single-digit nanoseconds next to the work it guards.

Timings interleave the two configurations and keep the best of many
small repeats, so one scheduler hiccup cannot fake a regression; a
whole-comparison retry absorbs the rest.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.coding import line_zeros
from repro.telemetry import TelemetrySession

RNG = np.random.default_rng(42)
LINES = RNG.integers(0, 256, size=(4096, 64), dtype=np.uint8)

MAX_OVERHEAD = 0.02
REPEATS = 30  # best-of per configuration
ATTEMPTS = 3  # whole-comparison retries before failing


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fn_a, fn_b, repeats: int = REPEATS):
    """Best-of timings for two thunks, alternated to share noise."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


@pytest.fixture(autouse=True)
def _telemetry_off_by_default():
    previous = telemetry.set_enabled(False)
    yield
    telemetry.set_enabled(previous)


def test_codec_throughput_is_unaffected_by_the_global_switch():
    kernel = lambda: line_zeros("milc", LINES)  # noqa: E731
    kernel()  # warm caches and lookup tables

    for attempt in range(ATTEMPTS):
        telemetry.set_enabled(False)
        assert telemetry.session_if_enabled() is None

        def disabled():
            kernel()

        def enabled():
            telemetry.set_enabled(True)
            session = telemetry.session_if_enabled()
            assert isinstance(session, TelemetrySession)
            kernel()
            telemetry.set_enabled(False)

        t_disabled, t_enabled = _interleaved_best(disabled, enabled)
        # ``enabled`` also constructs a session, so it bounds from above;
        # the disabled kernel may not exceed it by more than the budget.
        if t_disabled <= t_enabled * (1 + MAX_OVERHEAD):
            return
    pytest.fail(
        f"disabled-telemetry codec path slower than budget after "
        f"{ATTEMPTS} attempts: disabled={t_disabled:.6f}s "
        f"enabled={t_enabled:.6f}s (limit {MAX_OVERHEAD:.0%})"
    )


def test_dormant_probe_site_costs_nanoseconds():
    """The per-event cost of an unwired site is one identity test."""
    probe = None
    events = 1_000_000

    def guarded():
        hits = 0
        for _ in range(events):
            if probe is not None:  # the exact pattern used in the models
                hits += 1
        return hits

    best = _best_of(guarded, repeats=5)
    per_event_ns = best / events * 1e9
    # An empty Python loop iteration alone is ~20-50 ns; budget 200 ns
    # so the guard only trips on real regressions (attribute chains,
    # dict lookups, enabled() calls) and not on slow CI machines.
    assert per_event_ns < 200, (
        f"dormant probe site costs {per_event_ns:.0f} ns/event"
    )


def test_simulation_summary_identical_with_telemetry_off_and_on():
    """Cross-check at simulation scale: observation never steers.

    Belt-and-braces companion to the unit test of the same name — run
    here so the overhead suite fails loudly if instrumentation ever
    perturbs results rather than timing.
    """
    from repro.campaign import RunSpec
    from repro.core.framework import run_spec

    spec = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=80)
    plain = run_spec(spec).to_dict()
    observed = run_spec(spec, telemetry=TelemetrySession()).to_dict()
    plain.pop("stats")
    observed.pop("stats")
    assert plain == observed

"""Tests for the improved (8, 17) 3-limited-weight code."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import ThreeLWC, lwc_zero_table
from repro.coding.bitops import bytes_to_bits, zeros_in_bits
from repro.coding.lwc import MAX_ZEROS_PER_CODEWORD

CODE = ThreeLWC()


def byte_bits(value: int) -> np.ndarray:
    return bytes_to_bits(np.array([value], dtype=np.uint8))


class TestInvariants:
    def test_round_trip_exhaustive(self):
        # All 256 bytes at once: the code must be a bijection.
        values = np.arange(256, dtype=np.uint8)
        bits = bytes_to_bits(values[:, None]).reshape(256, 8)
        decoded = CODE.decode(CODE.encode(bits))
        assert (decoded == bits).all()

    def test_codewords_unique(self):
        values = np.arange(256, dtype=np.uint8)
        bits = bytes_to_bits(values[:, None]).reshape(256, 8)
        codes = CODE.encode(bits)
        packed = {tuple(c) for c in codes.tolist()}
        assert len(packed) == 256

    def test_weight_bound_exhaustive(self):
        # The defining property: at most three zeros per 17-bit codeword.
        values = np.arange(256, dtype=np.uint8)
        bits = bytes_to_bits(values[:, None]).reshape(256, 8)
        codes = CODE.encode(bits)
        assert zeros_in_bits(codes).max() <= MAX_ZEROS_PER_CODEWORD

    @given(st.integers(min_value=0, max_value=255))
    def test_count_matches_encode(self, value):
        bits = byte_bits(value)
        assert CODE.count_zeros(bits) == zeros_in_bits(CODE.encode(bits))


class TestModeTable:
    """Spot checks against Table 1 of the paper (pre-complement view)."""

    def precomplement(self, value: int) -> np.ndarray:
        return 1 - CODE.encode(byte_bits(value)).ravel()

    def test_zero_byte_all_zero_code_mode_00(self):
        word = self.precomplement(0x00)
        assert word.sum() == 0  # code all 0s, mode 00

    def test_equal_nonzero_nibbles_mode_01(self):
        word = self.precomplement(0x33)  # l == r == 3
        assert word[:15].sum() == 1
        assert (word[15], word[16]) == (0, 1)  # mode 01

    def test_left_only_mode_00(self):
        word = self.precomplement(0x50)  # l=5, r=0
        assert word[:15].sum() == 1
        assert (word[15], word[16]) == (0, 0)

    def test_right_only_mode_10(self):
        word = self.precomplement(0x05)  # l=0, r=5
        assert word[:15].sum() == 1
        assert (word[15], word[16]) == (1, 0)

    def test_left_greater_mode_10(self):
        word = self.precomplement(0x72)  # l=7 > r=2
        assert word[:15].sum() == 2
        assert (word[15], word[16]) == (1, 0)

    def test_left_smaller_mode_00(self):
        word = self.precomplement(0x27)  # l=2 < r=7
        assert word[:15].sum() == 2
        assert (word[15], word[16]) == (0, 0)


class TestZeroTable:
    def test_table_matches_encoder_exhaustively(self):
        table = lwc_zero_table()
        values = np.arange(256, dtype=np.uint8)
        bits = bytes_to_bits(values[:, None]).reshape(256, 8)
        encoded_zeros = zeros_in_bits(CODE.encode(bits))
        assert (table == encoded_zeros).all()

    def test_zero_byte_costs_nothing(self):
        # 0x00 maps to the all-ones transmitted word: free on POD.
        assert lwc_zero_table()[0x00] == 0

    def test_average_below_dbi(self):
        # Random data: 3-LWC averages ~2.34 zeros/byte vs DBI's ~3.27.
        mean = lwc_zero_table().astype(float).mean()
        assert 2.2 < mean < 2.5

    def test_count_zeros_bytes_matches(self):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        assert (
            CODE.count_zeros_bytes(data) == CODE.count_zeros(bytes_to_bits(data))
        ).all()

"""Figure 20: sensitivity of execution time to a fixed burst length.

The naive alternative to MiL: always code with one fixed (longer) burst
length.  The paper measures +3 % / +6 % / +6.5 % / +9.3 % average
slowdowns at BL10 / BL12 / BL14 / BL16, with the data-intensive
benchmarks suffering most — which is why the *opportunistic* hybrid is
needed.  (STRMATCH even speeds up slightly at BL14 in the paper; queue
pressure can help FR-FCFS see more candidates.)
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..coding.registry import scheme_info
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "BURST_POLICIES"]

# Policy name -> burst length it pins the bus to (from the registry, so
# the sweep labels can never drift from the simulated burst lengths).
BURST_POLICIES = tuple(
    (policy, scheme_info(policy).burst_length)
    for policy in ("milc", "bl12", "bl14", "3lwc")
)

PAPER_MEAN_SLOWDOWN = {10: 1.03, 12: 1.06, 14: 1.065, 16: 1.093}


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy=policy,
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
        for policy in ("dbi",) + tuple(p for p, _ in BURST_POLICIES)
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))

    def summary(bench, policy):
        return runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                            policy=policy,
                            accesses_per_core=accesses_per_core)]

    rows = []
    per_bl = {bl: [] for _, bl in BURST_POLICIES}
    for bench in BENCHMARK_ORDER:
        base = summary(bench, "dbi")
        row = [bench]
        for policy, bl in BURST_POLICIES:
            ratio = summary(bench, policy).cycles / base.cycles
            row.append(ratio)
            per_bl[bl].append(ratio)
        rows.append(row)

    result = ExperimentResult(
        experiment="fig20",
        title=(
            "Figure 20: execution time at fixed burst lengths, "
            "normalized to BL8 (DDR4 server)"
        ),
        headers=["benchmark"] + [f"BL{bl}" for _, bl in BURST_POLICIES],
        rows=rows,
        paper_claim=(
            "always coding costs +3/+6/+6.5/+9.3% at BL10/12/14/16; the "
            "data-intensive benchmarks suffer most"
        ),
    )
    for bl, ratios in per_bl.items():
        result.observations[f"mean_BL{bl}"] = float(np.mean(ratios))
        result.observations[f"paper_BL{bl}"] = PAPER_MEAN_SLOWDOWN[bl]
    return result


if __name__ == "__main__":
    print(run_experiment().format())

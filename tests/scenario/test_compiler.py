"""Scenario compilation: deterministic expansion into RunSpec matrices."""

from repro.scenario import SCHEMA_VERSION, compile_scenario, parse_scenario
from repro.workloads import is_mix_name


def scenario(**overrides):
    base = {
        "schema": SCHEMA_VERSION,
        "name": "SYN-COMPILE",
        "seed": 0,
        "accesses_per_core": 100,
        "arrival": {"kind": "poisson", "mean_gap": 40},
        "mix": {"GUPS": 0.5, "CG": 0.5},
        "grid": {"policy": ["dbi", "mil"], "zero_bias": [-0.5, 0.0, 0.5]},
    }
    base.update(overrides)
    return parse_scenario({k: v for k, v in base.items() if v is not None})


def test_cartesian_expansion_in_axis_order():
    specs = compile_scenario(scenario())
    assert len(specs) == 6
    # policy is the outer axis, zero_bias the inner one.
    assert [s.policy for s in specs] == ["dbi"] * 3 + ["mil"] * 3
    assert all(is_mix_name(s.benchmark) for s in specs)
    assert "Z:-0.5" in specs[0].benchmark
    assert "Z:0.5" in specs[2].benchmark


def test_expansion_is_byte_stable():
    a = [s.canonical_json() for s in compile_scenario(scenario())]
    b = [s.canonical_json() for s in compile_scenario(scenario())]
    assert a == b


def test_plain_benchmark_passthrough():
    # Single component, no arrival, no bias: the grid point must reuse
    # the plain Table 3 name so cached figure traces are shared.
    specs = compile_scenario(scenario(
        arrival=None, mix={"GUPS": 1.0},
        grid={"channels": [1, 2], "ranks": [1, 2]},
    ))
    assert len(specs) == 4
    assert {s.benchmark for s in specs} == {"GUPS"}
    assert specs[0].system_overrides == (
        ("channels", 1), ("geometry.ranks", 1),
    )
    resolved = specs[-1].resolve_system()
    assert resolved.channels == 2
    assert resolved.geometry.ranks == 2


def test_biased_single_component_still_synthesises():
    specs = compile_scenario(scenario(
        mix={"GUPS": 1.0}, data={"zero_bias": 0.5}, grid=None,
    ))
    assert len(specs) == 1
    assert is_mix_name(specs[0].benchmark)


def test_warmup_adds_to_accesses():
    specs = compile_scenario(scenario(warmup=50, grid=None))
    assert specs[0].accesses_per_core == 150


def test_traffic_axes_rewrite_the_mix():
    specs = compile_scenario(scenario(
        grid={"mean_gap": [10, 80]},
    ))
    assert [s.benchmark.split("@")[1] for s in specs] == [
        "POISSON:10", "POISSON:80",
    ]


def test_seed_axis_overrides_scenario_seed():
    specs = compile_scenario(scenario(seed=5, grid={"seed": [7, 9]}))
    assert [s.seed for s in specs] == [7, 9]


def test_empty_grid_is_single_spec():
    specs = compile_scenario(scenario(grid=None))
    assert len(specs) == 1
    assert specs[0].policy == "mil"
    assert specs[0].system == "ddr4-server"

"""Tests for the repro.telemetry observability subsystem."""

"""Bus-level analysis metrics: Figures 4, 5, and 6 of the paper.

All three are derived from the data-bus transaction log:

* **Idle-gap distribution (Figure 4)** — cycles between the end of one
  burst and the start of the next, bucketed like the paper
  (0, 1-7, 8-15, 16-31, 32-63, 64+).
* **Pending split (Figure 5)** — execution cycles divided into
  bus-utilized, idle-with-pending-requests, and no-pending.
* **Slack distribution (Figure 6)** — per gap, how many cycles the
  first transaction could have been extended without delaying the
  second, i.e. the gap minus any mandatory turnaround bubble.  This is
  the headroom MiL's long codes consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.channel import BusTransaction
from ..dram.timing import TimingParams

__all__ = [
    "GAP_BUCKETS",
    "bucket_label",
    "idle_gap_histogram",
    "slack_histogram",
    "PendingSplit",
    "pending_split",
]

# Figure 4/6 bucket edges (inclusive lower bounds).
GAP_BUCKETS = (0, 1, 8, 16, 32, 64)


def bucket_label(lower: int) -> str:
    """Human-readable label for a bucket's lower edge."""
    idx = GAP_BUCKETS.index(lower)
    if lower == 0:
        return "0"
    if idx == len(GAP_BUCKETS) - 1:
        return f"{lower}+"
    return f"{lower}-{GAP_BUCKETS[idx + 1] - 1}"


def _bucket_of(value: int) -> int:
    lower = GAP_BUCKETS[0]
    for edge in GAP_BUCKETS:
        if value >= edge:
            lower = edge
    return lower


def idle_gap_histogram(
    transactions: list[BusTransaction],
) -> dict[str, int]:
    """Figure 4: distribution of idle cycles between successive bursts."""
    hist = {bucket_label(b): 0 for b in GAP_BUCKETS}
    ordered = sorted(transactions, key=lambda tr: tr.start)
    for prev, cur in zip(ordered, ordered[1:]):
        gap = max(0, cur.start - prev.end)
        hist[bucket_label(_bucket_of(gap))] += 1
    return hist


def slack_histogram(
    transactions: list[BusTransaction],
    timing: TimingParams,
) -> dict[str, int]:
    """Figure 6: slack between successive bursts.

    The slack is the gap minus the turnaround bubble that would still be
    required if the first burst were extended (rank switches and
    read/write direction changes keep their tRTRS bubble; Section 3.1
    notes such turnaround-limited gaps cannot be exploited).
    """
    hist = {bucket_label(b): 0 for b in GAP_BUCKETS}
    ordered = sorted(transactions, key=lambda tr: tr.start)
    for prev, cur in zip(ordered, ordered[1:]):
        gap = max(0, cur.start - prev.end)
        switch = prev.rank != cur.rank or prev.is_write != cur.is_write
        slack = max(0, gap - timing.RTRS) if switch else gap
        hist[bucket_label(_bucket_of(slack))] += 1
    return hist


@dataclass(frozen=True)
class PendingSplit:
    """Figure 5: how execution cycles divide per channel."""

    utilized: int  # data bus transferring
    idle_pending: int  # bus idle but requests queued: MiL's opportunity
    no_pending: int  # nothing to do

    @property
    def total(self) -> int:
        return self.utilized + self.idle_pending + self.no_pending

    def fractions(self) -> dict[str, float]:
        total = self.total or 1
        return {
            "utilized": self.utilized / total,
            "idle_pending": self.idle_pending / total,
            "no_pending": self.no_pending / total,
        }


def pending_split(
    cycles: int, busy_cycles: int, pending_cycles: int
) -> PendingSplit:
    """Classify one channel's cycles for Figure 5.

    ``pending_cycles`` is the controller's queued-request time integral;
    bus-busy time approximately nests inside it (data transfers overlap
    queue occupancy), so idle-with-pending is the difference.
    """
    if busy_cycles > cycles:
        raise ValueError("busy cycles exceed total cycles")
    utilized = busy_cycles
    idle_pending = max(0, min(pending_cycles, cycles) - busy_cycles)
    no_pending = cycles - utilized - idle_pending
    return PendingSplit(utilized, idle_pending, no_pending)

"""The asyncio HTTP front end: routes, NDJSON streams, listeners.

One :class:`ServeAPI` wraps one :class:`CampaignService` and serves the
job API on any number of listeners (TCP and/or Unix socket — the Unix
mode is what tests and CI use, no port juggling).  Endpoints:

====== ============================== =====================================
Method Path                           Meaning
====== ============================== =====================================
GET    /v1/healthz                    liveness + shard count
GET    /v1/stats                      queue depth, jobs by state, store
POST   /v1/jobs                       submit (201, or 429 on back-pressure)
GET    /v1/jobs[?namespace=&state=]   list job descriptors (NDJSON)
GET    /v1/jobs/<id>                  one job descriptor
DELETE /v1/jobs/<id>                  cancel
GET    /v1/jobs/<id>/events[?since=]  NDJSON event stream: snapshot + tail
GET    /v1/jobs/<id>/results          NDJSON result rows (cached payloads)
GET    /v1/metrics                    one gauges/counters/fleet sample
GET    /v1/workers                    the connected remote fleet
POST   /v1/workers                    remote worker attach (token hello)
POST   /v1/sweep                      force a quota/GC sweep
====== ============================== =====================================

``POST /v1/workers`` is the one route that never returns: after the
token check the connection is handed to the lease broker and becomes a
bidirectional frame stream for as long as the worker stays attached
(see :mod:`repro.serve.worker`).

The event stream is the one long-lived response: it backfills every
event after ``since`` (default: all) and then tails the log until the
job reaches a terminal state, at which point the stream ends cleanly.
Everything else is one short request/response per connection
(``Connection: close``), which keeps the parser honest and tiny.
"""

from __future__ import annotations

import asyncio
import json
import threading

from .jobs import QueueFullError
from .protocol import API_PREFIX, NDJSON, STATUS_TEXT, dumps
from .protocol import parse_query
from .service import CampaignService

__all__ = ["ServeAPI", "ServerHandle", "start_in_thread"]

MAX_BODY = 32 * 1024 * 1024  # a scenario doc or spec matrix, with slack


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ServeAPI:
    """HTTP routing over one :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self._servers: list[asyncio.AbstractServer] = []

    # -- listeners ------------------------------------------------------
    async def listen_unix(self, path: str) -> None:
        self._servers.append(
            await asyncio.start_unix_server(self._handle, path=path)
        )

    async def listen_tcp(self, host: str, port: int):
        server = await asyncio.start_server(self._handle, host, port)
        self._servers.append(server)
        return server.sockets[0].getsockname()

    async def close(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()

    # -- connection handling --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(reader, writer, method, path, query, body)
        except _HttpError as exc:
            await self._respond(
                writer, exc.status, {"error": exc.message}
            )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        except Exception as exc:  # noqa: BLE001 — one bad conn != dead server
            try:
                await self._respond(writer, 500, {"error": repr(exc)})
            except OSError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY:
            raise _HttpError(400, "body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, raw_query = target.partition("?")
        return method.upper(), path, parse_query(raw_query), body

    # -- responses ------------------------------------------------------
    @staticmethod
    async def _respond(writer, status: int, obj=None,
                       content_type: str = "application/json") -> None:
        body = (dumps(obj) + "\n").encode() if obj is not None else b""
        head = (
            f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    @staticmethod
    async def _start_stream(writer, status: int = 200) -> None:
        head = (
            f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {NDJSON}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        await writer.drain()

    @staticmethod
    async def _stream_line(writer, obj) -> None:
        writer.write((dumps(obj) + "\n").encode())
        await writer.drain()

    # -- routing --------------------------------------------------------
    async def _route(self, reader, writer, method, path, query,
                     body) -> None:
        if not path.startswith(API_PREFIX + "/"):
            raise _HttpError(404, f"unknown path {path!r}")
        parts = path[len(API_PREFIX):].strip("/").split("/")

        if parts == ["healthz"] and method == "GET":
            await self._respond(writer, 200, {
                "ok": True,
                "shards": self.service.shards,
                "workers": self.service.pool.workers_connected,
                "version": _version(),
            })
            return
        if parts == ["stats"] and method == "GET":
            await self._respond(writer, 200, self.service.stats())
            return
        if parts == ["metrics"] and method == "GET":
            await self._respond(writer, 200, self.service.metrics())
            return
        if parts == ["workers"]:
            if method == "GET":
                await self._respond(writer, 200, {
                    "connected": self.service.pool.workers_connected,
                    "fleet": self.service.pool.fleet(),
                })
                return
            if method == "POST":
                await self._attach_worker(reader, writer, body)
                return
            raise _HttpError(405, f"{method} not allowed on /workers")
        if parts == ["sweep"] and method == "POST":
            await self._respond(writer, 200, self.service.store.sweep())
            return
        if parts == ["jobs"]:
            if method == "POST":
                await self._submit(writer, body)
                return
            if method == "GET":
                await self._list_jobs(writer, query)
                return
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if len(parts) >= 2 and parts[0] == "jobs":
            await self._job_routes(writer, method, parts[1:], query)
            return
        raise _HttpError(404, f"unknown path {path!r}")

    async def _attach_worker(self, reader, writer, body: bytes) -> None:
        """Token check, then hand the connection to the lease broker.

        This coroutine runs for the worker's whole attachment; when it
        returns, `_handle`'s cleanup closes the socket (already closed
        by the broker's detach in the normal case — harmless).
        """
        try:
            hello = json.loads(body.decode() or "{}")
        except ValueError:
            raise _HttpError(400, "worker hello is not valid JSON") from None
        expected = self.service.config.worker_token
        if expected and hello.get("token") != expected:
            raise _HttpError(403, "bad worker token")
        name = str(hello.get("name") or "worker")
        await self._start_stream(writer)
        await self.service.pool.serve_worker(name, reader, writer)

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError:
            raise _HttpError(400, "body is not valid JSON") from None
        try:
            job = self.service.submit_payload(payload)
        except QueueFullError as exc:
            raise _HttpError(429, str(exc)) from None
        except (KeyError, ValueError, TypeError) as exc:
            raise _HttpError(400, f"bad submission: {exc}") from None
        await self._respond(writer, 201, job.descriptor())

    async def _list_jobs(self, writer, query) -> None:
        jobs = self.service.manager.list_jobs(
            namespace=query.get("namespace") or None,
            state=query.get("state") or None,
        )
        await self._start_stream(writer)
        for job in jobs:
            await self._stream_line(writer, job.descriptor())

    async def _job_routes(self, writer, method, parts, query) -> None:
        job_id = parts[0]
        try:
            job = self.service.job(job_id)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}") from None

        if len(parts) == 1:
            if method == "GET":
                await self._respond(writer, 200, job.descriptor())
                return
            if method == "DELETE":
                await self._respond(
                    writer, 200, self.service.cancel(job_id).descriptor()
                )
                return
            raise _HttpError(405, f"{method} not allowed on a job")

        sub = parts[1]
        if sub == "events" and method == "GET":
            try:
                since = int(query.get("since", -1))
            except ValueError:
                raise _HttpError(400, "since must be an integer") from None
            await self._start_stream(writer)
            async for event in job.log.subscribe(since):
                await self._stream_line(writer, event)
            return
        if sub == "results" and method == "GET":
            await self._start_stream(writer)
            for row in self.service.result_rows(job_id):
                await self._stream_line(writer, row)
            return
        raise _HttpError(404, f"unknown job endpoint {sub!r}")


def _version() -> str:
    from .. import __version__

    return __version__


class ServerHandle:
    """A service + API running on a dedicated thread's event loop.

    Tests, benchmarks, and anything else synchronous drive the server
    through this handle: ``address`` for a client, :meth:`call` to run
    a function on the loop (e.g. ``handle.call(service.pause)``), and
    :meth:`stop` for an orderly shutdown.
    """

    def __init__(self) -> None:
        self.service: CampaignService | None = None
        self.api: ServeAPI | None = None
        self.address: str | None = None
        self.error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None

    def call(self, fn, *args):
        """Run ``fn(*args)`` on the server loop; returns its result."""
        import concurrent.futures

        fut: concurrent.futures.Future = concurrent.futures.Future()

        def runner():
            try:
                fut.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001
                fut.set_exception(exc)

        self._loop.call_soon_threadsafe(runner)
        return fut.result(timeout=30)

    def stop(self) -> None:
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def start_in_thread(
    config=None,
    telemetry=None,
    socket_path: str | None = None,
    host: str | None = None,
    port: int = 0,
) -> ServerHandle:
    """Start a full service + listener on a background thread.

    With ``socket_path`` the address is ``unix:<path>``; otherwise a TCP
    listener binds ``host`` (default loopback) on ``port`` (0 = pick a
    free one).  Raises whatever startup raised, so callers never poll.
    """
    handle = ServerHandle()

    async def _amain():
        service = CampaignService(config, telemetry=telemetry)
        api = ServeAPI(service)
        handle._stop = asyncio.Event()
        try:
            await service.start()
            if socket_path is not None:
                await api.listen_unix(socket_path)
                handle.address = f"unix:{socket_path}"
            else:
                name = await api.listen_tcp(host or "127.0.0.1", port)
                handle.address = f"{name[0]}:{name[1]}"
            handle.service = service
            handle.api = api
        except BaseException as exc:  # noqa: BLE001
            handle.error = exc
            await service.stop()
            handle._ready.set()
            return
        handle._ready.set()
        await handle._stop.wait()
        # Service first: stopping the pool detaches remote workers and
        # ends their long-lived handler connections, which api.close()
        # (3.12+: waits on open handlers) would otherwise block on.
        await service.stop()
        await api.close()
        # Reap any connection handlers still draining (e.g. a worker
        # attachment racing the shutdown) so loop.close() below never
        # destroys a pending task.
        pending = [t for t in asyncio.all_tasks()
                   if t is not asyncio.current_task()]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    def _thread_main():
        loop = asyncio.new_event_loop()
        handle._loop = loop
        try:
            loop.run_until_complete(_amain())
        finally:
            loop.close()

    thread = threading.Thread(
        target=_thread_main, name="repro-serve", daemon=True
    )
    handle._thread = thread
    thread.start()
    handle._ready.wait(timeout=60)
    if handle.error is not None:
        thread.join(timeout=10)
        raise handle.error
    if handle.address is None:
        raise RuntimeError("serve thread failed to start")
    return handle

"""Determinism regression tests: same spec, same bytes, same key.

The campaign cache's whole premise is that a RunSpec plus the model
source *is* the result.  That only holds if simulation is bit-for-bit
deterministic — any hidden global (an unseeded RNG, dict-order
dependence, wall-clock leakage into the payload) silently poisons every
cached campaign.  These tests re-run identical work and require
byte-identical output, and pin the benchmark corpus digest so pinned
performance baselines notice input drift too.
"""

import json

from repro.bench.corpus import corpus_digest
from repro.campaign.cache import cache_key
from repro.campaign.spec import RunSpec
from repro.core.framework import run_spec

SPEC = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200)

# SHA-256 of the default benchmark corpus.  If corpus generation ever
# changes, every recorded benchmark number measures different inputs:
# refresh benchmarks/baseline.json in the same PR (docs/BENCHMARKS.md).
CORPUS_DIGEST = (
    "6ff72708257f8f71426ac8f5ba95a7ee47c07250728a9b5473fdbafd72225188"
)


def _canonical_summary(spec: RunSpec) -> str:
    summary = run_spec(spec).to_dict()
    # `stats` carries orchestration metadata (wall time); everything
    # else is simulation output and must be reproducible.
    summary.pop("stats")
    return json.dumps(summary, sort_keys=True)


def test_identical_specs_produce_byte_identical_summaries():
    assert _canonical_summary(SPEC) == _canonical_summary(SPEC)


def test_summary_is_stable_across_policies():
    for policy in ("dbi", "milc", "mil"):
        spec = RunSpec(benchmark="MM", policy=policy,
                       accesses_per_core=150)
        assert _canonical_summary(spec) == _canonical_summary(spec)


def test_cache_key_is_stable():
    fingerprint = "f" * 16
    first = cache_key(SPEC, fingerprint)
    again = cache_key(SPEC, fingerprint)
    assert first == again
    # Reconstructing an equal spec must key identically: the key hangs
    # off canonical content, not object identity.
    clone = RunSpec(benchmark="GUPS", policy="mil", accesses_per_core=200)
    assert cache_key(clone, fingerprint) == first


def test_cache_key_changes_with_spec_and_fingerprint():
    fingerprint = "f" * 16
    base = cache_key(SPEC, fingerprint)
    other_spec = RunSpec(benchmark="GUPS", policy="mil",
                         accesses_per_core=201)
    assert cache_key(other_spec, fingerprint) != base
    assert cache_key(SPEC, "0" * 16) != base


def test_benchmark_corpus_is_pinned():
    assert corpus_digest(2048) == CORPUS_DIGEST


class TestAuditOutsideRunIdentity:
    """--audit observes a run; it must never change what the run *is*.

    The audit digest lands in ``stats`` (stripped by
    :func:`_canonical_summary`, exactly like telemetry's wall-clock
    entries), and the opt-in travels via environment variable rather
    than a RunSpec field — so summaries stay byte-identical and cache
    keys are untouched whether auditing is off, on via ``audit=``, or
    on via ``REPRO_AUDIT``.
    """

    def test_env_opt_in_leaves_summary_bytes_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        plain = _canonical_summary(SPEC)
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert _canonical_summary(SPEC) == plain

    def test_report_mode_leaves_summary_bytes_unchanged(self, monkeypatch):
        from repro.audit import AuditReport

        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        plain = _canonical_summary(SPEC)
        report = AuditReport()
        summary = run_spec(SPEC, audit=report).to_dict()
        assert summary.pop("stats")["audit"]["violations"] == 0
        assert report.clean and report.commands > 0
        assert json.dumps(summary, sort_keys=True) == plain

    def test_audit_cannot_enter_the_cache_key(self):
        # RunSpec has no audit field at all — the opt-in physically
        # cannot reach cache_key.  Pin that so a future "just add a
        # spec flag" refactor trips here first.
        assert "audit" not in RunSpec.__dataclass_fields__
        fingerprint = "f" * 16
        assert cache_key(SPEC, fingerprint) == cache_key(SPEC, fingerprint)

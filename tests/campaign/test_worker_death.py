"""A worker dying mid-lease must not strand its RunSpec.

``REPRO_CAMPAIGN_KILL_ONCE`` makes exactly one worker SIGKILL itself
mid-run.  In a process pool that poisons every in-flight future
(``BrokenExecutor``); the runner must release those specs back to the
queue, rebuild the pool, and finish the campaign with every result
present — the failure mode this guards against is the campaign hanging
or silently dropping the dead worker's spec.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, RunSpec, cache
from repro.campaign.runner import KILL_ONCE_ENV

SCALE = 80
FP = "test-fp"


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _specs(n: int) -> list:
    return [
        RunSpec(benchmark="GUPS", system="ddr4-server", policy="dbi",
                accesses_per_core=SCALE, seed=seed)
        for seed in range(n)
    ]


def test_sigkilled_worker_releases_spec(tmp_path, monkeypatch):
    monkeypatch.setenv(KILL_ONCE_ENV, str(tmp_path / "kill-sentinel"))
    specs = _specs(4)
    events = []
    runner = CampaignRunner(jobs=2, sink=events.append, fingerprint=FP)
    results = runner.run(specs)

    # Every spec completed despite one worker being SIGKILLed.
    assert set(results) == set(specs)
    assert runner.counters["executed"] == len(specs)
    assert runner.counters["failed"] == 0
    assert not runner.failures
    # The sentinel actually tripped, and the dead worker's specs were
    # requeued (visible as "retried" events naming the pool break).
    assert (tmp_path / "kill-sentinel").exists()
    assert runner.counters["retries"] >= 1
    assert any(e.kind == "retried" for e in events)
    # Results landed in the cache like any healthy campaign's would.
    for spec in specs:
        assert cache.load(spec, FP) is not None


def test_killed_campaign_matches_clean_campaign(tmp_path, monkeypatch):
    """Recovery changes scheduling, never results."""
    specs = _specs(3)
    clean_dir = tmp_path / "clean"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(clean_dir))
    clean = CampaignRunner(jobs=1, fingerprint=FP).run(specs)

    killed_dir = tmp_path / "killed"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(killed_dir))
    monkeypatch.setenv(KILL_ONCE_ENV, str(tmp_path / "sentinel2"))
    killed = CampaignRunner(jobs=2, fingerprint=FP).run(specs)

    for spec in specs:
        a, b = killed[spec].to_dict(), clean[spec].to_dict()
        a.pop("stats", None), b.pop("stats", None)  # wall-clock only
        assert a == b
    # Cache files are byte-identical modulo the timing block.
    for spec in specs:
        key = cache.cache_key(spec, FP)
        a = (clean_dir / f"{key}.json").read_text()
        b = (killed_dir / f"{key}.json").read_text()
        import json

        da, db = json.loads(a), json.loads(b)
        da.pop("meta"), db.pop("meta")
        assert da == db

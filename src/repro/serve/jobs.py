"""The job model and manager: everything about *what* to run, not *how*.

A **job** is one submitted campaign: an ordered list of
:class:`~repro.campaign.spec.RunSpec` plus a namespace, a priority, and
an event log.  The manager reduces jobs to **work units** — one per
distinct content-addressed cache key — and hands them out in priority
order (higher first, FIFO within a priority).  Because the unit of work
is the cache key, duplicate submissions coalesce for free: a key that
is already queued or leased just gains another waiting job, and a
single execution settles every waiter.

The manager is deliberately synchronous and process-free: it owns no
shards, sockets, or clocks beyond event timestamps, which is what makes
its scheduling behaviour unit-testable.  :class:`CampaignService` is
the async driver that pulls work from here and pushes results back.

Back-pressure is a bounded count of *outstanding* work units (queued
plus leased): a submission whose cache misses would exceed the bound is
rejected atomically with :class:`QueueFullError` — no partial enqueue,
so a rejected client can simply retry later.
"""

from __future__ import annotations

import heapq
import itertools

from ..campaign import cache
from ..campaign.spec import RunSpec
from .events import EventLog, make_event
from .protocol import spec_from_canonical

__all__ = ["Job", "JobManager", "JobState", "QueueFullError"]

DEFAULT_QUEUE_LIMIT = 4096


class QueueFullError(RuntimeError):
    """Submission rejected: the work queue is at its bound."""


class JobState:
    """Job lifecycle: queued -> running -> done | failed | cancelled."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


class Job:
    """One submitted campaign and its progress bookkeeping."""

    def __init__(
        self,
        job_id: str,
        namespace: str,
        specs: list,
        keys: list,
        priority: int = 0,
        label: str | None = None,
    ) -> None:
        self.id = job_id
        self.namespace = namespace
        self.specs = specs  # submission order, deduplicated
        self.keys = keys  # parallel to specs
        self.priority = priority
        self.label = label or (specs[0].slug if specs else job_id)
        self.state = JobState.QUEUED
        self.error: str | None = None
        self.log = EventLog()
        # Set by the manager when a journal is bound: called with
        # (job, event) after every append so events persist in order.
        self.on_event = None
        # Per-key outcome: "pending" | "done" | "failed".
        self.key_state = {key: "pending" for key in keys}
        self.counters = {
            "cache_hits": 0, "executed": 0, "coalesced": 0,
            "retries": 0, "failed": 0,
        }

    @property
    def total(self) -> int:
        return len(self.keys)

    @property
    def done(self) -> int:
        return sum(1 for s in self.key_state.values() if s != "pending")

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    def emit(self, scope: str, kind: str, **fields) -> dict:
        event = self.log.append(make_event(scope, kind, self.id, **fields))
        if self.on_event is not None:
            self.on_event(self, event)
        return event

    def descriptor(self) -> dict:
        """The wire representation (`GET /v1/jobs/<id>`)."""
        return {
            "id": self.id,
            "namespace": self.namespace,
            "label": self.label,
            "priority": self.priority,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "error": self.error,
            "counters": dict(self.counters),
            "events": len(self.log),
        }


class JobManager:
    """Submit/status/cancel/list plus priority + FIFO work scheduling."""

    def __init__(
        self,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        fingerprint: str | None = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self.queue_limit = queue_limit
        self.fingerprint = fingerprint
        self.jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._fifo = itertools.count()  # tie-break: submission order
        # Work units: heap of (-priority, fifo, key).  A key may appear
        # more than once (a later, hotter submission bumps it); stale
        # entries are skipped at pop time.
        self._heap: list[tuple[int, int, str]] = []
        self._queued: set[str] = set()  # keys in heap, not yet leased
        self._leased: set[str] = set()
        self._spec_by_key: dict[str, RunSpec] = {}
        # Best priority currently pushed for each queued key: a later,
        # hotter submission only re-pushes when it actually beats this.
        self._pushed: dict[str, int] = {}
        # Jobs still waiting on a key (queued or leased).
        self._waiters: dict[str, list[Job]] = {}
        # Called with the key whenever a unit is dropped without a
        # terminal outcome (all waiters cancelled) — the service uses
        # it to clear per-key retry bookkeeping.
        self.on_drop = None
        self._journal = None
        self.counters = {
            "submitted": 0, "finished": 0, "failed": 0, "cancelled": 0,
            "rejected": 0, "cache_hits": 0, "coalesced": 0,
        }

    # -- depth gauges ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Distinct keys waiting for a shard (back-pressure numerator)."""
        return len(self._queued)

    @property
    def inflight(self) -> int:
        return len(self._leased)

    @property
    def outstanding(self) -> int:
        return len(self._queued) + len(self._leased)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        specs,
        namespace: str = "default",
        priority: int = 0,
        label: str | None = None,
        cache_probe=None,
    ) -> Job:
        """Register a campaign; returns the :class:`Job`.

        ``cache_probe(spec)`` is the cache-scan hook (defaults to the
        campaign cache): a non-``None`` return settles that spec as an
        immediate hit.  Raises :class:`QueueFullError` — atomically,
        before any state changes — when the submission's cache misses
        would push outstanding work past ``queue_limit``.
        """
        ordered = list(dict.fromkeys(specs))
        if not ordered:
            raise ValueError("a job needs at least one RunSpec")
        if cache_probe is None:
            cache_probe = lambda spec: cache.load(spec, self.fingerprint)
        keys = [cache.cache_key(s, self.fingerprint) for s in ordered]

        hits: list[bool] = []
        fresh = 0
        for spec, key in zip(ordered, keys):
            hit = cache_probe(spec) is not None
            hits.append(hit)
            if not hit and key not in self._waiters:
                fresh += 1
        if self.outstanding + fresh > self.queue_limit:
            self.counters["rejected"] += 1
            raise QueueFullError(
                f"queue limit {self.queue_limit} reached "
                f"({self.outstanding} outstanding, {fresh} new)"
            )

        job = Job(
            f"j{next(self._ids)}", namespace, ordered, keys,
            priority=priority, label=label,
        )
        self.jobs[job.id] = job
        if self._journal is not None:
            # Descriptor first, then events: replay relies on the order.
            self._journal.append({
                "op": "job", "id": job.id, "namespace": namespace,
                "priority": priority, "label": job.label,
                "specs": [s.canonical() for s in ordered], "keys": keys,
            })
            job.on_event = self._journal_event
        self.counters["submitted"] += 1
        job.emit("job", "queued", total=job.total, priority=priority,
                 namespace=namespace)
        for spec, key, hit in zip(ordered, keys, hits):
            if hit:
                job.key_state[key] = "done"
                job.counters["cache_hits"] += 1
                self.counters["cache_hits"] += 1
                job.emit("run", "cache-hit", key=key, slug=spec.slug,
                         total=job.total, done=job.done)
                continue
            waiters = self._waiters.get(key)
            if waiters is not None:
                # Coalesce onto the in-flight or queued execution.
                waiters.append(job)
                job.counters["coalesced"] += 1
                self.counters["coalesced"] += 1
                job.emit("run", "coalesced", key=key, slug=spec.slug,
                         total=job.total, leased=key in self._leased)
                best = self._pushed.get(key)
                if key in self._queued and best is not None \
                        and priority > best:
                    self._push(key, priority)
                continue
            self._waiters[key] = [job]
            self._spec_by_key[key] = spec
            self._push(key, priority)
            job.emit("run", "queued", key=key, slug=spec.slug,
                     total=job.total)
        self._settle(job)
        return job

    # -- scheduling -----------------------------------------------------
    def _push(self, key: str, priority: int) -> None:
        """Enqueue ``key`` at ``priority`` and remember the best push."""
        self._queued.add(key)
        self._pushed[key] = priority
        heapq.heappush(self._heap, (-priority, next(self._fifo), key))

    def _drop(self, key: str) -> None:
        """Forget a unit nobody waits on — no terminal state to record.

        This is the counterpart of the cancel/release interleaving: a
        key whose last live waiter is gone must leave *every* index
        (waiters, spec, queue, pushed-priority), or a later submission
        of the same spec would coalesce onto an execution that no
        longer exists and hang forever.
        """
        self._waiters.pop(key, None)
        self._spec_by_key.pop(key, None)
        self._queued.discard(key)
        self._pushed.pop(key, None)
        if self.on_drop is not None:
            self.on_drop(key)

    def next_work(self) -> tuple[str, RunSpec] | None:
        """Pop the highest-priority pending key, or ``None``.

        The popped key moves to the *leased* set; the caller must end
        the lease with :meth:`complete`, :meth:`fail`, or
        :meth:`release`.
        """
        while self._heap:
            _, _, key = heapq.heappop(self._heap)
            if key not in self._queued:
                continue  # stale duplicate, cancelled, or already leased
            self._queued.discard(key)
            self._pushed.pop(key, None)
            self._leased.add(key)
            for job in self._waiters.get(key, ()):
                if job.state == JobState.QUEUED:
                    job.state = JobState.RUNNING
                job.emit("run", "started", key=key,
                         slug=self._spec_by_key[key].slug, total=job.total)
            return key, self._spec_by_key[key]
        return None

    def release(self, key: str, error: str | None = None,
                requeue: bool = True) -> str:
        """Return a leased key to the queue (worker death / retry).

        Returns what happened: ``"requeued"``, ``"failed"`` (gave up),
        ``"dropped"`` (every waiter was cancelled while the lease was
        out, so the unit is forgotten), or ``"idle"`` (not leased).
        """
        if key not in self._leased:
            return "idle"
        self._leased.discard(key)
        waiters = [j for j in self._waiters.get(key, ())
                   if j.state != JobState.CANCELLED]
        if not waiters:
            self._drop(key)
            return "dropped"
        for job in waiters:
            job.counters["retries"] += 1
            job.emit("run", "retried", key=key, error=error)
        if requeue:
            self._push(key, max(j.priority for j in waiters))
            return "requeued"
        self.fail(key, error or "gave up")
        return "failed"

    def complete(self, key: str, wall_s: float | None = None,
                 executed: bool = True) -> list[Job]:
        """Settle ``key`` as done for every waiting job."""
        return self._close_key(
            key, "done", "finished", wall_s=wall_s, executed=executed,
        )

    def fail(self, key: str, error: str) -> list[Job]:
        """Settle ``key`` as failed for every waiting job."""
        return self._close_key(key, "failed", "failed", error=error)

    def _close_key(self, key, state, kind, wall_s=None, error=None,
                   executed=False) -> list[Job]:
        self._leased.discard(key)
        self._queued.discard(key)
        self._pushed.pop(key, None)
        spec = self._spec_by_key.pop(key, None)
        slug = spec.slug if spec is not None else None
        touched = []
        for job in self._waiters.pop(key, ()):
            if job.finished:
                continue
            job.key_state[key] = state
            if state == "failed":
                job.counters["failed"] += 1
            elif executed:
                job.counters["executed"] += 1
            job.emit("run", kind, key=key, slug=slug, total=job.total,
                     done=job.done, wall_s=wall_s, error=error,
                     executed=executed or None)
            self._settle(job)
            touched.append(job)
        return touched

    def _settle(self, job: Job) -> None:
        """Finalize ``job`` once every key has an outcome."""
        if job.finished or job.done < job.total:
            return
        failed = [k for k, s in job.key_state.items() if s == "failed"]
        if failed:
            job.state = JobState.FAILED
            job.error = f"{len(failed)} of {job.total} run(s) failed"
            self.counters["failed"] += 1
        else:
            job.state = JobState.DONE
            self.counters["finished"] += 1
        job.emit("job", job.state, total=job.total, done=job.done,
                 error=job.error, counters=dict(job.counters))
        job.log.close()

    # -- durability -----------------------------------------------------
    def bind_journal(self, journal) -> None:
        """Persist every future submission and event to ``journal``."""
        self._journal = journal
        for job in self.jobs.values():
            job.on_event = self._journal_event

    def _journal_event(self, job: Job, event: dict) -> None:
        self._journal.append({"op": "event", "job": job.id, "event": event})

    def restore(self, records, cache_probe=None) -> dict:
        """Rebuild state from journal ``records`` (fresh manager only).

        Replay is a fold: ``job`` records recreate descriptors with
        their original ids, ``event`` records re-append each job's
        event log verbatim (``seq``/``ts`` included), and per-key
        outcomes plus counters are re-derived from the events.  Every
        key still pending afterwards — queued *or* leased at the crash
        — is probed against the cache (a result that landed before the
        crash settles without re-executing) and otherwise re-queued at
        its waiters' best priority.  Returns a small report dict.
        """
        if self.jobs:
            raise RuntimeError("restore() requires a fresh JobManager")
        if cache_probe is None:
            cache_probe = lambda spec: cache.load(spec, self.fingerprint)

        max_id = 0
        for record in records:
            op = record.get("op")
            if op == "job":
                try:
                    specs = [spec_from_canonical(e)
                             for e in record["specs"]]
                    job = Job(
                        str(record["id"]),
                        str(record.get("namespace", "default")),
                        specs, [str(k) for k in record["keys"]],
                        priority=int(record.get("priority", 0)),
                        label=record.get("label"),
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # torn or incompatible record
                self.jobs[job.id] = job
                digits = job.id[1:]
                if digits.isdigit():
                    max_id = max(max_id, int(digits))
            elif op == "event":
                job = self.jobs.get(record.get("job"))
                event = record.get("event")
                if job is None or not isinstance(event, dict):
                    continue
                # Verbatim re-append (not .append(): seq is already
                # stamped and must survive for ?since= resumption).
                job.log._events.append(event)

        self._ids = itertools.count(max_id + 1)
        for job in self.jobs.values():
            self._replay_events(job)

        self.counters["submitted"] = len(self.jobs)
        for job in self.jobs.values():
            self.counters["cache_hits"] += job.counters["cache_hits"]
            self.counters["coalesced"] += job.counters["coalesced"]
            if job.state == JobState.DONE:
                self.counters["finished"] += 1
            elif job.state == JobState.FAILED:
                self.counters["failed"] += 1
            elif job.state == JobState.CANCELLED:
                self.counters["cancelled"] += 1

        # From here on the journal records new history again (resume
        # events below included); the replayed prefix is already there.
        if self._journal is not None:
            for job in self.jobs.values():
                job.on_event = self._journal_event

        # Re-queue the unfinished work.  Keys leased at crash time have
        # no outcome event, so they land back in the queue exactly like
        # a released lease.
        for job in self.jobs.values():
            if job.finished:
                continue
            for spec, key in zip(job.specs, job.keys):
                if job.key_state.get(key) != "pending":
                    continue
                if key not in self._waiters:
                    self._waiters[key] = []
                    self._spec_by_key[key] = spec
                if job not in self._waiters[key]:
                    self._waiters[key].append(job)
        requeued = settled = 0
        for key, waiters in list(self._waiters.items()):
            if cache_probe(self._spec_by_key[key]) is not None:
                # The result file beat the crash: settle, don't re-run.
                self.complete(key, executed=False)
                settled += 1
            else:
                self._push(key, max(j.priority for j in waiters))
                requeued += 1
        return {
            "jobs": len(self.jobs),
            "requeued": requeued,
            "settled": settled,
        }

    def _replay_events(self, job: Job) -> None:
        """Re-derive key states, counters, and lifecycle from the log."""
        for event in job.log._events:
            scope, kind = event.get("scope"), event.get("kind")
            if scope == "run":
                key = event.get("key")
                if kind == "cache-hit" and key in job.key_state:
                    job.key_state[key] = "done"
                    job.counters["cache_hits"] += 1
                elif kind == "finished" and key in job.key_state:
                    job.key_state[key] = "done"
                    if event.get("executed"):
                        job.counters["executed"] += 1
                elif kind == "failed" and key in job.key_state:
                    job.key_state[key] = "failed"
                    job.counters["failed"] += 1
                elif kind == "coalesced":
                    job.counters["coalesced"] += 1
                elif kind == "retried":
                    job.counters["retries"] += 1
                elif kind == "started" and job.state == JobState.QUEUED:
                    job.state = JobState.RUNNING
            elif scope == "job" and kind in JobState.TERMINAL:
                job.state = kind
                job.error = event.get("error")
        if job.finished and not job.log.closed:
            job.log.close()

    # -- queries and cancellation --------------------------------------
    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list_jobs(self, namespace: str | None = None,
                  state: str | None = None) -> list[Job]:
        out = []
        for job in self.jobs.values():
            if namespace is not None and job.namespace != namespace:
                continue
            if state is not None and job.state != state:
                continue
            out.append(job)
        return out

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; queued-only keys are dropped, leases drain.

        A key whose only waiters are cancelled jobs leaves the queue
        (lazily — its heap entries are skipped).  A key some *other*
        live job still waits on keeps executing; the cancelled job just
        stops listening.  An already-terminal job is returned as-is.
        """
        job = self.job(job_id)
        if job.finished:
            return job
        job.state = JobState.CANCELLED
        self.counters["cancelled"] += 1
        for key, state in job.key_state.items():
            if state != "pending":
                continue
            waiters = self._waiters.get(key)
            if waiters is None:
                continue
            if job in waiters:
                waiters.remove(job)
            if not waiters and key not in self._leased:
                # Nobody wants it and nothing runs it: drop the unit.
                # (A *leased* key keeps its empty waiter list until the
                # lease ends; release() then drops it the same way.)
                self._drop(key)
        job.emit("job", JobState.CANCELLED, total=job.total, done=job.done)
        job.log.close()
        return job

#!/usr/bin/env python
"""Register a brand-new coding scheme and policy — in one file.

The registry makes a codec a self-contained plugin: this script defines
an (8, 14) 3-limited-weight code the paper never evaluates — a design
point *between* the Section 7.5.3 ``lwc12`` (BL12) and the full (8, 17)
3-LWC (BL16) — registers it as the ``lwc14`` scheme plus a
``mil-lwc14`` policy that uses it as MiL's opportunistic long code, and
then drives the stock CLI end-to-end.  No file inside ``src/repro`` is
touched: burst formats, zero tables, ``MiLConfig`` validation, energy
accounting, and ``--policy`` choices all pick the new entries up from
the registries.

Usage::

    python examples/custom_codec.py [--fast]

See docs/EXTENDING.md for the recipe this script demonstrates.
"""

import sys

import numpy as np

from repro.cli import main as repro_main
from repro.coding import (
    KLimitedWeightCode,
    codec_for,
    register_backend,
    register_codec,
)
from repro.coding.reference import ReferenceKLWC
from repro.core import MiLPolicy, PolicyContext, register_policy

# ----------------------------------------------------------------------
# 1. The codec.  An (8, 14) 3-LWC: C(14,0..3) = 470 >= 256 codewords of
#    weight <= 3, so every byte fits with at most three 0s on the bus.
#    Fourteen beats over the 64 data pins -> burst length 14, occupying
#    the slot the Figure 20 sweep probes with the codec-less ``bl14``.
#    The factory passed to register_codec becomes the scheme's default
#    backend (impl="numpy").
# ----------------------------------------------------------------------
register_codec(
    "lwc14", burst_length=14, extra_latency=1, layout="line", pins=64,
    description="(8, 14) 3-LWC between lwc12 (BL12) and 3lwc (BL16)",
)(lambda: KLimitedWeightCode(8, 14, 3))

# A second backend in the scheme's slot: the pure-Python oracle, built
# from the same generic reference code the built-in lwc12 uses.  Now
# ``REPRO_CODEC_IMPL=reference`` (or ``repro --codec-impl reference``)
# covers lwc14 too — backends must be bit-identical, so results never
# depend on which one runs.
register_backend("lwc14", "reference")(lambda: ReferenceKLWC(8, 14, 3))


def _check_backends_agree() -> None:
    """The equivalence contract, in miniature (the full sweep lives in
    tests/coding/test_backend_equivalence.py)."""
    rng = np.random.default_rng(14)
    lines = rng.integers(0, 256, size=(8, 64), dtype=np.uint8)
    fast = codec_for("lwc14", impl="numpy")
    oracle = codec_for("lwc14", impl="reference")
    assert type(fast) is not type(oracle)
    assert np.array_equal(fast.encode_lines(lines), oracle.encode_lines(lines))
    assert np.array_equal(fast.line_zeros(lines), oracle.line_zeros(lines))


# ----------------------------------------------------------------------
# 2. The policy.  Same opportunistic framework, new long code: MiLC when
#    the rdyX window is busy, the (8, 14) code when it is clear.
# ----------------------------------------------------------------------
@register_policy(
    "mil-lwc14", schemes=("milc", "lwc14"), mil_family=True,
    description="mil with the (8, 14) 3-LWC as its long code",
)
def _build_mil_lwc14(ctx: PolicyContext):
    config = ctx.mil_config(lookahead=ctx.lookahead, long_scheme="lwc14")
    return lambda: MiLPolicy(config, ctx.zeros_by_scheme)


def main() -> int:
    _check_backends_agree()
    scale = "800" if "--fast" in sys.argv else "2500"
    # The stock CLI, unmodified: --policy now accepts mil-lwc14 because
    # the parser reads its choices from the policy registry, and the run
    # resolves every codec — including lwc14 — through the backend slot.
    return repro_main([
        "run", "CG", "--policy", "mil-lwc14", "--scale", scale,
        "--baseline",
    ])


if __name__ == "__main__":
    sys.exit(main())

"""Schema-versioned JSONL result rows for scenario time series.

One row per executed :class:`~repro.campaign.spec.RunSpec`, schema
``repro.scenario/v1``.  Everything outside the ``timing`` object is a
pure function of (scenario definition, spec, model source), so running
the same scenario twice on the same tree produces byte-identical rows
modulo ``timing`` — the property CI's twice-run cache assertion and any
longitudinal dashboard lean on.  ``timing`` carries the wall-clock
facts (timestamp, per-run seconds, cache hit) that *should* drift.

Row layout (keys always serialised sorted)::

    {
      "schema": "repro.scenario/v1",
      "scenario": "SYN-ZERO-SWEEP",
      "scenario_digest": "…",           # sha256 of the canonical doc
      "git_rev": "…",                   # HEAD at run time, or "unknown"
      "fingerprint": "…",               # model-source fingerprint
      "cache_key": "…",                 # content-addressed result key
      "spec": { …RunSpec.canonical()… },
      "summary": { cycles, seconds, bus_utilization, … },
      "timing": {"ts": …, "wall_s": …, "cache_hit": …}
    }
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

from ..campaign import cache
from .schema import Scenario, scenario_digest

__all__ = ["RESULT_SCHEMA", "git_rev", "result_row", "render_rows",
           "write_rows"]

RESULT_SCHEMA = "repro.scenario/v1"

# Summary fields copied into the row verbatim; scalars the time series
# can chart directly.
_SUMMARY_FIELDS = (
    "benchmark", "system", "policy", "lookahead", "cycles", "seconds",
    "bus_utilization", "mean_read_latency", "demand_reads",
    "total_zeros", "raw_zeros", "scheme_counts", "write_optimized",
    "trace_records",
)


def git_rev() -> str:
    """Short HEAD revision of the working tree, or ``"unknown"``."""
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def result_row(
    scenario: Scenario,
    spec,
    summary,
    fingerprint: str | None = None,
    rev: str | None = None,
    ts: float | None = None,
) -> dict:
    """Build one ``repro.scenario/v1`` row for an executed spec."""
    body = {name: getattr(summary, name) for name in _SUMMARY_FIELDS}
    # Summed in sorted category order: float addition is order-sensitive
    # and the cache round-trips dicts with sorted keys, so a cold run
    # and a cache hit must add the same numbers in the same sequence.
    body["dram_energy_j"] = sum(
        summary.dram_energy[k] for k in sorted(summary.dram_energy)
    )
    body["system_energy_j"] = summary.system_total_j
    stats = getattr(summary, "stats", {}) or {}
    return {
        "schema": RESULT_SCHEMA,
        "scenario": scenario.name,
        "scenario_digest": scenario_digest(scenario),
        "git_rev": git_rev() if rev is None else rev,
        "fingerprint": (
            cache.model_fingerprint() if fingerprint is None else fingerprint
        ),
        "cache_key": cache.cache_key(spec, fingerprint),
        "spec": spec.canonical(),
        "summary": body,
        "timing": {
            "ts": time.time() if ts is None else ts,
            "wall_s": stats.get("wall_s"),
            "cache_hit": stats.get("cache_hit"),
        },
    }


def render_rows(rows) -> str:
    """Serialise rows as JSON lines (sorted keys, newline-terminated)."""
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def write_rows(path, rows) -> Path:
    """Write rows to ``path`` as JSONL, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_rows(rows))
    return path

"""One module per table/figure of the paper's evaluation.

Each module exposes ``run_experiment(accesses_per_core=...)`` returning
an :class:`~repro.experiments.base.ExperimentResult`; running a module
as a script prints the reproduced rows next to the paper's claim.
``ALL_EXPERIMENTS`` maps experiment ids to those callables so the
benchmark harness and EXPERIMENTS.md generation can iterate them.

Simulation-backed modules additionally expose
``plan(accesses_per_core=...)`` returning the list of
:class:`~repro.campaign.RunSpec` values the figure consumes;
``EXPERIMENT_PLANS`` collects those so ``repro campaign`` can union an
entire figure set into one parallel, cache-warming campaign before the
tabulation step runs against pure cache hits.
"""

from . import (
    ext_design_space,
    ext_lpddr3_sensitivity,
    validation,
    ext_intermediate_code,
    ext_powerdown,
    ext_x4_width,
    fig01_power_breakdown,
    fig02_always_lwc,
    fig04_idle_gaps,
    fig05_pending,
    fig06_slack,
    fig07_optimal_lwc,
    fig16_performance,
    fig17_zeroes,
    fig18_energy_breakdown,
    fig19_system_energy,
    fig20_burst_length,
    fig21_lookahead,
    fig22_scheme_mix,
    table4_codec_cost,
)
from .base import ExperimentResult
from .runner import (
    EXPERIMENT_ACCESSES_PER_CORE,
    cache_dir,
    cached_run,
    gather,
)

_MODULES = {
    "fig01": fig01_power_breakdown,
    "fig02": fig02_always_lwc,
    "fig04": fig04_idle_gaps,
    "fig05": fig05_pending,
    "fig06": fig06_slack,
    "fig07": fig07_optimal_lwc,
    "table4": table4_codec_cost,
    "fig16": fig16_performance,
    "fig17": fig17_zeroes,
    "fig18": fig18_energy_breakdown,
    "fig19": fig19_system_energy,
    "fig20": fig20_burst_length,
    "fig21": fig21_lookahead,
    "fig22": fig22_scheme_mix,
    # Extension studies (paper Sections 4.1, 7.3, and 7.5.2 directions).
    "ext_x4": ext_x4_width,
    "ext_powerdown": ext_powerdown,
    "ext_design_space": ext_design_space,
    "ext_intermediate": ext_intermediate_code,
    "validation": validation,
    "ext_lpddr3": ext_lpddr3_sensitivity,
}

ALL_EXPERIMENTS = {
    name: module.run_experiment for name, module in _MODULES.items()
}

# Experiment id -> plan(accesses_per_core=...) -> list[RunSpec], for the
# modules whose figures are assembled from cached campaign runs (the
# analytic and internals-inspecting ones have no plan).
EXPERIMENT_PLANS = {
    name: module.plan
    for name, module in _MODULES.items()
    if hasattr(module, "plan")
}

__all__ = [
    "ALL_EXPERIMENTS",
    "EXPERIMENT_PLANS",
    "ExperimentResult",
    "EXPERIMENT_ACCESSES_PER_CORE",
    "cache_dir",
    "cached_run",
    "gather",
]

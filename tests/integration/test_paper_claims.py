"""Integration tests: the paper's headline claims, in miniature.

These run small but complete simulations (trace -> caches -> DRAM ->
energy) and assert the *direction and rough magnitude* of every headline
result.  They are the repository's regression net: if a model change
breaks the reproduction, these fail before the benchmark harness does.
"""

import numpy as np
import pytest

from repro.core import run
from repro.dram import BusAuditor
from repro.system import NIAGARA_SERVER, SNAPDRAGON_MOBILE, simulate
from repro.workloads import build_trace

SCALE = 2000

BENCHES = ("GUPS", "CG", "MM", "SWIM")


@pytest.fixture(scope="module")
def runs():
    out = {}
    for bench in BENCHES:
        for policy in ("dbi", "milc", "mil"):
            out[(bench, policy)] = run(
                bench, NIAGARA_SERVER, policy, accesses_per_core=SCALE
            )
    return out


class TestHeadlineClaims:
    def test_mil_cuts_io_energy_substantially(self, runs):
        ratios = [
            runs[(b, "mil")].dram_energy["io"]
            / runs[(b, "dbi")].dram_energy["io"]
            for b in BENCHES
        ]
        assert np.mean(ratios) < 0.75  # paper: -49%; shape: deep cut

    def test_mil_cuts_dram_energy(self, runs):
        for b in BENCHES:
            assert (
                runs[(b, "mil")].dram_total_j
                < runs[(b, "dbi")].dram_total_j
            )

    def test_mil_performance_cost_is_small(self, runs):
        ratios = [
            runs[(b, "mil")].cycles / runs[(b, "dbi")].cycles
            for b in BENCHES
        ]
        assert np.mean(ratios) < 1.05
        assert max(ratios) < 1.12

    def test_mil_beats_milc_only_on_zeros(self, runs):
        total_mil = sum(runs[(b, "mil")].total_zeros for b in BENCHES)
        total_milc = sum(runs[(b, "milc")].total_zeros for b in BENCHES)
        assert total_mil <= total_milc

    def test_decision_logic_never_extends_over_ready_commands(self, runs):
        # The behavioural consequence: MiL's slowdown stays close to
        # MiLC-only's even though it sometimes doubles burst length.
        for b in BENCHES:
            mil = runs[(b, "mil")].cycles
            milc = runs[(b, "milc")].cycles
            assert mil <= milc * 1.05


class TestMobileSystem:
    def test_lpddr3_savings_deeper_than_ddr4(self):
        bench = "SWIM"
        ddr4 = {
            p: run(bench, NIAGARA_SERVER, p, accesses_per_core=SCALE)
            for p in ("dbi", "mil")
        }
        lp = {
            p: run(bench, SNAPDRAGON_MOBILE, p, accesses_per_core=SCALE)
            for p in ("dbi", "mil")
        }
        ddr4_saving = 1 - ddr4["mil"].dram_total_j / ddr4["dbi"].dram_total_j
        lp_saving = 1 - lp["mil"].dram_total_j / lp["dbi"].dram_total_j
        # Paper: 8% vs 17% — LPDDR3's IO-dominated budget saves more.
        assert lp_saving > ddr4_saving


class TestSimulationIntegrity:
    @pytest.mark.parametrize("policy", ["dbi", "mil", "3lwc"])
    def test_bus_protocol_never_violated(self, policy):
        from repro.core.framework import make_policy_factory
        from repro.coding import precompute_line_zeros

        trace = build_trace("CG", NIAGARA_SERVER, accesses_per_core=SCALE)
        zeros = precompute_line_zeros(
            trace.line_data, ("dbi", "milc", "3lwc")
        )
        result = simulate(
            trace, NIAGARA_SERVER, make_policy_factory(policy, zeros)
        )
        for mc in result.controllers:
            problems = BusAuditor(mc.timing).check(mc.channel.transactions)
            assert problems == [], problems[:3]

    def test_refresh_served_during_long_runs(self, runs):
        result = runs[("GUPS", "dbi")]
        # GUPS runs long enough to cross tREFI several times; the cached
        # RunSummary doesn't carry refresh counts, so re-check quickly.
        trace = build_trace("GUPS", NIAGARA_SERVER, accesses_per_core=SCALE)
        sim = simulate(trace, NIAGARA_SERVER)
        if sim.cycles > 2 * NIAGARA_SERVER.timing.REFI:
            refreshes = sum(
                mc.channel.refresh_count for mc in sim.controllers
            )
            assert refreshes > 0
        assert result.cycles > 0

    def test_zeros_accounting_consistent(self, runs):
        # Transferred zeros can never exceed uncoded zeros... for DBI
        # they are strictly fewer than raw when data has dense-0 bytes.
        s = runs[("GUPS", "dbi")]
        assert 0 < s.total_zeros <= s.raw_zeros

"""Per-rank refresh scheduling.

Every rank must receive a REFRESH on average once per tREFI.  The
controller may defer a few intervals (JEDEC allows up to 8 postponed
refreshes); this model keeps a per-rank debt counter so deferrals are
eventually repaid.  Refresh matters to MiL indirectly: it inflates the
idle-gap distribution of Figure 4 and contributes the refresh slice of
the Figure 18 energy breakdown.
"""

from __future__ import annotations

from .timing import TimingParams

__all__ = ["RefreshScheduler"]

MAX_POSTPONED = 8


class RefreshScheduler:
    """Tracks refresh obligations for every rank on a channel."""

    def __init__(self, timing: TimingParams, ranks: int):
        self.timing = timing
        self.ranks = ranks
        # Next cycle each rank accrues one refresh obligation.
        self._next_due = [timing.REFI] * ranks
        self._debt = [0] * ranks
        self._min_due = timing.REFI  # cheap gate for the hot path

    def accrue(self, now: int) -> None:
        """Convert elapsed time into refresh debt.

        Debt is clamped to :data:`MAX_POSTPONED`: the JEDEC budget is 8
        postponed refreshes, and a long event-skip over an empty queue
        must not batch-accrue an unbounded backlog that the controller
        then burns down in one urgent refresh storm.  Intervals beyond
        the budget are forgiven — a rank idle that long is the regime
        real systems cover with self-refresh, and what matters to the
        model is that refresh *spacing* stays honest once traffic
        resumes.
        """
        if now < self._min_due:
            return
        refi = self.timing.REFI
        for rank in range(self.ranks):
            if self._next_due[rank] > now:
                continue
            missed = (now - self._next_due[rank]) // refi + 1
            self._debt[rank] = min(MAX_POSTPONED, self._debt[rank] + missed)
            self._next_due[rank] += missed * refi
        self._min_due = min(self._next_due)

    def debt(self, rank: int) -> int:
        """Outstanding refresh obligations for ``rank``."""
        return self._debt[rank]

    def urgent(self, rank: int) -> bool:
        """True when the rank has exhausted its postponement budget."""
        return self._debt[rank] >= MAX_POSTPONED

    def any_urgent(self) -> bool:
        """True when some rank must refresh before anything else."""
        return max(self._debt) >= MAX_POSTPONED

    def any_debt(self) -> bool:
        """True when at least one refresh is owed somewhere."""
        return any(self._debt)

    def pending_ranks(self) -> list[int]:
        """Ranks with at least one refresh owed, most indebted first."""
        owed = [r for r in range(self.ranks) if self._debt[r] > 0]
        return sorted(owed, key=lambda r: -self._debt[r])

    def paid(self, rank: int) -> None:
        """Record that one refresh was issued to ``rank``."""
        if self._debt[rank] <= 0:
            raise ValueError(f"rank {rank} has no refresh debt to pay")
        self._debt[rank] -= 1

    def next_event(self) -> int:
        """Cycle at which the next obligation accrues (for event skipping).

        Pure query — no accrual happens here.  Only
        :meth:`ChannelController.sync` (called from ``step``) turns
        elapsed time into debt, which is what lets the controller's own
        ``next_event`` stay side-effect free.  If intervals have already
        elapsed, the returned cycle is simply in the past and the
        caller's ``now + 1`` floor wakes it immediately, so no refresh
        is ever missed (the purity contract in DESIGN.md, "Event
        core").
        """
        return min(self._next_due)

"""The job model and manager: everything about *what* to run, not *how*.

A **job** is one submitted campaign: an ordered list of
:class:`~repro.campaign.spec.RunSpec` plus a namespace, a priority, and
an event log.  The manager reduces jobs to **work units** — one per
distinct content-addressed cache key — and hands them out in priority
order (higher first, FIFO within a priority).  Because the unit of work
is the cache key, duplicate submissions coalesce for free: a key that
is already queued or leased just gains another waiting job, and a
single execution settles every waiter.

The manager is deliberately synchronous and process-free: it owns no
shards, sockets, or clocks beyond event timestamps, which is what makes
its scheduling behaviour unit-testable.  :class:`CampaignService` is
the async driver that pulls work from here and pushes results back.

Back-pressure is a bounded count of *outstanding* work units (queued
plus leased): a submission whose cache misses would exceed the bound is
rejected atomically with :class:`QueueFullError` — no partial enqueue,
so a rejected client can simply retry later.
"""

from __future__ import annotations

import heapq
import itertools

from ..campaign import cache
from ..campaign.spec import RunSpec
from .events import EventLog, make_event

__all__ = ["Job", "JobManager", "JobState", "QueueFullError"]

DEFAULT_QUEUE_LIMIT = 4096


class QueueFullError(RuntimeError):
    """Submission rejected: the work queue is at its bound."""


class JobState:
    """Job lifecycle: queued -> running -> done | failed | cancelled."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


class Job:
    """One submitted campaign and its progress bookkeeping."""

    def __init__(
        self,
        job_id: str,
        namespace: str,
        specs: list,
        keys: list,
        priority: int = 0,
        label: str | None = None,
    ) -> None:
        self.id = job_id
        self.namespace = namespace
        self.specs = specs  # submission order, deduplicated
        self.keys = keys  # parallel to specs
        self.priority = priority
        self.label = label or (specs[0].slug if specs else job_id)
        self.state = JobState.QUEUED
        self.error: str | None = None
        self.log = EventLog()
        # Per-key outcome: "pending" | "done" | "failed".
        self.key_state = {key: "pending" for key in keys}
        self.counters = {
            "cache_hits": 0, "executed": 0, "coalesced": 0,
            "retries": 0, "failed": 0,
        }

    @property
    def total(self) -> int:
        return len(self.keys)

    @property
    def done(self) -> int:
        return sum(1 for s in self.key_state.values() if s != "pending")

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    def emit(self, scope: str, kind: str, **fields) -> dict:
        return self.log.append(make_event(scope, kind, self.id, **fields))

    def descriptor(self) -> dict:
        """The wire representation (`GET /v1/jobs/<id>`)."""
        return {
            "id": self.id,
            "namespace": self.namespace,
            "label": self.label,
            "priority": self.priority,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "error": self.error,
            "counters": dict(self.counters),
            "events": len(self.log),
        }


class JobManager:
    """Submit/status/cancel/list plus priority + FIFO work scheduling."""

    def __init__(
        self,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        fingerprint: str | None = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self.queue_limit = queue_limit
        self.fingerprint = fingerprint
        self.jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._fifo = itertools.count()  # tie-break: submission order
        # Work units: heap of (-priority, fifo, key).  A key may appear
        # more than once (a later, hotter submission bumps it); stale
        # entries are skipped at pop time.
        self._heap: list[tuple[int, int, str]] = []
        self._queued: set[str] = set()  # keys in heap, not yet leased
        self._leased: set[str] = set()
        self._spec_by_key: dict[str, RunSpec] = {}
        # Jobs still waiting on a key (queued or leased).
        self._waiters: dict[str, list[Job]] = {}
        self.counters = {
            "submitted": 0, "finished": 0, "failed": 0, "cancelled": 0,
            "rejected": 0, "cache_hits": 0, "coalesced": 0,
        }

    # -- depth gauges ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Distinct keys waiting for a shard (back-pressure numerator)."""
        return len(self._queued)

    @property
    def inflight(self) -> int:
        return len(self._leased)

    @property
    def outstanding(self) -> int:
        return len(self._queued) + len(self._leased)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        specs,
        namespace: str = "default",
        priority: int = 0,
        label: str | None = None,
        cache_probe=None,
    ) -> Job:
        """Register a campaign; returns the :class:`Job`.

        ``cache_probe(spec)`` is the cache-scan hook (defaults to the
        campaign cache): a non-``None`` return settles that spec as an
        immediate hit.  Raises :class:`QueueFullError` — atomically,
        before any state changes — when the submission's cache misses
        would push outstanding work past ``queue_limit``.
        """
        ordered = list(dict.fromkeys(specs))
        if not ordered:
            raise ValueError("a job needs at least one RunSpec")
        if cache_probe is None:
            cache_probe = lambda spec: cache.load(spec, self.fingerprint)
        keys = [cache.cache_key(s, self.fingerprint) for s in ordered]

        hits: list[bool] = []
        fresh = 0
        for spec, key in zip(ordered, keys):
            hit = cache_probe(spec) is not None
            hits.append(hit)
            if not hit and key not in self._waiters:
                fresh += 1
        if self.outstanding + fresh > self.queue_limit:
            self.counters["rejected"] += 1
            raise QueueFullError(
                f"queue limit {self.queue_limit} reached "
                f"({self.outstanding} outstanding, {fresh} new)"
            )

        job = Job(
            f"j{next(self._ids)}", namespace, ordered, keys,
            priority=priority, label=label,
        )
        self.jobs[job.id] = job
        self.counters["submitted"] += 1
        job.emit("job", "queued", total=job.total, priority=priority,
                 namespace=namespace)
        for spec, key, hit in zip(ordered, keys, hits):
            if hit:
                job.key_state[key] = "done"
                job.counters["cache_hits"] += 1
                self.counters["cache_hits"] += 1
                job.emit("run", "cache-hit", key=key, slug=spec.slug,
                         total=job.total, done=job.done)
                continue
            waiters = self._waiters.get(key)
            if waiters is not None:
                # Coalesce onto the in-flight or queued execution.
                waiters.append(job)
                job.counters["coalesced"] += 1
                self.counters["coalesced"] += 1
                job.emit("run", "coalesced", key=key, slug=spec.slug,
                         total=job.total, leased=key in self._leased)
                if key in self._queued and priority > 0:
                    heapq.heappush(
                        self._heap, (-priority, next(self._fifo), key)
                    )
                continue
            self._waiters[key] = [job]
            self._spec_by_key[key] = spec
            self._queued.add(key)
            heapq.heappush(self._heap, (-priority, next(self._fifo), key))
            job.emit("run", "queued", key=key, slug=spec.slug,
                     total=job.total)
        self._settle(job)
        return job

    # -- scheduling -----------------------------------------------------
    def next_work(self) -> tuple[str, RunSpec] | None:
        """Pop the highest-priority pending key, or ``None``.

        The popped key moves to the *leased* set; the caller must end
        the lease with :meth:`complete`, :meth:`fail`, or
        :meth:`release`.
        """
        while self._heap:
            _, _, key = heapq.heappop(self._heap)
            if key not in self._queued:
                continue  # stale duplicate, cancelled, or already leased
            self._queued.discard(key)
            self._leased.add(key)
            for job in self._waiters.get(key, ()):
                if job.state == JobState.QUEUED:
                    job.state = JobState.RUNNING
                job.emit("run", "started", key=key,
                         slug=self._spec_by_key[key].slug, total=job.total)
            return key, self._spec_by_key[key]
        return None

    def release(self, key: str, error: str | None = None,
                requeue: bool = True) -> None:
        """Return a leased key to the queue (worker death / retry)."""
        if key not in self._leased:
            return
        self._leased.discard(key)
        waiters = [j for j in self._waiters.get(key, ())
                   if j.state != JobState.CANCELLED]
        for job in waiters:
            job.counters["retries"] += 1
            job.emit("run", "retried", key=key, error=error)
        if requeue and waiters:
            priority = max(j.priority for j in waiters)
            self._queued.add(key)
            heapq.heappush(self._heap, (-priority, next(self._fifo), key))
        elif not requeue:
            self.fail(key, error or "gave up")

    def complete(self, key: str, wall_s: float | None = None,
                 executed: bool = True) -> list[Job]:
        """Settle ``key`` as done for every waiting job."""
        return self._close_key(
            key, "done", "finished", wall_s=wall_s, executed=executed,
        )

    def fail(self, key: str, error: str) -> list[Job]:
        """Settle ``key`` as failed for every waiting job."""
        return self._close_key(key, "failed", "failed", error=error)

    def _close_key(self, key, state, kind, wall_s=None, error=None,
                   executed=False) -> list[Job]:
        self._leased.discard(key)
        self._queued.discard(key)
        spec = self._spec_by_key.pop(key, None)
        slug = spec.slug if spec is not None else None
        touched = []
        for job in self._waiters.pop(key, ()):
            if job.finished:
                continue
            job.key_state[key] = state
            if state == "failed":
                job.counters["failed"] += 1
            elif executed:
                job.counters["executed"] += 1
            job.emit("run", kind, key=key, slug=slug, total=job.total,
                     done=job.done, wall_s=wall_s, error=error)
            self._settle(job)
            touched.append(job)
        return touched

    def _settle(self, job: Job) -> None:
        """Finalize ``job`` once every key has an outcome."""
        if job.finished or job.done < job.total:
            return
        failed = [k for k, s in job.key_state.items() if s == "failed"]
        if failed:
            job.state = JobState.FAILED
            job.error = f"{len(failed)} of {job.total} run(s) failed"
            self.counters["failed"] += 1
        else:
            job.state = JobState.DONE
            self.counters["finished"] += 1
        job.emit("job", job.state, total=job.total, done=job.done,
                 error=job.error, counters=dict(job.counters))
        job.log.close()

    # -- queries and cancellation --------------------------------------
    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list_jobs(self, namespace: str | None = None,
                  state: str | None = None) -> list[Job]:
        out = []
        for job in self.jobs.values():
            if namespace is not None and job.namespace != namespace:
                continue
            if state is not None and job.state != state:
                continue
            out.append(job)
        return out

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; queued-only keys are dropped, leases drain.

        A key whose only waiters are cancelled jobs leaves the queue
        (lazily — its heap entries are skipped).  A key some *other*
        live job still waits on keeps executing; the cancelled job just
        stops listening.  An already-terminal job is returned as-is.
        """
        job = self.job(job_id)
        if job.finished:
            return job
        job.state = JobState.CANCELLED
        self.counters["cancelled"] += 1
        for key, state in job.key_state.items():
            if state != "pending":
                continue
            waiters = self._waiters.get(key)
            if waiters is None:
                continue
            if job in waiters:
                waiters.remove(job)
            if not waiters and key not in self._leased:
                # Nobody wants it and nothing runs it: drop the unit.
                del self._waiters[key]
                self._queued.discard(key)
                self._spec_by_key.pop(key, None)
        job.emit("job", JobState.CANCELLED, total=job.total, done=job.done)
        job.log.close()
        return job

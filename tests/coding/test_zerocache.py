"""The campaign-wide zero-table cache: correct, bounded, and optional."""

import numpy as np
import pytest

from repro.coding.pipeline import line_zeros, precompute_line_zeros
from repro.coding.zerocache import (
    DISABLE_ENV,
    ZeroTableCache,
    cache_enabled,
    global_cache,
    lines_digest,
    reset_global_cache,
)


@pytest.fixture
def lines():
    rng = np.random.default_rng(42)
    return rng.integers(0, 256, size=(128, 64), dtype=np.uint8)


@pytest.fixture(autouse=True)
def _clean_global_cache():
    reset_global_cache()
    yield
    reset_global_cache()


class TestDigest:
    def test_content_addressed(self, lines):
        assert lines_digest(lines) == lines_digest(lines.copy())

    def test_any_byte_changes_the_digest(self, lines):
        tweaked = lines.copy()
        tweaked[17, 3] ^= 1
        assert lines_digest(tweaked) != lines_digest(lines)

    def test_shape_is_part_of_the_digest(self, lines):
        assert lines_digest(lines[:64]) != lines_digest(lines)


class TestCacheBehaviour:
    def test_hit_returns_the_same_table(self, lines):
        first = precompute_line_zeros(lines, ("dbi", "milc"))
        second = precompute_line_zeros(lines, ("dbi", "milc"))
        assert first["dbi"] is second["dbi"]
        assert first["milc"] is second["milc"]
        stats = global_cache().stats()
        assert stats == {"entries": 2, "hits": 2, "misses": 2}

    def test_cached_tables_match_uncached(self, lines):
        cached = precompute_line_zeros(lines, ("dbi", "3lwc"))
        plain = precompute_line_zeros(lines, ("dbi", "3lwc"), cache=False)
        for scheme in ("dbi", "3lwc"):
            assert np.array_equal(cached[scheme], plain[scheme])
            assert np.array_equal(cached[scheme], line_zeros(scheme, lines))

    def test_cached_tables_are_read_only(self, lines):
        table = precompute_line_zeros(lines, ("dbi",))["dbi"]
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0] = 0

    def test_supplied_digest_is_honoured(self, lines):
        digest = lines_digest(lines)
        precompute_line_zeros(lines, ("dbi",), digest=digest)
        cache = global_cache()
        assert cache.get(digest, "dbi") is not None

    def test_different_data_does_not_collide(self, lines):
        other = (lines ^ 0xFF).astype(np.uint8)
        a = precompute_line_zeros(lines, ("dbi",))["dbi"]
        b = precompute_line_zeros(other, ("dbi",))["dbi"]
        assert not np.array_equal(a, b)
        assert global_cache().stats()["entries"] == 2

    def test_private_cache_instance(self, lines):
        cache = ZeroTableCache()
        precompute_line_zeros(lines, ("dbi",), cache=cache)
        precompute_line_zeros(lines, ("dbi",), cache=cache)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        # The global cache never saw this workload.
        assert global_cache().stats()["entries"] == 0

    def test_lru_bound(self):
        cache = ZeroTableCache(max_entries=2)
        rng = np.random.default_rng(0)
        tables = [rng.integers(0, 9, size=8) for _ in range(3)]
        for i, t in enumerate(tables):
            cache.put(f"digest{i}", "dbi", t)
        assert len(cache) == 2
        assert cache.get("digest0", "dbi") is None  # evicted, oldest
        assert cache.get("digest2", "dbi") is not None

    def test_env_kill_switch(self, lines, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert not cache_enabled()
        first = precompute_line_zeros(lines, ("dbi",))
        second = precompute_line_zeros(lines, ("dbi",))
        assert first["dbi"] is not second["dbi"]
        assert global_cache().stats()["entries"] == 0


class TestTraceIntegration:
    def test_trace_digest_is_cached_and_stable(self):
        from repro.workloads.trace import MemoryTrace, TraceRecord

        lines = np.zeros((2, 64), dtype=np.uint8)
        records = [
            TraceRecord(core=0, gap=0, address=0, is_write=False, line_id=0),
            TraceRecord(core=0, gap=1, address=64, is_write=True, line_id=1),
        ]
        trace = MemoryTrace(
            name="t", records_by_core=[records], line_data=lines
        )
        assert trace.line_digest == lines_digest(lines)
        assert trace.line_digest is trace.line_digest  # memoised

    def test_same_trace_shares_tables_across_policies(self):
        # The campaign pattern: one trace replayed under many policies
        # must encode each (trace, scheme) pair exactly once.
        from repro.system.machine import NIAGARA_SERVER
        from repro.workloads.benchmarks import build_trace

        trace = build_trace("GUPS", NIAGARA_SERVER, accesses_per_core=50)
        schemes = ("dbi", "milc")
        for _ in range(3):  # three "policies" replaying the same trace
            precompute_line_zeros(
                trace.line_data, schemes, digest=trace.line_digest
            )
        stats = global_cache().stats()
        assert stats["misses"] == len(schemes)
        assert stats["hits"] == 2 * len(schemes)

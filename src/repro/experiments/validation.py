"""Suite validation: the evidence behind DESIGN.md's substitution claim.

The reproduction replaces SESC + real binaries with synthetic workloads;
the claim is that each synthetic benchmark reproduces the two properties
MiL's results depend on — memory-access behaviour and data-value
statistics.  This experiment characterises every benchmark on the DDR4
baseline so that claim is *measured*, not asserted:

* memory behaviour: bus utilisation, L1/L2 miss rates, row-buffer hit
  rate, read/write/prefetch mix, mean queue latency;
* data statistics: zero-byte fraction and per-line DBI zeros of the
  actual transferred payloads.

Runs fresh (uncached) because it reaches into simulator internals that
the cached summaries do not carry.
"""

from __future__ import annotations

import numpy as np

from ..coding.pipeline import precompute_line_zeros
from ..system.machine import NIAGARA_SERVER
from ..system.simulator import simulate
from ..workloads.benchmarks import BENCHMARK_ORDER, build_trace
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE

__all__ = ["run_experiment"]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    rows = []
    utils = []
    for bench in BENCHMARK_ORDER:
        trace = build_trace(bench, NIAGARA_SERVER,
                            accesses_per_core=accesses_per_core)
        result = simulate(trace, NIAGARA_SERVER)

        bursts = sum(
            mc.channel.read_count + mc.channel.write_count
            for mc in result.controllers
        )
        activates = sum(
            mc.channel.activate_count for mc in result.controllers
        )
        row_hit_rate = 1 - activates / bursts if bursts else 0.0

        total = trace.total_records or 1
        zeros = precompute_line_zeros(trace.line_data, ("dbi",))["dbi"]
        zero_bytes = float((trace.line_data == 0).mean())

        rows.append([
            bench,
            result.bus_utilization,
            trace.l1_miss_rate,
            trace.l2_miss_rate,
            row_hit_rate,
            trace.demand_reads / total,
            trace.writes / total,
            trace.prefetches / total,
            zero_bytes,
            float(zeros.mean()),
        ])
        utils.append(result.bus_utilization)

    result = ExperimentResult(
        experiment="validation",
        title=(
            "Suite characterisation on the DDR4 baseline (the measured "
            "basis for DESIGN.md's substitution argument)"
        ),
        headers=[
            "benchmark", "bus_util", "l1_miss", "l2_miss", "row_hit",
            "read%", "write%", "prefetch%", "zero_bytes", "dbi_zeros/line",
        ],
        rows=rows,
        paper_claim=(
            "Table 3's suite spans light (MM, STRMATCH) to "
            "memory-intensive (CG, GUPS) with diverse data statistics"
        ),
    )
    result.observations["util_spread"] = float(max(utils) - min(utils))
    result.observations["min_util"] = float(min(utils))
    result.observations["max_util"] = float(max(utils))
    return result


if __name__ == "__main__":
    print(run_experiment().format())

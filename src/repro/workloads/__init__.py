"""Synthetic versions of the Table 3 benchmark suite."""

from .benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    DEFAULT_ACCESSES_PER_CORE,
    MEMORY_INTENSIVE,
    BenchmarkSpec,
    build_trace,
    clear_trace_cache,
    get_benchmark,
)
from .datamodel import DataModel, WORD_CATEGORIES, splitmix64
from .trace import MemoryTrace, TraceRecord

__all__ = [
    "BENCHMARK_ORDER",
    "BENCHMARKS",
    "DEFAULT_ACCESSES_PER_CORE",
    "MEMORY_INTENSIVE",
    "BenchmarkSpec",
    "build_trace",
    "clear_trace_cache",
    "get_benchmark",
    "DataModel",
    "WORD_CATEGORIES",
    "splitmix64",
    "MemoryTrace",
    "TraceRecord",
]

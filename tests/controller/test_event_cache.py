"""The scheduling-loop caches must be invisible in the command stream.

``ChannelController`` memoises its FR-FCFS candidate list and its
next-wake time against a state version counter; any stale read would
reorder or drop DRAM commands.  These tests run the same request
schedule with the caches on (default) and off (``REPRO_NO_EVENT_CACHE``)
and hold the two command logs to *byte identity* — same commands, same
cycles, same order — with the independent protocol auditor signing off
on both runs.  This is the gate the optimisation rides behind.
"""

from __future__ import annotations

import random

import pytest

from repro.controller import NO_EVENT_CACHE_ENV, ChannelController
from repro.dram import DDR4_3200, DDR4_GEOMETRY

from .test_controller import make_request, run_to_completion


def _schedule(seed: int, n: int = 48) -> list[tuple[int, bool]]:
    """(line, is_write) pairs mixing row hits, conflicts, and drains."""
    rng = random.Random(seed)
    schedule = []
    for _ in range(n):
        line = rng.randrange(0, 4096)
        if rng.random() < 0.3:
            line = rng.randrange(0, 4)  # force some row/bank reuse
        schedule.append((line, rng.random() < 0.4))
    return schedule


def _run(schedule, page_policy: str):
    mc = ChannelController(
        DDR4_3200, DDR4_GEOMETRY, keep_cmd_log=True,
        page_policy=page_policy,
    )
    requests = [make_request(line, write=w) for line, w in schedule]
    done, finish = run_to_completion(mc, requests)
    # Duplicate writes coalesce in the queue, so they never complete
    # as separate requests; everything else must drain.
    assert len(done) == len(requests) - mc.coalesced_writes
    return mc, done, finish


@pytest.mark.parametrize("page_policy", ["open", "closed"])
@pytest.mark.parametrize("seed", [0, 7])
def test_cache_off_is_byte_identical(seed, page_policy, monkeypatch):
    schedule = _schedule(seed)
    cached_mc, cached_done, cached_finish = _run(schedule, page_policy)

    monkeypatch.setenv(NO_EVENT_CACHE_ENV, "1")
    plain_mc, plain_done, plain_finish = _run(schedule, page_policy)
    assert plain_mc._cache_enabled is False  # the switch actually took

    # The full command log — (cycle, command, rank, group, bank, row) —
    # must match entry for entry, and so must every data-bus burst.
    assert cached_mc.channel.command_log == plain_mc.channel.command_log
    assert cached_mc.channel.transactions == plain_mc.channel.transactions
    assert cached_finish == plain_finish
    per_req = lambda done: [  # noqa: E731
        (r.line_id, r.issue_cycle, r.finish_cycle, r.scheme)
        for r in done
    ]
    assert per_req(cached_done) == per_req(plain_done)

    # Both runs replay cleanly through the independent auditor, so the
    # shared log is not just identical but protocol-correct.
    assert cached_mc.audit() == []
    assert plain_mc.audit() == []


def test_cache_is_actually_exercised():
    """Guard against the memo silently never hitting (dead cache)."""
    mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
    assert mc._cache_enabled is True
    for line in range(4):
        mc.enqueue(make_request(line), 0)
    # Same state, repeated queries: the second read must come from the
    # memo (same list object), and the version must be pinned.
    first = mc._candidates(0)
    assert mc._cand_version == mc._state_version
    assert mc._candidates(0) is first
    # Issuing a command invalidates it.
    assert mc.step(0) is True
    assert mc._cand_version != mc._state_version
    assert mc._candidates(1) is not first

"""Deterministic scenario -> RunSpec matrix compilation.

The compiler is a pure function of the parsed scenario: grid axes
expand as a cartesian product in :data:`~repro.scenario.schema.GRID_AXES`
order with each axis's values in document order, so the same scenario
always produces the same specs in the same sequence — the property that
makes ``repro scenario compile`` output byte-stable and JSONL result
rows comparable across runs.

Traffic axes (``zero_bias``, ``mean_gap``, ``burst``) rewrite the grid
point's :class:`~repro.workloads.mixed.MixSpec`; geometry axes become
``system_overrides`` (``channels`` directly, ``ranks`` via the dotted
``geometry.ranks`` path); everything else maps onto RunSpec fields.
A grid point that needs no synthesis (single benchmark, no arrival, no
bias) compiles to the plain Table 3 name, so scenarios sweeping ranks
over the paper's own workloads replay the *identical* cached traces the
figure experiments use.
"""

from __future__ import annotations

import itertools

from ..campaign.spec import RunSpec
from ..workloads.mixed import MixSpec
from .schema import Scenario

__all__ = ["compile_scenario", "point_benchmark"]


def point_benchmark(scenario: Scenario, zero_bias: float,
                    mean_gap: float | None, burst: int | None) -> str:
    """The benchmark name one grid point runs (plain or MIX@...)."""
    plain = (
        len(scenario.mix) == 1
        and scenario.arrival is None
        and zero_bias == 0.0
    )
    if plain:
        return scenario.mix[0][0]
    arrival = scenario.arrival
    # parse_scenario guarantees an arrival section whenever synthesis
    # is possible, so this is a real invariant, not a user error.
    assert arrival is not None, "validated scenario lost its arrival"
    return MixSpec.make(
        dict(scenario.mix),
        arrival=arrival.kind,
        mean_gap=arrival.mean_gap if mean_gap is None else mean_gap,
        burst=arrival.burst if burst is None else burst,
        zero_bias=zero_bias,
    ).name


def compile_scenario(scenario: Scenario) -> list[RunSpec]:
    """Expand a scenario into its frozen, de-duplicated RunSpec matrix."""
    axes = [axis for axis, _ in scenario.grid]
    value_lists = [values for _, values in scenario.grid]
    specs: dict[RunSpec, None] = {}
    for point in itertools.product(*value_lists) if axes else [()]:
        params = dict(zip(axes, point))
        benchmark = point_benchmark(
            scenario,
            zero_bias=params.get("zero_bias", scenario.zero_bias),
            mean_gap=params.get("mean_gap"),
            burst=params.get("burst"),
        )
        overrides = {}
        if "channels" in params:
            overrides["channels"] = params["channels"]
        if "ranks" in params:
            overrides["geometry.ranks"] = params["ranks"]
        spec = RunSpec(
            benchmark=benchmark,
            system=params.get("system", "ddr4-server"),
            policy=params.get("policy", "mil"),
            lookahead=params.get("lookahead"),
            accesses_per_core=(
                scenario.accesses_per_core + scenario.warmup
            ),
            seed=params.get("seed", scenario.seed),
            system_overrides=overrides,
        )
        specs[spec] = None  # dedupe, first occurrence wins the order
    return list(specs)

"""Benchmark target: Figure 2 always-on 3-LWC strawman.

Regenerates the paper's fig02 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig02_always_lwc import run_experiment


def test_fig02(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

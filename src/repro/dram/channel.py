"""Cycle-level DRAM channel: banks, bank groups, ranks, and the data bus.

This is the constraint engine under the memory controller.  It answers
two questions:

* :meth:`DRAMChannel.earliest_issue` — from the current device state,
  what is the earliest cycle a given command could legally issue?
* :meth:`DRAMChannel.issue` — commit a command at a cycle, updating all
  the saturating down-counters (modelled as "earliest next cycle"
  registers, the software dual of Figure 11's counters).

Constraint scopes follow the DDR4 structure the paper leans on
(Section 3.1): per-bank (tRCD/tRAS/tRC/tRTP/tWR/tRP), per-bank-group
(tCCD_L/tRRD_L/tWTR_L), per-rank (tCCD_S/tRRD_S/tWTR_S/tFAW/tRFC), and
per-channel for the shared data bus (burst occupancy, tRTRS rank
switches, read/write turnaround bubbles).

Variable burst lengths — the mechanism MiL rides on — enter through the
``bus_cycles`` argument of column commands: a BL16 read occupies the bus
for 8 cycles instead of 4, and stretches the effective column-to-column
spacing to ``max(tCCD, bus_cycles)``.

Every data-bus transaction is appended to :attr:`transactions`; the
analysis layer derives Figures 4-6 from that log, and the test suite
replays it through :class:`BusAuditor` to prove no overlaps or missing
turnaround bubbles ever occur.  With ``keep_cmd_log`` enabled, every
*command* is additionally appended to :attr:`command_log` as a
:class:`CommandRecord`, which is what the independent
:class:`~repro.audit.protocol.ProtocolAuditor` re-derives the full
Table 2 constraint set from (see ``docs/VALIDATION.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .commands import CommandType, Geometry
from .timing import TimingParams

__all__ = [
    "BankState",
    "BusTransaction",
    "CommandRecord",
    "DRAMChannel",
    "BusAuditor",
]


@dataclass(slots=True)
class BankState:
    """Per-bank row-buffer and earliest-next-command state."""

    open_row: int | None = None
    next_act: int = 0
    next_pre: int = 0
    next_rd: int = 0
    next_wr: int = 0


@dataclass(frozen=True)
class BusTransaction:
    """One completed data burst on the channel's data bus."""

    start: int  # first cycle of data transfer
    end: int  # one past the last cycle of data transfer
    issue_cycle: int  # when the column command issued
    is_write: bool
    rank: int
    bank_group: int
    bank: int
    scheme: str  # coding scheme used for this burst
    request_id: int  # opaque tag from the controller (-1 if none)

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class CommandRecord:
    """One committed command, as the protocol audit layer sees it.

    This is the raw material for :class:`repro.audit.ProtocolAuditor`:
    nothing derived, just what issued when.  ``bus_cycles`` is zero for
    non-column commands; ``row`` is only meaningful for ACTIVATE.
    """

    cycle: int
    cmd: CommandType
    rank: int
    bank_group: int
    bank: int
    row: int | None = None
    bus_cycles: int = 0
    auto_precharge: bool = False


@dataclass(slots=True)
class _RankState:
    """Per-rank constraint registers."""

    next_act: int = 0
    next_rd: int = 0
    next_wr: int = 0
    act_history: list = field(default_factory=list)  # for tFAW
    group_next_act: list = field(default_factory=list)
    group_next_rd: list = field(default_factory=list)
    group_next_wr: list = field(default_factory=list)
    # Row-buffer occupancy accounting (IDD3N vs IDD2N standby classes):
    # how many banks hold an open row, when the rank last transitioned
    # to "some bank open", and the accumulated open time.  Auto-
    # precharged banks close at the *internal* precharge cycle (tRTP /
    # write-recovery bound), not at the column command, so the close of
    # the last open bank is deferred: ``close_at`` is the cycle the
    # rank's current open interval actually ends (None while a bank is
    # open or the rank was never opened), and ``auto_horizon`` is the
    # latest internal-precharge completion seen so far.
    open_banks: int = 0
    open_since: int = 0
    open_cycles: int = 0
    close_at: int | None = None
    auto_horizon: int = 0
    # Fast-path indices for the controller's wake computation.
    # ``open_keys`` holds the (group, bank) coordinates of every bank
    # with an open row, so refresh-readiness scans touch only the open
    # banks instead of all ranks x groups x banks.  ``closed_next_act``
    # is a running upper bound over the ``next_act`` of every *closed*
    # bank: it is folded at each close event (PRECHARGE, internal
    # auto-precharge, REFRESH).  A stale contribution from a bank that
    # has since reopened is always dominated by that bank's own
    # precharge-path bound (its ACTIVATE cycle is >= the stale value,
    # and tRAS + tRP are positive), so the pair reproduces the full
    # per-bank scan exactly.
    open_keys: set = field(default_factory=set)
    closed_next_act: int = 0


class DRAMChannel:
    """One DDRx channel with its device timing state and data bus."""

    def __init__(
        self,
        timing: TimingParams,
        geometry: Geometry,
        keep_log: bool = True,
        keep_cmd_log: bool = False,
    ):
        self.timing = timing
        self.geometry = geometry
        self.keep_log = keep_log
        # Full per-command log for the protocol audit layer.  Off by
        # default: the bus-transaction log is what the figures need;
        # the command log exists to be replayed through an auditor.
        self.keep_cmd_log = keep_cmd_log
        # Telemetry probe (repro.telemetry.probes.ChannelProbe), attached
        # by the wiring layer only when a session is active; None keeps
        # every instrumentation site a single identity test.
        self.probe = None

        self.banks = [
            [
                [BankState() for _ in range(geometry.banks_per_group)]
                for _ in range(geometry.bank_groups)
            ]
            for _ in range(geometry.ranks)
        ]
        self.ranks = [
            _RankState(
                group_next_act=[0] * geometry.bank_groups,
                group_next_rd=[0] * geometry.bank_groups,
                group_next_wr=[0] * geometry.bank_groups,
            )
            for _ in range(geometry.ranks)
        ]

        # Data bus state.
        self.bus_free_at = 0
        self.last_bus_rank: int | None = None
        self.last_bus_was_write: bool | None = None
        self.busy_cycles = 0

        # Event counters for the energy model.
        self.activate_count = 0
        self.read_count = 0
        self.write_count = 0
        self.refresh_count = 0
        self.auto_precharges = 0
        self.read_beats = 0
        self.write_beats = 0

        self.transactions: list[BusTransaction] = []
        self.command_log: list[CommandRecord] = []

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def bank(self, rank: int, group: int, bank: int) -> BankState:
        """Access one bank's state."""
        return self.banks[rank][group][bank]

    def _rank_open(self, r: _RankState, cycle: int, group: int, bank: int) -> None:
        """A bank in the rank gained an open row at ``cycle``."""
        r.open_keys.add((group, bank))
        if r.open_banks == 0:
            if r.close_at is not None and cycle <= r.close_at:
                # An internal precharge was still draining: the rank
                # never actually went all-closed, so the open interval
                # simply continues.
                r.close_at = None
            else:
                if r.close_at is not None:
                    r.open_cycles += r.close_at - r.open_since
                    r.close_at = None
                r.open_since = cycle
        r.open_banks += 1

    def _rank_close(
        self, r: _RankState, closes_at: int, group: int, bank: int
    ) -> None:
        """A bank in the rank loses its open row, effective ``closes_at``.

        For an explicit PRECHARGE ``closes_at`` is the command cycle;
        for auto-precharge it is the *internal* precharge cycle, which
        lies after the column command.  The open interval is only
        credited once a later event proves it really ended (a reopening
        ACTIVATE, or :meth:`rank_open_cycles` closing the books).
        """
        r.open_keys.discard((group, bank))
        r.auto_horizon = max(r.auto_horizon, closes_at)
        r.open_banks -= 1
        if r.open_banks == 0:
            r.close_at = r.auto_horizon

    def _bus_gap(self, rank: int, is_write: bool) -> int:
        """Required idle bubble before a new burst may start.

        Same rank, same direction: bursts may be seamless (device CCD
        spacing still applies).  A rank switch or a direction change
        costs a tRTRS bubble for bus turnaround / ODT settling.
        """
        if self.last_bus_rank is None:
            return 0
        if self.last_bus_rank != rank or self.last_bus_was_write != is_write:
            return self.timing.RTRS
        return 0

    def _data_latency(self, is_write: bool) -> int:
        return self.timing.WL if is_write else self.timing.CL

    # ------------------------------------------------------------------
    # Earliest legal issue time
    # ------------------------------------------------------------------
    def earliest_issue(
        self,
        cmd: CommandType,
        rank: int,
        group: int,
        bank: int,
        now: int,
        bus_cycles: int = 4,
    ) -> int:
        """Earliest cycle >= ``now`` at which ``cmd`` could issue.

        Pure query: no state changes.  For column commands,
        ``bus_cycles`` is the data-bus occupancy (4 for BL8, 5 for BL10,
        8 for BL16).
        """
        t = self.timing
        b = self.banks[rank][group][bank]
        r = self.ranks[rank]

        if cmd is CommandType.ACTIVATE:
            earliest = max(now, b.next_act, r.next_act, r.group_next_act[group])
            if len(r.act_history) >= 4:
                earliest = max(earliest, r.act_history[-4] + t.FAW)
            return earliest

        if cmd is CommandType.PRECHARGE:
            return max(now, b.next_pre)

        if cmd in (CommandType.READ, CommandType.WRITE):
            is_write = cmd is CommandType.WRITE
            if is_write:
                earliest = max(now, b.next_wr, r.next_wr, r.group_next_wr[group])
            else:
                earliest = max(now, b.next_rd, r.next_rd, r.group_next_rd[group])
            # Data-bus availability converts to an issue-time bound.
            latency = self._data_latency(is_write)
            gap = self._bus_gap(rank, is_write)
            earliest = max(earliest, self.bus_free_at + gap - latency)
            return earliest

        if cmd is CommandType.REFRESH:
            # All banks in the rank must be precharged and past tRP.  An
            # open row does not make the query invalid — this is a pure
            # query, and the controller's refresh path probes it
            # speculatively — so an open bank contributes the earliest
            # cycle its required precharge could complete instead.
            # Closed banks are covered wholesale by the rank's running
            # ``closed_next_act`` bound, so only open banks are visited.
            earliest = max(now, r.closed_next_act)
            banks_r = self.banks[rank]
            for grp_i, bank_i in r.open_keys:
                bb = banks_r[grp_i][bank_i]
                earliest = max(earliest, max(now, bb.next_pre) + t.RP)
            return earliest

        raise ValueError(f"unknown command {cmd}")

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def issue(
        self,
        cmd: CommandType,
        rank: int,
        group: int,
        bank: int,
        cycle: int,
        row: int | None = None,
        bus_cycles: int = 4,
        scheme: str = "dbi",
        request_id: int = -1,
        auto_precharge: bool = False,
    ) -> int:
        """Commit ``cmd`` at ``cycle``; return when its effect completes.

        For column commands the return value is the cycle the data burst
        finishes (one past the last data cycle); for others it is the
        cycle the affected resource becomes usable again.

        Raises ``ValueError`` if the command violates a timing
        constraint — the controller is expected to consult
        :meth:`earliest_issue` first, so a violation is a scheduler bug.
        """
        legal = self.earliest_issue(cmd, rank, group, bank, cycle, bus_cycles)
        if cycle < legal:
            raise ValueError(
                f"{cmd.name} at cycle {cycle} violates timing "
                f"(earliest legal: {legal})"
            )
        # Structural legality, checked before anything is logged so the
        # command log only ever holds committed commands.
        open_row = self.banks[rank][group][bank].open_row
        if cmd is CommandType.ACTIVATE:
            if open_row is not None:
                raise ValueError("activate on a bank with an open row")
            if row is None:
                raise ValueError("activate needs a row")
        elif cmd is CommandType.PRECHARGE:
            if open_row is None:
                raise ValueError("precharge on an already-closed bank")
        elif cmd.is_column:
            if open_row is None:
                raise ValueError("column command on a closed bank")
        elif cmd is CommandType.REFRESH:
            if not self.all_banks_closed(rank):
                raise ValueError("refresh requires all banks closed")
        if self.keep_cmd_log:
            is_column = cmd.is_column
            self.command_log.append(
                CommandRecord(
                    cycle=cycle,
                    cmd=cmd,
                    rank=rank,
                    bank_group=group,
                    bank=bank,
                    row=row,
                    bus_cycles=bus_cycles if is_column else 0,
                    auto_precharge=auto_precharge and is_column,
                )
            )

        t = self.timing
        b = self.banks[rank][group][bank]
        r = self.ranks[rank]

        if cmd is CommandType.ACTIVATE:
            b.open_row = row
            self._rank_open(r, cycle, group, bank)
            b.next_rd = max(b.next_rd, cycle + t.RCD)
            b.next_wr = max(b.next_wr, cycle + t.RCD)
            b.next_pre = max(b.next_pre, cycle + t.RAS)
            b.next_act = max(b.next_act, cycle + t.RC)
            for g in range(self.geometry.bank_groups):
                bound = t.RRD_L if g == group else t.RRD_S
                r.group_next_act[g] = max(r.group_next_act[g], cycle + bound)
            r.act_history.append(cycle)
            if len(r.act_history) > 8:
                del r.act_history[:-8]
            self.activate_count += 1
            if self.probe is not None:
                self.probe.activate(cycle, rank)
            return cycle + t.RCD

        if cmd is CommandType.PRECHARGE:
            b.open_row = None
            self._rank_close(r, cycle, group, bank)
            b.next_act = max(b.next_act, cycle + t.RP)
            r.closed_next_act = max(r.closed_next_act, b.next_act)
            if self.probe is not None:
                self.probe.precharge(cycle, rank)
            return cycle + t.RP

        if cmd in (CommandType.READ, CommandType.WRITE):
            is_write = cmd is CommandType.WRITE
            latency = self._data_latency(is_write)
            data_start = cycle + latency
            data_end = data_start + bus_cycles

            # Column-to-column spacing stretches with the burst.
            ccd_l = max(t.CCD_L, bus_cycles)
            ccd_s = max(t.CCD_S, bus_cycles)
            for g in range(self.geometry.bank_groups):
                ccd = ccd_l if g == group else ccd_s
                r.group_next_rd[g] = max(r.group_next_rd[g], cycle + ccd)
                r.group_next_wr[g] = max(r.group_next_wr[g], cycle + ccd)

            if is_write:
                # Write recovery and write-to-read turnaround count from
                # the end of write data.
                b.next_pre = max(b.next_pre, data_end + t.WR)
                r.next_rd = max(r.next_rd, data_end + t.WTR_S)
                for g in range(self.geometry.bank_groups):
                    bound = t.WTR_L if g == group else t.WTR_S
                    r.group_next_rd[g] = max(r.group_next_rd[g], data_end + bound)
                self.write_count += 1
                self.write_beats += bus_cycles * 2
            else:
                b.next_pre = max(b.next_pre, cycle + t.RTP)
                self.read_count += 1
                self.read_beats += bus_cycles * 2

            if auto_precharge:
                # RDA/WRA: the device precharges itself once the column
                # access completes — tRTP after a read, write recovery
                # after write data for a write; ``b.next_pre`` holds
                # exactly that bound after the bumps above.  The bank is
                # closed for scheduling purposes as of now, but the row
                # stays open (drawing IDD3N) until the internal
                # precharge, so occupancy closes at ``pre_at``.
                pre_at = b.next_pre
                b.open_row = None
                self._rank_close(r, pre_at, group, bank)
                b.next_act = max(b.next_act, pre_at + t.RP)
                r.closed_next_act = max(r.closed_next_act, b.next_act)
                self.auto_precharges += 1

            self.bus_free_at = data_end
            self.last_bus_rank = rank
            self.last_bus_was_write = is_write
            self.busy_cycles += bus_cycles
            if self.keep_log:
                self.transactions.append(
                    BusTransaction(
                        start=data_start,
                        end=data_end,
                        issue_cycle=cycle,
                        is_write=is_write,
                        rank=rank,
                        bank_group=group,
                        bank=bank,
                        scheme=scheme,
                        request_id=request_id,
                    )
                )
            if self.probe is not None:
                self.probe.bus_burst(
                    data_start, data_end, scheme, is_write, rank, group, bank
                )
            return data_end

        if cmd is CommandType.REFRESH:
            done = cycle + t.RFC
            for grp in self.banks[rank]:
                for bb in grp:
                    bb.next_act = max(bb.next_act, done)
            r.closed_next_act = max(r.closed_next_act, done)
            self.refresh_count += 1
            if self.probe is not None:
                self.probe.refresh(cycle, rank)
            return done

        raise ValueError(f"unknown command {cmd}")

    # ------------------------------------------------------------------
    # Introspection used by the decision logic and the analysis layer
    # ------------------------------------------------------------------
    def open_row(self, rank: int, group: int, bank: int) -> int | None:
        """Row currently latched in the bank's row buffer."""
        return self.banks[rank][group][bank].open_row

    def all_banks_closed(self, rank: int) -> bool:
        """True when the rank can accept a refresh (O(1))."""
        return not self.ranks[rank].open_keys

    def open_bank_keys(self, rank: int) -> list:
        """Sorted ``(group, bank)`` coordinates of banks with open rows.

        Sorting reproduces the lexicographic visit order of the old
        all-banks nested loop, so callers that break ties by "first
        seen" stay bit-identical to the full scan.
        """
        return sorted(self.ranks[rank].open_keys)

    def earliest_any_issue(
        self, cmd: CommandType, rank: int, now: int
    ) -> tuple | None:
        """Best ``(earliest, group, bank)`` for ``cmd`` over the rank.

        The bank-ready primitive behind the controller's refresh paths:
        for PRECHARGE it scans only the open banks (the only legal
        targets) and returns the first-seen minimum in ``(group, bank)``
        order — exactly what the old exhaustive scan picked.  Returns
        ``None`` when no bank can accept the command.  Pure query.
        """
        if cmd is not CommandType.PRECHARGE:
            raise ValueError(f"earliest_any_issue only supports PRECHARGE, got {cmd}")
        best = None
        banks_r = self.banks[rank]
        for grp_i, bank_i in self.open_bank_keys(rank):
            earliest = max(now, banks_r[grp_i][bank_i].next_pre)
            if best is None or earliest < best[0]:
                best = (earliest, grp_i, bank_i)
        return best

    def rank_open_cycles(self, rank: int, now: int) -> int:
        """Cycles rank ``rank`` spent with at least one open row.

        The IDD3N-vs-IDD2N standby split of the Micron power
        methodology; ``now`` closes the still-open interval, if any.
        """
        r = self.ranks[rank]
        total = r.open_cycles
        if r.open_banks > 0:
            total += max(0, now - r.open_since)
        elif r.close_at is not None:
            # All banks auto-precharged; the open interval runs until
            # the last internal precharge, clipped to ``now`` if that
            # precharge is still in the future.
            total += max(0, min(now, r.close_at) - r.open_since)
        return total


class BusAuditor:
    """Independent checker for the data-bus log.

    Re-derives the bus rules from scratch (overlap-free, tRTRS bubbles
    on rank switches and direction changes) so a bug in
    :class:`DRAMChannel` cannot hide itself.
    """

    def __init__(self, timing: TimingParams):
        self.timing = timing

    def check(self, transactions: list[BusTransaction]) -> list[str]:
        """Return a list of violation descriptions (empty == clean)."""
        problems = []
        # ``last`` is the burst with the running-max ``end`` seen so
        # far, not merely the previous burst in start order: a long
        # burst can overlap (or demand a turnaround bubble from) a
        # transaction several entries later, and an overlapping pair
        # still owes a bubble check against whatever came before it.
        last: BusTransaction | None = None
        for cur in sorted(transactions, key=lambda tr: (tr.start, tr.end)):
            if last is not None:
                if cur.start < last.end:
                    problems.append(
                        f"overlap: [{last.start},{last.end}) then "
                        f"[{cur.start},{cur.end})"
                    )
                switch = (
                    last.rank != cur.rank or last.is_write != cur.is_write
                )
                if switch and cur.start - last.end < self.timing.RTRS:
                    problems.append(
                        f"missing turnaround bubble between {last.end} "
                        f"and {cur.start} (rank/direction switch)"
                    )
            if last is None or cur.end > last.end:
                last = cur
        return problems

"""Benchmark target: Figure 18 DRAM energy breakdown.

Regenerates the paper's fig18 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig18_energy_breakdown import run_experiment


def test_fig18(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

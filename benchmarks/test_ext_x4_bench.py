"""Benchmark target: ext_x4 extension study (see DESIGN.md)."""

from repro.experiments import ALL_EXPERIMENTS


def test_ext_x4(benchmark, show):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["ext_x4"], rounds=1, iterations=1
    )
    show(result)
    assert result.rows, "experiment produced no rows"

"""Campaign execution: cache check, process-pool fan-out, retries.

:class:`CampaignRunner` takes any iterable of :class:`RunSpec`,
deduplicates it, serves what it can from the content-addressed cache,
and executes the misses — serially for ``jobs=1`` (the default under
pytest, so unit suites stay deterministic and pool-free) or across a
``ProcessPoolExecutor`` otherwise.  A worker that dies mid-run (e.g.
SIGKILLed or OOM-killed, which poisons every in-flight future in its
pool) releases its specs back to the queue: the pool is rebuilt and
the unfinished work resubmitted, up to ``retries`` rebuilds, before
the parent finishes the remainder itself.

Simulations are seeded and deterministic, so the same spec produces
the same summary no matter which process executes it; the cache write
is what makes serial and parallel campaigns byte-identical.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
)

from . import cache
from .events import RunEvent, null_sink
from .spec import RunSpec

__all__ = ["CampaignRunner", "default_jobs", "run_cached"]

# Failure-injection hooks (see tests/campaign/test_runner.py and the
# guard-rail philosophy of tests/integration/test_failure_injection.py):
# when the variable names a nonexistent path, the next _execute call
# creates it and then misbehaves exactly once — FAIL_ONCE raises a
# plain exception (a run that errors), KILL_ONCE SIGKILLs its own
# process (a worker that dies mid-lease, poisoning a process pool).
FAIL_ONCE_ENV = "REPRO_CAMPAIGN_FAIL_ONCE"
KILL_ONCE_ENV = "REPRO_CAMPAIGN_KILL_ONCE"


def _trip_once(env_var: str) -> bool:
    """True exactly once per sentinel path named by ``env_var``."""
    sentinel = os.environ.get(env_var)
    if not sentinel or os.path.exists(sentinel):
        return False
    try:  # "x" keeps the trip exactly-once across racing workers
        with open(sentinel, "x") as fh:
            fh.write("tripped")
    except FileExistsError:
        return False
    return True


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (serial under pytest).

    Explicitly passing ``jobs=`` to :class:`CampaignRunner` overrides
    this; only the *implicit* default downgrades to serial inside a
    pytest process.
    """
    if "PYTEST_CURRENT_TEST" in os.environ:
        return 1
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _execute(spec: RunSpec) -> tuple[dict, float]:
    """Run one spec fresh; returns (summary dict, wall seconds).

    Top-level so a process pool can import it by name; the framework
    import is deferred so importing ``repro.campaign`` stays cycle-free.
    """
    if _trip_once(FAIL_ONCE_ENV):
        raise RuntimeError(f"injected worker failure for {spec.slug}")
    if _trip_once(KILL_ONCE_ENV):
        os.kill(os.getpid(), signal.SIGKILL)

    from ..core.framework import run_spec

    started = time.perf_counter()
    summary = run_spec(spec)
    return summary.to_dict(), time.perf_counter() - started


def run_cached(spec: RunSpec, fingerprint: str | None = None):
    """One-spec convenience: cache hit or execute-and-store."""
    summary = cache.load(spec, fingerprint)
    if summary is not None:
        return summary
    body, wall_s = _execute(spec)
    return _finish(spec, body, wall_s, fingerprint)


def _finish(spec, body, wall_s, fingerprint):
    from ..core.framework import RunSummary

    summary = RunSummary.from_dict(body)
    cache.store(spec, summary, wall_s=wall_s, fingerprint=fingerprint)
    summary.stats = {"wall_s": wall_s, "cache_hit": False}
    return summary


class CampaignRunner:
    """Execute a set of RunSpecs with caching, fan-out, and events.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means :func:`default_jobs`.
    sink:
        Callable fed a :class:`RunEvent` per orchestration step.
    retries:
        How many times a spec whose worker died is re-attempted in the
        parent process before the run counts as failed.
    fingerprint:
        Model fingerprint override (tests); ``None`` uses the real one.
    strict:
        ``True`` (the default, and the historical behaviour) re-raises
        once a spec exhausts its retries.  ``False`` records the spec in
        :attr:`failures` and keeps the campaign going, so callers can
        report every failing key at the end instead of dying on the
        first one; failed specs are simply absent from the result dict.
    telemetry:
        Optional :class:`~repro.telemetry.session.TelemetrySession`
        (``time_unit="seconds"``); phases and per-run spans are recorded
        through its campaign probe.
    """

    def __init__(self, jobs: int | None = None, sink=None,
                 retries: int = 1, fingerprint: str | None = None,
                 strict: bool = True, telemetry=None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.sink = sink or null_sink
        self.retries = retries
        self.fingerprint = fingerprint
        self.strict = strict
        self.failures: list[tuple[RunSpec, str]] = []
        # Probe resolved once here — wiring time, not per event.
        self._probe = (
            telemetry.campaign_probe() if telemetry is not None else None
        )
        self.counters = {
            "specs": 0, "cache_hits": 0, "executed": 0,
            "retries": 0, "failed": 0, "wall_s": 0.0,
        }

    def run(self, specs) -> dict[RunSpec, "object"]:
        """Run every distinct spec; returns {spec: RunSummary}.

        Failed specs (only possible with ``strict=False``) are left out
        of the mapping and listed in :attr:`failures`.
        """
        ordered = list(dict.fromkeys(specs))
        total = len(ordered)
        self.counters["specs"] += total
        results: dict[RunSpec, object] = {}
        misses: list[RunSpec] = []
        for spec in ordered:
            self._emit("queued", spec, total)
        with self._phase("scan"):
            for spec in ordered:
                summary = cache.load(spec, self.fingerprint)
                if summary is not None:
                    self.counters["cache_hits"] += 1
                    results[spec] = summary
                    self._emit("cache-hit", spec, total)
                else:
                    misses.append(spec)
        if misses:
            with self._phase("execute"):
                if self.jobs > 1 and len(misses) > 1:
                    self._run_parallel(misses, results, total)
                else:
                    self._run_serial(misses, results, total)
        return results

    def _phase(self, name: str):
        if self._probe is not None:
            return self._probe.phase(name)
        return _NULL_PHASE

    # -- execution strategies ------------------------------------------

    def _run_serial(self, misses, results, total) -> None:
        for spec in misses:
            self._emit("started", spec, total)
            outcome = self._attempt(spec, total, _execute)
            if outcome is not None:
                results[spec] = self._record(spec, *outcome, total)

    def _run_parallel(self, misses, results, total) -> None:
        for spec in misses:
            self._emit("started", spec, total)
        pending = list(misses)
        rebuilds = 0
        while pending:
            pending, failure = self._pool_round(pending, results, total)
            if not pending:
                return
            # A worker died mid-lease (SIGKILL, OOM, segfault), which
            # poisons every in-flight future in the pool.  The leases
            # are released back to the queue: rebuild a fresh pool and
            # resubmit, up to `retries` rebuilds, then finish what is
            # left in the parent so nothing is stranded.
            self.counters["retries"] += 1
            for spec in pending:
                self._emit("retried", spec, total, error=failure)
            rebuilds += 1
            if rebuilds > self.retries:
                for spec in pending:
                    outcome = self._attempt(spec, total, _execute, budget=0)
                    if outcome is not None:
                        results[spec] = self._record(spec, *outcome, total)
                return

    def _pool_round(self, pending, results, total):
        """One process-pool pass; returns (unfinished specs, error).

        Specs whose futures were poisoned by a pool break — not by
        their own exception — come back in submission order for the
        caller to requeue.  A run that *raises* in its worker is still
        retried in-parent immediately, exactly as before.
        """
        workers = min(self.jobs, len(pending))
        dropped: set = set()
        failure = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict = {}
            try:
                for spec in pending:
                    futures[pool.submit(_execute, spec)] = spec
            except BrokenExecutor as exc:  # broke during submission
                failure = repr(exc)
                submitted = set(futures.values())
                dropped.update(s for s in pending if s not in submitted)
            for future in as_completed(futures):
                spec = futures[future]
                try:
                    outcome = future.result()
                except BrokenExecutor as exc:
                    failure = repr(exc)
                    dropped.add(spec)
                    continue
                except Exception as exc:  # the run itself raised
                    self._emit("retried", spec, total, error=repr(exc))
                    self.counters["retries"] += 1
                    outcome = self._attempt(
                        spec, total, _execute, budget=self.retries - 1
                    )
                if outcome is not None:
                    results[spec] = self._record(spec, *outcome, total)
        return [s for s in pending if s in dropped], failure

    def _attempt(self, spec, total, execute, budget: int | None = None):
        """Call ``execute`` with the retry budget.

        Exhausting the budget raises under ``strict`` and returns
        ``None`` (after recording the failure) otherwise.
        """
        budget = self.retries if budget is None else budget
        while True:
            try:
                return execute(spec)
            except Exception as exc:
                if budget <= 0:
                    self.counters["failed"] += 1
                    self._emit("failed", spec, total, error=repr(exc))
                    if self.strict:
                        raise
                    self.failures.append((spec, repr(exc)))
                    return None
                budget -= 1
                self.counters["retries"] += 1
                self._emit("retried", spec, total, error=repr(exc))

    def _record(self, spec, body, wall_s, total):
        summary = _finish(spec, body, wall_s, self.fingerprint)
        self.counters["executed"] += 1
        self.counters["wall_s"] += wall_s
        self._emit("finished", spec, total, wall_s=wall_s)
        return summary

    def _emit(self, kind, spec, total, wall_s=None, error=None) -> None:
        event = RunEvent(
            kind=kind,
            spec=spec,
            key=cache.cache_key(spec, self.fingerprint),
            total=total,
            wall_s=wall_s,
            error=error,
        )
        if self._probe is not None:
            self._probe.event(event)
        self.sink(event)


class _NullPhase:
    """No-telemetry stand-in for :class:`PhaseTimer`."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_PHASE = _NullPhase()

"""The single source of truth for coding-scheme knowledge.

Before this module existed, scheme knowledge was smeared across seven
layers: codec singletons and an if-chain in ``pipeline.line_zeros``, the
hand-maintained ``BURST_FORMATS`` dict, the ``POLICIES`` tuple plus
``_REAL_SCHEMES`` in ``repro.core.framework``, and ad-hoc lookups in the
controller, config, decision, fuzz, and CLI layers.  Adding one code
meant editing all of them.  Now a codec module declares everything in
one place::

    @register_codec("nzc", burst_length=9, extra_latency=1,
                    layout="line", pins=72,
                    description="(64, 72) near-zero code")
    class NZCCode(CodingScheme):
        ...

and every downstream surface — burst formats, zero-table precompute,
``MiLConfig`` validation, CLI choices, energy accounting — derives its
view from the registry.  ``repro.core.policies`` is the parallel
registry for decision policies.

Entries come in two flavours:

* **codecs** (``register_codec``): a real :class:`CodingScheme` behind
  the name; ``has_codec`` is true, zero tables can be built, and
  :func:`codec_for` returns the (lazily constructed, cached) instance.
* **burst-format-only** entries (``register_burst_format``): a burst
  length with no code occupying it — the Figure 20 ``bl12``/``bl14``
  sweep points, or ``raw`` (which has no codec object but *does* have a
  zero-count path, supplied via ``count_fn``).  Asking these for a
  codec raises :class:`NoCodecError` with a message that names the
  scheme instead of pretending it is unknown.

The ``layout`` field captures the line-vs-beat distinction of
Figure 12: ``"line"`` codecs (DBI, the LWC family) consume bytes in
cache-line order; ``"beat"`` codecs (MiLC, CAFO) operate on the 8x8
squares that appear when the line is rearranged into bus-beat order,
which is where the spatial correlation they exploit lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = [
    "LINE_BYTES",
    "BurstFormat",
    "CodecInfo",
    "NoCodecError",
    "beat_layout",
    "check_lines",
    "codec_for",
    "codec_schemes",
    "real_schemes",
    "register_burst_format",
    "register_codec",
    "scheme_info",
    "scheme_items",
    "scheme_names",
    "unregister_scheme",
]

LINE_BYTES = 64


class NoCodecError(KeyError):
    """A known burst format has no codec registered behind it."""


@dataclass(frozen=True)
class BurstFormat:
    """How one coding scheme occupies the data bus for a 64-byte line.

    Attributes
    ----------
    scheme:
        Short scheme name.
    burst_length:
        Beats per transaction (two beats per DRAM clock).
    extra_latency:
        Codec cycles added to tCL/tWL while this scheme is active.
    """

    scheme: str
    burst_length: int
    extra_latency: int

    @property
    def bus_cycles(self) -> int:
        """DRAM clock cycles of data-bus occupancy (DDR: 2 beats/cycle)."""
        return (self.burst_length + 1) // 2


def check_lines(lines: np.ndarray) -> np.ndarray:
    """Normalise input to ``(n, 64)`` uint8 cache lines."""
    lines = np.asarray(lines, dtype=np.uint8)
    if lines.ndim == 1:
        lines = lines[None, :]
    if lines.shape[-1] != LINE_BYTES:
        raise ValueError(f"expected {LINE_BYTES}-byte lines, got {lines.shape[-1]}")
    return lines


def beat_layout(lines: np.ndarray) -> np.ndarray:
    """Rearrange lines into bus-beat order (Figure 12(a)).

    A x8 rank ships one byte per chip per beat and chip ``j`` stores
    byte ``j`` of every 64-bit word, so beat ``p`` carries byte ``p`` of
    words 0..7 — the same byte position across eight consecutive words.
    MiLC and CAFO operate on those 64-bit beats as 8x8 squares, which is
    exactly where the spatial correlation they exploit lives (adjacent
    doubles share exponent bytes, adjacent ints share zero bytes).
    """
    lines = check_lines(lines)
    n = lines.shape[0]
    return (
        lines.reshape(n, 8, 8).transpose(0, 2, 1).reshape(n, LINE_BYTES)
    )


@dataclass(frozen=True)
class CodecInfo:
    """One registered scheme: burst packing plus (optionally) a codec.

    Attributes
    ----------
    name:
        Short scheme name (``"dbi"``, ``"milc"``, ``"bl12"``).
    burst_length:
        Beats per transaction (two beats per DRAM clock).
    extra_latency:
        Codec cycles folded into tCL/tWL while the scheme is active.
    layout:
        ``"line"`` (codec consumes cache-line byte order) or ``"beat"``
        (codec consumes bus-beat order; see :func:`beat_layout`).
    pins:
        Data pins the coded burst occupies (64, or 72 with the DBI
        pins) — the width side of the ``code_bits <= pins x
        burst_length`` capacity invariant.
    factory:
        Zero-argument callable building the :class:`CodingScheme`
        instance; ``None`` for burst-format-only entries.
    count_fn:
        Optional ``(n, 64) lines -> (n,) zeros`` override used instead
        of a codec (how ``raw`` counts uncoded zeros).
    description:
        One line for ``repro list`` and generated documentation.
    """

    name: str
    burst_length: int
    extra_latency: int
    layout: str = "line"
    pins: int = 64
    factory: Optional[Callable] = None
    count_fn: Optional[Callable] = None
    description: str = ""
    # Lazily built codec singleton; a mutable cell so the dataclass can
    # stay frozen (the cell's content is not part of identity).
    _cache: list = field(
        default_factory=list, repr=False, compare=False, hash=False
    )

    @property
    def bus_cycles(self) -> int:
        """DRAM clock cycles of data-bus occupancy (DDR: 2 beats/cycle)."""
        return (self.burst_length + 1) // 2

    @property
    def has_codec(self) -> bool:
        """A zero-count path exists (a codec instance, or ``count_fn``)."""
        return self.factory is not None or self.count_fn is not None

    @property
    def codec(self):
        """The codec instance (built once); :class:`NoCodecError` if none."""
        if self.factory is None:
            raise NoCodecError(
                f"no codec registered for scheme {self.name!r}; it is a "
                "burst-format-only entry"
            )
        if not self._cache:
            self._cache.append(self.factory())
        return self._cache[0]

    def as_burst_format(self) -> BurstFormat:
        """The legacy :class:`BurstFormat` view of this entry."""
        return BurstFormat(self.name, self.burst_length, self.extra_latency)

    def line_zeros(self, lines: np.ndarray) -> np.ndarray:
        """Zeros on the bus per ``(n, 64)`` line under this scheme."""
        lines = check_lines(lines)
        if self.count_fn is not None:
            return self.count_fn(lines)
        if self.factory is None:
            raise NoCodecError(
                f"no codec registered for scheme {self.name!r}; it is a "
                "burst-format-only entry (Figure 20 sweep point)"
            )
        arranged = beat_layout(lines) if self.layout == "beat" else lines
        codec = self.codec
        counter = getattr(codec, "count_zeros_bytes", None)
        if counter is not None:
            return counter(arranged)
        # Generic fallback: any CodingScheme works without a vectorised
        # fast path — unpack to bits, count per block, sum per line.
        from .bitops import bytes_to_bits

        bits = bytes_to_bits(arranged)
        blocks = bits.reshape(bits.shape[0], -1, codec.data_bits)
        return codec.count_zeros(blocks).sum(axis=-1, dtype=np.int64)


_REGISTRY: dict[str, CodecInfo] = {}


def register_codec(
    name: str,
    *,
    burst_length: int,
    extra_latency: int,
    layout: str = "line",
    pins: int = 64,
    description: str = "",
    count_fn: Callable | None = None,
):
    """Class/factory decorator registering a codec under ``name``.

    The decorated object must be a zero-argument callable producing a
    :class:`~repro.coding.base.CodingScheme` — the class itself when its
    constructor takes no arguments, or a factory closure for
    parameterised codes (``lambda: CAFOCode(iterations=2)``).  The
    instance is built lazily, once, on first use.
    """
    if layout not in ("line", "beat"):
        raise ValueError(f"layout must be 'line' or 'beat', not {layout!r}")

    def deco(obj):
        _register(CodecInfo(
            name=name,
            burst_length=burst_length,
            extra_latency=extra_latency,
            layout=layout,
            pins=pins,
            factory=obj,
            count_fn=count_fn,
            description=description,
        ))
        return obj

    return deco


def register_burst_format(
    name: str,
    *,
    burst_length: int,
    extra_latency: int,
    pins: int = 64,
    description: str = "",
    count_fn: Callable | None = None,
) -> CodecInfo:
    """Register a codec-less burst format (or a ``count_fn``-only scheme)."""
    info = CodecInfo(
        name=name,
        burst_length=burst_length,
        extra_latency=extra_latency,
        pins=pins,
        count_fn=count_fn,
        description=description,
    )
    _register(info)
    return info


def _register(info: CodecInfo) -> None:
    if info.burst_length < 1:
        raise ValueError(f"{info.name}: burst_length must be positive")
    if info.extra_latency < 0:
        raise ValueError(f"{info.name}: extra_latency must be non-negative")
    existing = _REGISTRY.get(info.name)
    if existing is not None and not _same_registration(existing, info):
        raise ValueError(
            f"coding scheme {info.name!r} is already registered with "
            "different parameters; unregister_scheme() first"
        )
    _REGISTRY[info.name] = info


def _same_registration(a: CodecInfo, b: CodecInfo) -> bool:
    """Idempotent re-registration (module reloads) is tolerated."""
    return (
        a.burst_length == b.burst_length
        and a.extra_latency == b.extra_latency
        and a.layout == b.layout
        and a.pins == b.pins
    )


def unregister_scheme(name: str) -> None:
    """Remove a registration (tests and interactive experimentation)."""
    _REGISTRY.pop(name, None)


def scheme_info(name: str) -> CodecInfo:
    """The registry entry for ``name``; KeyError names the known set."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown coding scheme {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def codec_for(name: str):
    """The codec instance for ``name``.

    Raises ``KeyError`` for unknown names and :class:`NoCodecError`
    (a ``KeyError`` subclass) for registered burst-format-only entries.
    """
    return scheme_info(name).codec


def scheme_names() -> tuple[str, ...]:
    """Every registered scheme name, in registration order."""
    return tuple(_REGISTRY)


def scheme_items() -> tuple[tuple[str, CodecInfo], ...]:
    """(name, info) pairs in registration order."""
    return tuple(_REGISTRY.items())


def real_schemes() -> tuple[str, ...]:
    """Schemes with a zero-count path (codec or ``count_fn``).

    These are the schemes :func:`~repro.coding.pipeline.precompute_line_zeros`
    can build tables for — what the energy model and the write
    optimization consume.
    """
    return tuple(n for n, i in _REGISTRY.items() if i.has_codec)


def codec_schemes() -> tuple[str, ...]:
    """Schemes backed by an actual :class:`CodingScheme` instance."""
    return tuple(n for n, i in _REGISTRY.items() if i.factory is not None)

"""Discovery of the checked-in ``scenarios/`` corpus.

The corpus is the repo's "millions of users" traffic story as data:
``SYN-*`` files are single-variable stress scenarios (one swept knob,
everything else pinned), ``RL-*`` files are production-like mixes.
Naming and authoring conventions live in ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["SCENARIO_SUFFIXES", "default_corpus_dir", "discover"]

SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")


def default_corpus_dir() -> Path:
    """``<repo root>/scenarios`` (may not exist in installed trees)."""
    return Path(__file__).resolve().parents[3] / "scenarios"


def discover(directory=None) -> list[Path]:
    """Scenario files under ``directory`` (default corpus), sorted.

    Sorted by filename so listings, compile output, and CI validation
    walk the corpus in one deterministic order.
    """
    root = default_corpus_dir() if directory is None else Path(directory)
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.iterdir()
        if p.is_file() and p.suffix.lower() in SCENARIO_SUFFIXES
    )

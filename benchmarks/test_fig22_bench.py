"""Benchmark target: Figure 22 MiLC vs 3-LWC mix.

Regenerates the paper's fig22 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig22_scheme_mix import run_experiment


def test_fig22(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

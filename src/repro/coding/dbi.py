"""Data Bus Inversion (DBI) coding — the DDR4 baseline.

DDR4 x8/x16 chips pair every eight data pins with one DBI pin
(Section 2.1.1 of the paper).  When a byte contains more than four 0s,
the ones' complement of the byte is transmitted and the DBI bit is
driven to 0; otherwise the byte is sent as-is with the DBI bit at 1.
This bounds the number of 0s in every 9-bit group to at most four,
which bounds the pseudo-open-drain IO energy.

DBI is the baseline *all* MiL results are normalized against, so its
zero counts show up in the denominator of Figures 16-19.
"""

from __future__ import annotations

import numpy as np

from .base import CodingScheme
from .bitops import byte_popcount_table
from .registry import register_codec

__all__ = ["DBICode", "dbi_zero_table"]


def dbi_zero_table() -> np.ndarray:
    """256-entry table: byte value -> zeros transmitted in its 9-bit group.

    For a byte with ``z`` zeros: if ``z > 4`` the inverted byte plus a
    0-valued DBI bit go on the bus (``8 - z + 1`` zeros); otherwise the
    original byte plus a 1-valued DBI bit (``z`` zeros).
    """
    ones = byte_popcount_table().astype(np.int64)
    zeros = 8 - ones
    return np.where(zeros > 4, (8 - zeros) + 1, zeros).astype(np.uint8)


_DBI_ZEROS = dbi_zero_table()


def _build_codeword_table() -> np.ndarray:
    """(256, 9) table: byte value -> transmitted ``[d7..d0, dbi]`` bits.

    Like the zero table, the whole code fits in 256 entries, so the
    batched encode kernel is a single gather.
    """
    values = np.arange(256, dtype=np.uint8)
    bits = np.unpackbits(values[:, None], axis=-1)
    zeros = 8 - bits.sum(axis=-1)
    invert = (zeros > 4)[:, None]
    body = np.where(invert, 1 - bits, bits)
    flag = np.where(invert, 0, 1).astype(np.uint8)
    return np.concatenate([body, flag], axis=-1).astype(np.uint8)


_DBI_CODEWORDS = _build_codeword_table()


@register_codec(
    "dbi", burst_length=8, extra_latency=0, layout="line", pins=72,
    description="DDR4's native DBI at burst length 8 (the baseline)",
)
class DBICode(CodingScheme):
    """The (8, 9) data bus inversion code from the DDR4 standard.

    The codeword layout is ``[d7..d0, dbi]``: eight (possibly inverted)
    data bits followed by the DBI flag.  ``dbi == 1`` means the data bits
    are original; ``dbi == 0`` means they are inverted.
    """

    name = "dbi"
    data_bits = 8
    code_bits = 9
    # DBI is part of the baseline interface; its latency is already folded
    # into the standard tCL, so MiL charges no *extra* cycles for it.
    extra_latency_cycles = 0

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        byte_vals = np.packbits(data_bits.reshape(-1, 8), axis=-1).ravel()
        return _DBI_CODEWORDS[byte_vals].reshape(lead + (9,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        body = code_bits[..., :8]
        flag = code_bits[..., 8:9]
        return np.where(flag == 1, body, 1 - body)

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.shape[-1] % 8 != 0:
            raise ValueError("DBI zero counting needs whole bytes")
        byte_vals = np.packbits(data_bits, axis=-1)
        return _DBI_ZEROS[byte_vals].sum(axis=-1, dtype=np.int64)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zero count straight from uint8 byte values (fast path).

        Accepts any shape of uint8 bytes; sums over the trailing axis.
        """
        data = np.asarray(data, dtype=np.uint8)
        return _DBI_ZEROS[data].sum(axis=-1, dtype=np.int64)

    def encode_bytes(self, data: np.ndarray) -> np.ndarray:
        """Encode uint8 bytes of shape ``(..., n)`` to ``(..., n, 9)`` bits."""
        data = np.asarray(data, dtype=np.uint8)
        return _DBI_CODEWORDS[data]

    def encode_lines(self, lines: np.ndarray) -> np.ndarray:
        """Byte-domain trace kernel: one gather per line, no unpacking."""
        lines = self._check_lines(lines)
        return _DBI_CODEWORDS[lines].reshape(lines.shape[0], -1)

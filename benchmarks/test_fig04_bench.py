"""Benchmark target: Figure 4 idle gap distribution.

Regenerates the paper's fig04 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig04_idle_gaps import run_experiment


def test_fig04(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

"""Probe objects: the only telemetry surface the model layers see.

A probe is wired into a component (controller, DRAM channel, MiL
policy, campaign runner) **only when telemetry is enabled** — the
module-level flag in :mod:`repro.telemetry` is checked once at wiring
time, and the disabled fast path keeps the component's probe attribute
at ``None`` so instrumentation sites cost a single identity test.  A
probe resolves its instruments from the registry at construction, so
the per-event work is attribute arithmetic plus (optionally) one ring-
buffer append; no name lookups ever happen on the hot path.

Probes observe and never steer: nothing a probe computes feeds back
into simulation state, which is what makes the telemetry-on and
telemetry-off summaries byte-identical.
"""

from __future__ import annotations

from .clock import monotonic_ts
from .registry import MetricRegistry
from .trace import TraceBuffer

__all__ = [
    "ChannelProbe", "CampaignProbe", "PhaseTimer", "ServiceProbe", "SimProbe",
]

# Queue occupancies bucketed at powers of two up to a 64-entry queue.
_QUEUE_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64)
# Data-bus occupancy per burst in DRAM cycles (BL8=4 ... BL16=8).
_BURST_BOUNDS = (4, 5, 6, 7, 8)
# rdyX comparator outcomes: how many other column commands were ready.
_READY_BOUNDS = (0, 1, 2, 4, 8, 16, 32)


class ChannelProbe:
    """Per-channel instrumentation shared by the controller, its DRAM
    channel, and its coding policy.

    The decision modes mirror :class:`repro.core.decision.MiLPolicy`:
    ``long`` (the rdyX window was free), ``base`` (another column
    command was imminent), ``fallback`` (the adaptive uncoded tier).
    Fixed-scheme policies report ``fixed``.  Every issued column command
    reports exactly one mode, so the mode counters sum to the run's
    total bursts.
    """

    __slots__ = (
        "track", "trace", "trace_bus", "trace_decisions",
        "act_cmds", "col_cmds", "pre_cmds", "refreshes",
        "bursts", "burst_cycles", "rdq_occupancy", "wrq_occupancy",
        "drain_transitions", "modes", "write_opt", "lookahead_ready",
    )

    def __init__(
        self,
        registry: MetricRegistry,
        trace: TraceBuffer | None,
        channel: int,
        trace_bus: bool = True,
        trace_decisions: bool = True,
    ):
        ch = f"ch{channel}"
        self.track = ch
        self.trace = trace
        self.trace_bus = trace_bus and trace is not None
        self.trace_decisions = trace_decisions and trace is not None

        self.act_cmds = registry.counter(f"dram.{ch}.bank.act_count")
        self.pre_cmds = registry.counter(f"dram.{ch}.bank.pre_count")
        self.refreshes = registry.counter(f"dram.{ch}.refresh_count")
        self.col_cmds = registry.counter(f"controller.{ch}.row.col_cmds")
        self.bursts = registry.counter(f"dram.{ch}.bus.bursts")
        self.burst_cycles = registry.histogram(
            f"dram.{ch}.bus.burst_cycles", _BURST_BOUNDS
        )
        self.rdq_occupancy = registry.histogram(
            f"controller.{ch}.rdq.occupancy", _QUEUE_BOUNDS
        )
        self.wrq_occupancy = registry.histogram(
            f"controller.{ch}.wrq.occupancy", _QUEUE_BOUNDS
        )
        self.drain_transitions = registry.counter(
            f"controller.{ch}.drain.transitions"
        )
        self.modes = {
            mode: registry.counter(f"core.{ch}.decision.{mode}")
            for mode in ("long", "base", "fallback", "fixed")
        }
        self.write_opt = registry.counter(f"core.{ch}.decision.write_opt")
        self.lookahead_ready = registry.histogram(
            f"core.{ch}.lookahead.others_ready", _READY_BOUNDS
        )

    # -- DRAM channel sites --------------------------------------------
    def activate(self, cycle: int, rank: int) -> None:
        self.act_cmds.inc()

    def precharge(self, cycle: int, rank: int) -> None:
        self.pre_cmds.inc()

    def refresh(self, cycle: int, rank: int) -> None:
        self.refreshes.inc()

    def bus_burst(
        self, start: int, end: int, scheme: str, is_write: bool,
        rank: int, bank_group: int, bank: int,
    ) -> None:
        self.bursts.inc()
        self.col_cmds.inc()
        self.burst_cycles.observe(end - start)
        if self.trace_bus:
            self.trace.emit(
                name=scheme,
                category="bus.write" if is_write else "bus.read",
                phase="X",
                ts=start,
                dur=end - start,
                track=self.track,
                args=(("rank", rank), ("bank_group", bank_group),
                      ("bank", bank)),
            )

    # -- controller sites ----------------------------------------------
    def enqueue(self, read_depth: int, write_depth: int) -> None:
        self.rdq_occupancy.observe(read_depth)
        self.wrq_occupancy.observe(write_depth)

    def drain_transition(self, cycle: int, draining: bool) -> None:
        self.drain_transitions.inc()
        if self.trace is not None:
            self.trace.emit(
                name="drain.enter" if draining else "drain.exit",
                category="controller",
                phase="i",
                ts=cycle,
                track=self.track,
            )

    # -- decision-logic sites ------------------------------------------
    def decision(
        self, cycle: int, mode: str, scheme: str,
        others_ready: int | None = None,
    ) -> None:
        self.modes[mode].inc()
        if others_ready is not None:
            self.lookahead_ready.observe(others_ready)
        if self.trace_decisions:
            self.trace.emit(
                name=f"{mode}:{scheme}",
                category="decision",
                phase="i",
                ts=cycle,
                track=self.track,
            )

    def write_optimized(self) -> None:
        self.write_opt.inc()


class SimProbe:
    """Simulator-level instrumentation (the event-core health counters).

    ``sim.event_queue.pops`` counts every heap pop the event driver
    performed; ``sim.event_queue.stale`` the subset discarded by lazy
    invalidation.  Their ratio is the scheduling-cache hit rate — the
    observable the event-core refactor is tuned against (see DESIGN.md,
    "Event core").  Counters are flushed once per run, after the main
    loop exits, so the hot loop never touches the registry.
    """

    __slots__ = ("pops", "stale")

    def __init__(self, registry: MetricRegistry):
        self.pops = registry.counter("sim.event_queue.pops")
        self.stale = registry.counter("sim.event_queue.stale")

    def event_queue(self, pops: int, stale: int) -> None:
        """Fold one run's final EventQueue counters in."""
        if pops:
            self.pops.inc(pops)
        if stale:
            self.stale.inc(stale)


class PhaseTimer:
    """Scoped wall-clock timer: ``with PhaseTimer(...)``.

    Accumulates elapsed seconds into a ``<name>.wall_s`` gauge and, when
    a trace buffer is attached, emits a complete span on the shared
    monotonic clock (so campaign phases line up with run events).
    """

    def __init__(
        self,
        registry: MetricRegistry,
        trace: TraceBuffer | None,
        name: str,
        track: str = "campaign",
    ):
        self.gauge = registry.gauge(f"{name}.wall_s")
        self.calls = registry.counter(f"{name}.calls")
        self.trace = trace
        self.name = name
        self.track = track
        self._started: float | None = None

    def __enter__(self) -> "PhaseTimer":
        self._started = monotonic_ts()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        ended = monotonic_ts()
        elapsed = ended - self._started
        self.calls.inc()
        self.gauge.set(self.gauge.value + elapsed)
        if self.trace is not None:
            self.trace.emit(
                name=self.name,
                category="phase",
                phase="X",
                ts=self._started,
                dur=elapsed,
                track=self.track,
            )
        self._started = None


class CampaignProbe:
    """Orchestration-level instrumentation for :class:`CampaignRunner`.

    Counts events per kind, spans each executed run from its
    ``started`` event to its ``finished``/``failed`` one (timestamps are
    the shared monotonic clock carried on :class:`RunEvent.ts`), and
    provides :meth:`phase` timers for the runner's internal phases.
    """

    def __init__(self, registry: MetricRegistry, trace: TraceBuffer | None):
        self.registry = registry
        self.trace = trace
        self.kinds = {
            kind: registry.counter(f"campaign.events.{kind.replace('-', '_')}")
            for kind in ("queued", "started", "cache-hit", "finished",
                         "retried", "failed")
        }
        self._open_spans: dict[str, float] = {}  # cache key -> started ts

    def phase(self, name: str) -> PhaseTimer:
        return PhaseTimer(self.registry, self.trace, f"campaign.{name}")

    def event(self, event) -> None:
        """Feed one :class:`~repro.campaign.events.RunEvent`."""
        counter = self.kinds.get(event.kind)
        if counter is not None:
            counter.inc()
        if event.kind == "started":
            self._open_spans[event.key] = event.ts
        elif event.kind in ("finished", "failed", "retried"):
            started = self._open_spans.pop(event.key, None)
            if self.trace is not None and started is not None:
                self.trace.emit(
                    name=event.spec.slug,
                    category=f"run.{event.kind}",
                    phase="X",
                    ts=started,
                    dur=max(0.0, event.ts - started),
                    track="campaign.runs",
                    args=(("key", event.key),),
                )
        elif self.trace is not None and event.kind == "cache-hit":
            self.trace.emit(
                name=event.spec.slug,
                category="run.cache-hit",
                phase="i",
                ts=event.ts,
                track="campaign.runs",
                args=(("key", event.key),),
            )


class ServiceProbe:
    """Instrumentation for the resident campaign service (`repro serve`).

    Counts submissions and lease outcomes, and keeps gauges for the
    queue depth, in-flight leases, busy shards, and connected remote
    workers — the numbers an operator watches to size ``--shards``,
    the remote fleet, and the queue limit.  Like
    every probe it only observes: the scheduler takes no decision from
    these values.
    """

    def __init__(self, registry: MetricRegistry, trace: TraceBuffer | None):
        self.trace = trace
        self.submissions = registry.counter("serve.jobs.submitted")
        self.spec_hits = registry.counter("serve.specs.cache_hits")
        self.outcomes = {
            kind: registry.counter(f"serve.lease.{kind}")
            for kind in ("ok", "err", "died")
        }
        self.queue_depth = registry.gauge("serve.queue.depth")
        self.inflight = registry.gauge("serve.queue.inflight")
        self.busy_shards = registry.gauge("serve.shards.busy")
        self.workers = registry.gauge("serve.workers.connected")

    def submitted(self, job, hits: int) -> None:
        self.submissions.inc()
        if hits:
            self.spec_hits.inc(hits)
        if self.trace is not None:
            self.trace.emit(
                name=job.label,
                category="serve.submit",
                phase="i",
                ts=monotonic_ts(),
                track="serve",
                args=(("job", job.id), ("total", job.total),
                      ("hits", hits)),
            )

    def result(self, kind: str) -> None:
        counter = self.outcomes.get(kind)
        if counter is not None:
            counter.inc()

    def gauges(self, queue_depth: int, inflight: int, shards: int,
               workers: int = 0) -> None:
        self.queue_depth.set(queue_depth)
        self.inflight.set(inflight)
        self.busy_shards.set(shards)
        self.workers.set(workers)

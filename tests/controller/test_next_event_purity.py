"""``ChannelController.next_event`` must be a pure query.

The event heap calls ``next_event`` to (re)schedule a channel and
trusts that asking is free: repeated calls at the same cycle return the
same value and mutate nothing.  Historically refresh-debt accrual
lived inside ``next_event``, so merely *querying* a controller during a
long idle advanced its refresh bookkeeping — the classic observer
effect the event-core rebuild removed (accrual now happens only in
``step`` via ``sync``; see DESIGN.md, "Event core").
"""

from __future__ import annotations

from repro.controller import ChannelController
from repro.dram import DDR4_3200, DDR4_GEOMETRY
from repro.dram.refresh import MAX_POSTPONED

from .test_controller import make_request


def _controller(**kwargs) -> ChannelController:
    return ChannelController(DDR4_3200, DDR4_GEOMETRY, **kwargs)


def _refresh_snapshot(mc):
    return list(mc.refresh._debt), list(mc.refresh._next_due)


class TestIdempotence:
    def test_repeated_calls_same_cycle_agree(self):
        mc = _controller()
        for i in range(6):
            mc.enqueue(make_request(i * 37), now=0)
        for now in (0, 5, DDR4_3200.REFI + 3):
            first = mc.next_event(now)
            second = mc.next_event(now)
            third = mc.next_event(now)
            assert first == second == third

    def test_empty_controller_agrees_too(self):
        mc = _controller()
        now = 2 * DDR4_3200.REFI + 11
        assert mc.next_event(now) == mc.next_event(now)


class TestNoMutation:
    def test_refresh_debt_unchanged_across_elapsed_intervals(self):
        mc = _controller()
        mc.enqueue(make_request(1), now=0)
        # Well past several refresh intervals: a query here must NOT
        # fold the elapsed time into debt.
        now = 3 * DDR4_3200.REFI + 17
        before = _refresh_snapshot(mc)
        mc.next_event(now)
        mc.next_event(now)
        assert _refresh_snapshot(mc) == before

    def test_state_version_unchanged(self):
        mc = _controller()
        mc.enqueue(make_request(2), now=0)
        version = mc._state_version
        mc.next_event(0)
        mc.next_event(DDR4_3200.REFI + 1)
        assert mc._state_version == version

    def test_step_still_accrues(self):
        # The sanctioned mutation point: step -> sync -> accrue.
        mc = _controller()
        now = DDR4_3200.REFI + 1
        before = _refresh_snapshot(mc)
        mc.step(now)
        assert _refresh_snapshot(mc) != before
        assert mc.refresh.any_debt()


class TestNoRefreshMissed:
    def test_stale_due_time_wakes_immediately(self):
        """A query after a long idle returns a wake in the near future.

        ``refresh.next_event()`` may be in the past; the ``now + 1``
        floor converts that into an immediate wake, so the caller
        steps, accrues, and pays the debt — rather than sleeping
        through it.
        """
        mc = _controller()
        now = 5 * DDR4_3200.REFI
        wake = mc.next_event(now)
        assert wake == now + 1
        # Driving from that wake must actually burn the debt down.
        cycle = wake
        for _ in range(4 * MAX_POSTPONED):
            mc.step(cycle)
            nxt = mc.next_event(cycle)
            if nxt is None or not mc.refresh.any_debt():
                break
            cycle = nxt
        assert not mc.refresh.any_debt()

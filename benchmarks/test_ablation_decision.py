"""Ablation: the decision-logic tiers DESIGN.md calls out.

Compares, on the DDR4 server:

* ``milc``          no decision logic at all (always the base code),
* ``mil``           the paper's two-way rdyX logic (Figure 11),
* ``mil-adaptive``  plus the uncoded fallback tier under saturation
                    (the paper's Section 7.5.2 future-work direction).

The trade surfaces exactly as the paper predicts: the adaptive tier buys
back the residual slowdown on saturated benchmarks at the cost of some
zero reduction.
"""

import numpy as np

from repro.analysis import format_table
from repro.campaign import RunSpec
from repro.experiments.runner import EXPERIMENT_ACCESSES_PER_CORE, gather
from repro.system import NIAGARA_SERVER

BENCHES = ("MM", "SWIM", "CG", "GUPS")
POLICIES = ("milc", "mil", "mil-adaptive")


def run_ablation(accesses_per_core=EXPERIMENT_ACCESSES_PER_CORE):
    def spec(bench, policy):
        return RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                       policy=policy, accesses_per_core=accesses_per_core)

    runs = gather(
        spec(bench, policy)
        for bench in BENCHES
        for policy in ("dbi",) + POLICIES
    )
    rows = []
    for bench in BENCHES:
        base = runs[spec(bench, "dbi")]
        row = [bench]
        for policy in POLICIES:
            s = runs[spec(bench, policy)]
            row += [s.cycles / base.cycles,
                    s.total_zeros / max(1, base.total_zeros)]
        rows.append(row)
    return rows


def test_decision_logic_ablation(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    headers = ["benchmark"]
    for policy in POLICIES:
        headers += [f"{policy}:time", f"{policy}:zeros"]

    class _R:
        def format(self):
            return format_table(
                headers, rows,
                title="Ablation: decision-logic tiers (vs DBI baseline)",
            )

    show(_R())

    times = np.array([[r[1], r[3], r[5]] for r in rows])
    zeros = np.array([[r[2], r[4], r[6]] for r in rows])
    # The adaptive tier must not be slower than plain MiL on average...
    assert times[:, 2].mean() <= times[:, 1].mean() + 0.005
    # ...and pays for it with equal-or-more zeros on the bus.
    assert zeros[:, 2].mean() >= zeros[:, 1].mean() - 0.005

"""Figure 16: execution time of every coding scheme, vs the DBI baseline.

Two sub-figures: (a) the DDR4 microserver, (b) the LPDDR3 mobile system.
The paper's claims: MiL's average degradation is below 2 % on DDR4 and
below 4 % on LPDDR3; MiL outperforms CAFO2/CAFO4/MiLC-only on average;
and degradation grows with memory intensity.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER, SNAPDRAGON_MOBILE
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "SCHEMES"]

SCHEMES = ("cafo2", "cafo4", "milc", "mil")

SYSTEMS = (NIAGARA_SERVER.name, SNAPDRAGON_MOBILE.name)


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=system, policy=policy,
                accesses_per_core=accesses_per_core)
        for system in SYSTEMS
        for bench in BENCHMARK_ORDER
        for policy in ("dbi",) + SCHEMES
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))

    def summary(system, bench, policy):
        return runs[RunSpec(benchmark=bench, system=system, policy=policy,
                            accesses_per_core=accesses_per_core)]

    rows = []
    means: dict[tuple[str, str], float] = {}
    for system in SYSTEMS:
        per_scheme = {s: [] for s in SCHEMES}
        for bench in BENCHMARK_ORDER:
            base = summary(system, bench, "dbi")
            row = [system, bench]
            for scheme in SCHEMES:
                ratio = summary(system, bench, scheme).cycles / base.cycles
                row.append(ratio)
                per_scheme[scheme].append(ratio)
            rows.append(row)
        for scheme, ratios in per_scheme.items():
            means[(system, scheme)] = float(np.exp(np.mean(np.log(ratios))))

    result = ExperimentResult(
        experiment="fig16",
        title="Figure 16: execution time normalized to the DBI baseline",
        headers=["system", "benchmark"] + list(SCHEMES),
        rows=rows,
        paper_claim=(
            "MiL degrades performance <2% on DDR4 and <4% on LPDDR3 on "
            "average; highly memory-intensive benchmarks degrade most"
        ),
    )
    for (system, scheme), mean in means.items():
        result.observations[f"geomean_{system}_{scheme}"] = mean
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Benchmark target: Table 4 codec synthesis costs.

Regenerates the paper's table4 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.table4_codec_cost import run_experiment


def test_table4(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

"""Tests for the Figures 4-6 analysis metrics."""

import pytest

from repro.analysis import (
    GAP_BUCKETS,
    bucket_label,
    format_normalized_series,
    format_table,
    idle_gap_histogram,
    pending_split,
    slack_histogram,
)
from repro.dram import DDR4_3200
from repro.dram.channel import BusTransaction


def tx(start, end, rank=0, write=False):
    return BusTransaction(start=start, end=end, issue_cycle=start - 20,
                          is_write=write, rank=rank, bank_group=0, bank=0,
                          scheme="dbi", request_id=0)


class TestBuckets:
    def test_labels(self):
        assert bucket_label(0) == "0"
        assert bucket_label(1) == "1-7"
        assert bucket_label(8) == "8-15"
        assert bucket_label(64) == "64+"

    def test_bucket_edges_match_paper(self):
        assert GAP_BUCKETS == (0, 1, 8, 16, 32, 64)


class TestIdleGaps:
    def test_back_to_back(self):
        hist = idle_gap_histogram([tx(0, 4), tx(4, 8)])
        assert hist["0"] == 1

    def test_gap_bucketing(self):
        log = [tx(0, 4), tx(9, 13), tx(25, 29), tx(200, 204)]
        hist = idle_gap_histogram(log)
        assert hist["1-7"] == 1  # gap 5
        assert hist["8-15"] == 1  # gap 12
        assert hist["64+"] == 1  # gap 171

    def test_total_is_pairs(self):
        log = [tx(i * 50, i * 50 + 4) for i in range(10)]
        hist = idle_gap_histogram(log)
        assert sum(hist.values()) == 9

    def test_unsorted_input_ok(self):
        log = [tx(100, 104), tx(0, 4)]
        hist = idle_gap_histogram(log)
        assert hist["64+"] == 1

    def test_empty_and_single(self):
        assert sum(idle_gap_histogram([]).values()) == 0
        assert sum(idle_gap_histogram([tx(0, 4)]).values()) == 0


class TestSlack:
    def test_same_stream_slack_equals_gap(self):
        hist = slack_histogram([tx(0, 4), tx(14, 18)], DDR4_3200)
        assert hist["8-15"] == 1  # gap 10, no turnaround

    def test_rank_switch_eats_rtrs(self):
        # Gap of 2 with a rank switch: all of it is mandatory bubble.
        log = [tx(0, 4, rank=0), tx(4 + DDR4_3200.RTRS, 8 + DDR4_3200.RTRS,
                                    rank=1)]
        hist = slack_histogram(log, DDR4_3200)
        assert hist["0"] == 1

    def test_direction_switch_eats_rtrs(self):
        log = [tx(0, 4, write=False), tx(9, 13, write=True)]
        hist = slack_histogram(log, DDR4_3200)
        # Gap 5 minus tRTRS 2 = slack 3.
        assert hist["1-7"] == 1

    def test_slack_never_negative(self):
        log = [tx(0, 4, rank=0), tx(4, 8, rank=1)]  # illegal but robust
        hist = slack_histogram(log, DDR4_3200)
        assert hist["0"] == 1


class TestPendingSplit:
    def test_partition(self):
        split = pending_split(cycles=100, busy_cycles=30, pending_cycles=70)
        assert split.utilized == 30
        assert split.idle_pending == 40
        assert split.no_pending == 30
        assert split.total == 100

    def test_fractions_sum_to_one(self):
        split = pending_split(100, 25, 60)
        assert sum(split.fractions().values()) == pytest.approx(1.0)

    def test_busy_nested_in_pending(self):
        # Busy cycles in excess of pending are clamped sanely.
        split = pending_split(100, 50, 20)
        assert split.idle_pending == 0
        assert split.no_pending == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            pending_split(10, 20, 5)

    def test_zero_cycles(self):
        split = pending_split(0, 0, 0)
        assert split.fractions()["utilized"] == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["x", 1.5], ["yy", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert "1.500" in text

    def test_format_table_with_title(self):
        text = format_table(["a"], [["b"]], title="My Title")
        assert text.startswith("My Title")

    def test_normalized_series(self):
        text = format_normalized_series(
            "Fig", ["X", "Y"], {"mil": [0.5, 0.6], "dbi": [1.0, 1.0]}
        )
        assert "mil" in text and "0.500" in text

"""IO-interface energy accounting: the quantity MiL exists to reduce.

On the DDR4 pseudo-open-drain interface every transmitted **0** draws
current from VDDQ to ground for a bit time while **1**s are free
(Section 2.1.1), so IO energy is simply ``zeros * E_zero`` plus a small
per-beat clocking overhead.  On the unterminated LPDDR3 interface the
cost is per wire *flip*, and transition signaling (Section 4.5) makes
the flip count equal the zero count — so the very same accounting
applies with that interface's per-flip constant.

``IOEnergyModel`` turns a bus-transaction log plus precomputed
per-scheme zero tables into joules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dram.channel import BusTransaction
from .constants import DramEnergyParams

__all__ = ["IOEnergyModel", "IOEnergyResult", "BUS_PINS"]

# 64 data pins plus the 8 DBI pins the standard adds (Section 2.1.1).
BUS_PINS = 72


@dataclass(frozen=True)
class IOEnergyResult:
    """IO energy and the counts behind it."""

    energy_j: float
    zeros: int
    beats: int
    transactions: int

    @property
    def zeros_per_transaction(self) -> float:
        return self.zeros / self.transactions if self.transactions else 0.0


class IOEnergyModel:
    """Charges IO energy for a sequence of data-bus transactions."""

    def __init__(self, params: DramEnergyParams):
        self.params = params

    def transaction_energy(self, zeros: int, beats: int) -> float:
        """Energy of one burst given its zero count and beat count."""
        if zeros < 0 or beats < 0:
            raise ValueError("counts must be non-negative")
        return (
            zeros * self.params.energy_per_zero_bit
            + beats * BUS_PINS * self.params.energy_per_beat
        )

    def evaluate(
        self,
        transactions: list[BusTransaction],
        zeros_by_scheme: dict[str, np.ndarray],
    ) -> IOEnergyResult:
        """Total IO energy for a transaction log.

        ``zeros_by_scheme`` maps a coding-scheme name to the per-line
        zero counts (indexed by the transaction's ``request_id``, which
        the simulator sets to the trace line id).
        """
        total_zeros = 0
        total_beats = 0
        for tr in transactions:
            try:
                table = zeros_by_scheme[tr.scheme]
            except KeyError:
                raise KeyError(
                    f"no zero table for scheme {tr.scheme!r}; "
                    f"have {sorted(zeros_by_scheme)}"
                ) from None
            total_zeros += int(table[tr.request_id])
            total_beats += tr.cycles * 2  # DDR: two beats per cycle
        energy = (
            total_zeros * self.params.energy_per_zero_bit
            + total_beats * BUS_PINS * self.params.energy_per_beat
        )
        return IOEnergyResult(
            energy_j=energy,
            zeros=total_zeros,
            beats=total_beats,
            transactions=len(transactions),
        )

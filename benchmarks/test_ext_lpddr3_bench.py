"""Benchmark target: LPDDR3 sensitivity studies (Section 7.5's omission)."""

from repro.experiments import ALL_EXPERIMENTS


def test_ext_lpddr3(benchmark, show):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["ext_lpddr3"], rounds=1, iterations=1
    )
    show(result)
    assert result.rows
    # "Similar characteristics": slowdown grows with burst length, X=0
    # is the worst look-ahead, long-code share anti-correlates with
    # utilization — same shapes as the DDR4 studies.
    assert result.observations["bl_monotone"] == "yes"
    assert result.observations["corr_util_vs_3lwc_share"] < 0

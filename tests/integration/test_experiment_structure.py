"""Structural checks on the big campaign experiments (tiny scale).

These verify row/column shapes and internal consistency of the
Figure 16-22 experiment modules without asserting magnitudes (the
magnitude assertions live in the benchmark harness at full scale).
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.workloads import BENCHMARK_ORDER

TINY = 500


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestCampaignShapes:
    def test_fig16_covers_both_systems(self):
        result = ALL_EXPERIMENTS["fig16"](accesses_per_core=TINY)
        systems = {row[0] for row in result.rows}
        assert systems == {"ddr4-server", "lpddr3-mobile"}
        assert len(result.rows) == 2 * len(BENCHMARK_ORDER)
        for row in result.rows:
            for ratio in row[2:]:
                assert 0.5 < ratio < 3.0

    def test_fig18_totals_are_sums(self):
        result = ALL_EXPERIMENTS["fig18"](accesses_per_core=TINY)
        for row in result.rows:
            categories = row[3:-1]
            total = row[-1]
            assert total == pytest.approx(sum(categories), rel=1e-6)

    def test_fig18_dbi_rows_normalized_to_one(self):
        result = ALL_EXPERIMENTS["fig18"](accesses_per_core=TINY)
        for row in result.rows:
            if row[2] == "dbi":
                assert row[-1] == pytest.approx(1.0)

    def test_fig19_rows_positive(self):
        result = ALL_EXPERIMENTS["fig19"](accesses_per_core=TINY)
        for row in result.rows:
            for ratio in row[2:]:
                assert ratio > 0

    def test_fig21_covers_lookaheads(self):
        from repro.experiments.fig21_lookahead import LOOKAHEADS

        result = ALL_EXPERIMENTS["fig21"](accesses_per_core=TINY)
        assert len(result.headers) == 1 + len(LOOKAHEADS)
        for x in LOOKAHEADS:
            assert f"geomean_X{x}" in result.observations

    def test_validation_covers_suite(self):
        result = ALL_EXPERIMENTS["validation"](accesses_per_core=TINY)
        assert [row[0] for row in result.rows] == list(BENCHMARK_ORDER)
        for row in result.rows:
            read, write, prefetch = row[5], row[6], row[7]
            assert read + write + prefetch == pytest.approx(1.0, abs=1e-6)

    def test_ext_x4_savings_exceed_x8(self):
        result = ALL_EXPERIMENTS["ext_x4"](accesses_per_core=TINY)
        # Against the uncoded x4 baseline MiL must save at least as much
        # as against the DBI x8 baseline, for every benchmark.
        for row in result.rows:
            assert row[1] <= row[2] + 1e-9

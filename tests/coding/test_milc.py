"""Tests for MiLC, the paper's (64, 80) block code."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coding import DBICode, MiLCCode
from repro.coding.bitops import bytes_to_bits, zeros_in_bits

CODE = MiLCCode()

blocks64 = arrays(np.uint8, (64,), elements=st.integers(min_value=0, max_value=1))


class TestRoundTrip:
    @settings(max_examples=200)
    @given(blocks64)
    def test_round_trip(self, block):
        decoded = CODE.decode(CODE.encode(block[None, :]))
        assert (decoded[0] == block).all()

    def test_round_trip_batch(self):
        rng = np.random.default_rng(6)
        blocks = rng.integers(0, 2, size=(500, 64), dtype=np.uint8)
        assert (CODE.decode(CODE.encode(blocks)) == blocks).all()

    def test_structured_blocks(self):
        # Repeated rows, alternating rows, single-bit rows: the patterns
        # each candidate targets.
        patterns = []
        row = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        patterns.append(np.tile(row, 8))
        patterns.append(np.tile(np.array([0, 1] * 4, dtype=np.uint8), 8))
        eye = np.zeros((8, 8), dtype=np.uint8)
        np.fill_diagonal(eye, 1)
        patterns.append(eye.reshape(64))
        blocks = np.stack(patterns)
        assert (CODE.decode(CODE.encode(blocks)) == blocks).all()


class TestZeroBehaviour:
    @settings(max_examples=200)
    @given(blocks64)
    def test_count_matches_encode(self, block):
        count = CODE.count_zeros(block[None, :])[0]
        assert count == zeros_in_bits(CODE.encode(block[None, :]))[0]

    def test_all_zero_block_is_free(self):
        # Every row picks inv-xor / inverted, the xor column collapses
        # under xorbi: a zero block costs almost nothing on the bus.
        block = np.zeros((1, 64), dtype=np.uint8)
        assert CODE.count_zeros(block)[0] <= 2

    def test_all_one_block_is_free(self):
        block = np.ones((1, 64), dtype=np.uint8)
        assert CODE.count_zeros(block)[0] <= 2

    def test_repeated_row_block_is_cheap(self):
        # Spatial correlation is MiLC's selling point: identical rows
        # become all-ones under inv-xor.
        row = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        block = np.tile(row, 8)[None, :]
        # Row 0 cannot use xor; everything else is free modulo mode bits.
        assert CODE.count_zeros(block)[0] <= 6

    @settings(max_examples=100)
    @given(blocks64)
    def test_never_worse_than_trivial_encoding(self, block):
        # The original candidate with mode (0,0) is always available:
        # zeros(data) + 2 per row, plus at worst 1 zero for xorbi.
        trivial = (64 - int(block.sum())) + 16 + 1
        assert CODE.count_zeros(block[None, :])[0] <= trivial

    def test_beats_dbi_on_correlated_data(self):
        # Lines whose rows repeat *within* each 8-byte MiLC block should
        # be far cheaper under MiLC (inv-xor candidates) than under DBI.
        rng = np.random.default_rng(7)
        vals = rng.integers(0, 256, size=(100, 8), dtype=np.uint8)
        lines = np.repeat(vals, 8, axis=1)  # byte v repeated 8x per block
        milc = CODE.count_zeros_bytes(lines)
        dbi = DBICode().count_zeros_bytes(lines)
        assert milc.mean() < 0.5 * dbi.mean()


class TestLayout:
    def test_code_shape(self):
        assert CODE.encode(np.zeros((3, 64), dtype=np.uint8)).shape == (3, 80)

    def test_row0_never_xors(self):
        # Row 0 has no predecessor: its body must be the original or
        # inverted first row, regardless of data.
        rng = np.random.default_rng(8)
        blocks = rng.integers(0, 2, size=(50, 64), dtype=np.uint8)
        codes = CODE.encode(blocks)
        body0 = codes[:, :8]
        inv0 = codes[:, 64]
        expect = np.where(inv0[:, None] == 1, 1 - blocks[:, :8], blocks[:, :8])
        assert (body0 == expect).all()

    def test_count_zeros_bytes_matches(self):
        rng = np.random.default_rng(9)
        lines = rng.integers(0, 256, size=(30, 64), dtype=np.uint8)
        bits = bytes_to_bits(lines).reshape(30, 8, 64)
        assert (
            CODE.count_zeros_bytes(lines) == CODE.count_zeros(bits).sum(axis=1)
        ).all()

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark suite, systems, and coding policies.
``run BENCH [--system S] [--policy P] [--scale N] [--baseline]``
    Simulate one benchmark and print the summary (optionally next to
    the DBI baseline).
``experiment ID [--scale N]``
    Regenerate one of the paper's tables/figures (``fig16``, ``table4``,
    ...; see ``list``).
``campaign [ID ...] [--jobs N] [--scale N] [--no-report]``
    Run every simulation an entire figure set needs as one
    content-addressed campaign — cache hits are free, misses fan out
    over a process pool — with a live progress line, then print the
    figures.
``suite [--system S] [--policy P] [--scale N] [--jobs N]``
    Run the whole 11-benchmark suite under one policy, normalized to
    the DBI baseline.
``trace BENCH OUT.csv [--system S] [--policy P] [--scale N]``
    Simulate one benchmark, dump the data-bus transaction log to CSV or
    JSON-lines, and re-audit the dump against the DDRx protocol rules.
``telemetry PATH.metrics.jsonl``
    Pretty-print a saved telemetry metrics dump.
``fuzz [--schedules N] [--seed S] [--requests R]``
    Drive the controller with seeded adversarial schedules across the
    timing × burst-length × rank × page-policy grid and replay every
    command log through the independent protocol auditor (see
    ``docs/VALIDATION.md``).
``scenario {list,show,compile,run} [PATH ...] [--dry-run] [--jobs N]
[--out PATH]``
    Work with declarative scenario files (``docs/SCENARIOS.md``):
    ``list`` the checked-in ``scenarios/`` corpus, ``show`` one file's
    canonical form, ``compile`` (or ``run --dry-run``) to print the
    expanded RunSpec matrix as byte-stable JSON lines, ``run`` to
    execute the matrix on the campaign engine and write schema-versioned
    ``repro.scenario/v1`` JSONL rows (default
    ``results/scenarios/<NAME>.jsonl``).
``bench [-k PAT] [--smoke] [--list] [--out PATH] [--compare BASE]
[--max-regression PCT] [--update-baseline] [--profile BACKEND]``
    Run the registered wall-clock benchmark suite (see
    ``docs/BENCHMARKS.md``), write a ``BENCH_<timestamp>.json`` report,
    and optionally gate against a committed baseline or dump
    per-benchmark profiles.
``serve [--socket PATH | --host H --port P] [--shards N] [--store DIR]
[--token T] [--metrics-interval S] [--no-journal]``
    Run the long-lived campaign service (``docs/SERVICE.md``): an async
    job API over a lease broker (local shards + remote workers), a
    durable job journal, and a multi-tenant result store.  Foreground;
    stop with Ctrl-C.
``worker --connect ADDR [--token T] [--name N] [--reconnect-delay S]``
    Contribute one remote execution slot to a running service; redials
    until stopped.
``submit SCENARIO [--address A] [--namespace NS] [--priority N]
[--wait] [--results PATH] [--follow]``
    Submit a scenario (name or file path) to a running service.
    ``--wait`` blocks until the job is terminal; ``--results`` writes
    the completed rows as JSONL; ``--follow`` streams job events.
``jobs [ID] [--address A] [--cancel] [--events] [--namespace NS]
[--state S] [--stats]``
    Inspect a running service: list jobs, show or cancel one, stream
    one job's events, or print service stats.

``--jobs`` (or the ``REPRO_JOBS`` environment variable) sets the
process-pool width for campaign-backed commands; ``-j1`` stays serial.

``--codec-impl {reference,numpy,native}`` (or the ``REPRO_CODEC_IMPL``
environment variable) selects the codec backend for every command:
``numpy`` is the vectorised default, ``reference`` the pure-Python
oracle, ``native`` an optional accelerated slot that falls back per
scheme.  All backends are bit-identical, so results never change —
only wall-clock does.

``run`` and ``campaign`` accept ``--audit`` (record each run's DRAM
command log and re-derive every Table 2 constraint from it post-run;
rides outside the run's identity, so cache keys are unchanged) and
``--telemetry`` (record metrics and a
cycle/wall-clock event trace; see ``docs/OBSERVABILITY.md``) and
``--trace-out PATH`` (write ``PATH.trace.json`` in Chrome trace-event
format — open it at https://ui.perfetto.dev — plus
``PATH.metrics.jsonl`` for the ``telemetry`` verb; implies
``--telemetry``; defaults to a stem under ``traces/`` when given no
value).
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .analysis.report import format_table
from .campaign import CampaignRunner, ProgressLine, RunSpec
from .core.framework import run_spec
from .core.policies import policy_names
from .system.machine import SYSTEMS
from .workloads.benchmarks import BENCHMARK_ORDER, BENCHMARKS

__all__ = ["main"]

DEFAULT_SCALE = 4000

# Mirrors repro.bench.timing defaults; repeated here so building the
# argument parser does not import numpy and the whole bench package.
_BENCH_REPEATS = 7
_BENCH_WARMUP = 2

# Mirrors repro.coding.registry (IMPL_ENV / KNOWN_IMPLS) for the same
# reason; registry validates the value again when codecs are built.
_IMPL_ENV = "REPRO_CODEC_IMPL"
_KNOWN_IMPLS = ("reference", "numpy", "native")


def _system(name: str):
    try:
        return SYSTEMS[name]
    except KeyError:
        sys.exit(f"unknown system {name!r}; known: {sorted(SYSTEMS)}")


def _spec(args, benchmark: str, policy: str) -> RunSpec:
    _system(args.system)  # friendly exit on unknown names
    return RunSpec(
        benchmark=benchmark,
        system=args.system,
        policy=policy,
        accesses_per_core=args.scale,
    )


def _telemetry_session(args, label: str, time_unit: str):
    """Build a TelemetrySession when --telemetry/--trace-out ask for one."""
    if not (args.telemetry or args.trace_out):
        return None
    from . import telemetry

    telemetry.set_enabled(True)
    return telemetry.TelemetrySession(label=label, time_unit=time_unit)


def _write_telemetry(stem: str, session) -> None:
    """Write ``<stem>.trace.json`` + ``<stem>.metrics.jsonl``."""
    from .telemetry import write_chrome_trace, write_metrics_jsonl

    for suffix in (".trace.json", ".metrics.jsonl", ".json", ".jsonl"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
            break
    trace_path = write_chrome_trace(f"{stem}.trace.json", session)
    metrics_path = write_metrics_jsonl(f"{stem}.metrics.jsonl", session)
    print(
        f"telemetry: wrote {trace_path} (Perfetto) and {metrics_path} "
        "(repro telemetry)",
        file=sys.stderr,
    )


def cmd_list(_args) -> int:
    print("Benchmarks (Table 3):")
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        print(f"  {name:10s} {spec.suite:14s} {spec.input_desc}")
    print("\nSystems (Table 2):")
    for name in SYSTEMS:
        cfg = SYSTEMS[name]
        print(f"  {name:14s} {cfg.cores} cores @ {cfg.cpu_ghz} GHz, "
              f"{cfg.timing.name}")
    from .coding.registry import scheme_items
    from .core.policies import get_policy

    print("\nCoding schemes:")
    for name, info in scheme_items():
        codec = "codec" if info.has_codec else "format-only"
        print(f"  {name:10s} BL{info.burst_length:<3d} "
              f"+{info.extra_latency}CL  {codec:11s} {info.description}")
    print("\nCoding policies:")
    for name in policy_names():
        print(f"  {name:14s} {get_policy(name).description}")
    from .experiments import ALL_EXPERIMENTS

    print("\nExperiments:")
    print("  " + ", ".join(ALL_EXPERIMENTS))
    from .scenario import ScenarioError, discover, load_scenario

    paths = discover()
    if paths:
        print("\nScenarios (scenarios/):")
        for path in paths:
            try:
                scn = load_scenario(path)
            except ScenarioError:
                print(f"  {path.name:24s} INVALID (see 'repro scenario "
                      f"show {path}')")
                continue
            print(f"  {scn.name:18s} {scn.run_count:4d} runs  "
                  f"{scn.description}")
    return 0


def cmd_run(args) -> int:
    bench = args.benchmark.upper()
    session = _telemetry_session(
        args, f"run-{bench}-{args.policy}", time_unit="cycles"
    )
    report = None
    if args.audit:
        from .audit import AuditReport

        report = AuditReport()
    summary = run_spec(
        _spec(args, bench, args.policy), telemetry=session, audit=report
    )
    rows = [
        ["cycles", summary.cycles],
        ["seconds", f"{summary.seconds:.6f}"],
        ["bus utilization", f"{summary.bus_utilization:.3f}"],
        ["mean read latency", f"{summary.mean_read_latency:.1f}"],
        ["zeros on bus", summary.total_zeros],
        ["scheme mix", str(summary.scheme_counts)],
        ["DRAM energy (uJ)", f"{summary.dram_total_j * 1e6:.2f}"],
        ["system energy (uJ)", f"{summary.system_total_j * 1e6:.2f}"],
    ]
    if session is not None:
        table = session.stats_table()
        modes = table.get("decision_modes", {})
        rows += [
            ["telemetry: bursts", table["bursts"]],
            ["telemetry: activates", table["act_count"]],
            ["telemetry: drain transitions", table["drain_transitions"]],
            ["telemetry: decision mix",
             ", ".join(f"{m}={n}" for m, n in sorted(modes.items())) or "-"],
        ]
    if args.baseline and args.policy != "dbi":
        base = run_spec(_spec(args, args.benchmark.upper(), "dbi"))
        rows += [
            ["vs DBI: time", f"{summary.cycles / base.cycles:.3f}"],
            ["vs DBI: zeros",
             f"{summary.total_zeros / max(1, base.total_zeros):.3f}"],
            ["vs DBI: DRAM energy",
             f"{summary.dram_total_j / base.dram_total_j:.3f}"],
        ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{summary.benchmark} on {summary.system} [{args.policy}]",
    ))
    if session is not None and args.trace_out:
        _write_telemetry(args.trace_out, session)
    if report is not None:
        print(report.render(), file=sys.stderr)
        if not report.clean:
            return 1
    return 0


def cmd_experiment(args) -> int:
    from .experiments import ALL_EXPERIMENTS

    try:
        fn = ALL_EXPERIMENTS[args.id]
    except KeyError:
        sys.exit(
            f"unknown experiment {args.id!r}; known: "
            + ", ".join(ALL_EXPERIMENTS)
        )
    kwargs = {}
    if args.scale is not None:
        kwargs["accesses_per_core"] = args.scale
    result = fn(**kwargs)
    print(result.format())
    if args.chart and result.rows and len(result.headers) >= 2:
        from .analysis.charts import bar_chart

        numeric_cols = [
            i for i in range(1, len(result.headers))
            if all(isinstance(r[i], (int, float)) for r in result.rows)
        ]
        if numeric_cols:
            col = numeric_cols[0]
            print()
            print(bar_chart(
                [str(r[0]) for r in result.rows],
                [float(r[col]) for r in result.rows],
                title=f"{result.headers[col]} (first numeric column)",
                reference=1.0,
            ))
    return 0


def cmd_campaign(args) -> int:
    from .experiments import ALL_EXPERIMENTS, EXPERIMENT_PLANS

    ids = args.ids or list(ALL_EXPERIMENTS)
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        sys.exit(
            f"unknown experiment(s) {', '.join(unknown)}; known: "
            + ", ".join(ALL_EXPERIMENTS)
        )
    kwargs = {}
    if args.scale is not None:
        kwargs["accesses_per_core"] = args.scale

    specs: list[RunSpec] = []
    for exp_id in ids:
        planner = EXPERIMENT_PLANS.get(exp_id)
        if planner is not None:
            specs.extend(planner(**kwargs))

    session = _telemetry_session(args, "campaign", time_unit="seconds")
    sink = ProgressLine()
    runner = CampaignRunner(
        jobs=args.jobs, sink=sink, strict=False, telemetry=session
    )
    # --audit rides on an environment opt-in so worker processes inherit
    # it and cache keys stay byte-identical (tests call main()
    # in-process, so the previous value is restored either way).
    import os

    from .audit import AUDIT_ENV

    previous_audit = os.environ.get(AUDIT_ENV)
    if args.audit:
        os.environ[AUDIT_ENV] = "1"
    try:
        runner.run(specs)
    finally:
        if args.audit:
            if previous_audit is None:
                os.environ.pop(AUDIT_ENV, None)
            else:
                os.environ[AUDIT_ENV] = previous_audit
    sink.close()
    c = runner.counters
    print(
        f"campaign: {c['specs']} runs over {len(ids)} experiment(s) — "
        f"{c['cache_hits']} cache hits, {c['executed']} executed "
        f"({c['wall_s']:.1f}s simulated work, {runner.jobs} job(s), "
        f"{c['retries']} retries, {c['failed']} failed)",
        file=sys.stderr,
    )
    if session is not None and args.trace_out:
        _write_telemetry(args.trace_out, session)

    if runner.failures:
        # A progress line scrolls; the verdict must not.  Every failing
        # spec is named by its content-addressed cache key so the run
        # can be retried or investigated precisely.
        print(
            f"campaign FAILED: {len(runner.failures)} run(s) died after "
            "retries:",
            file=sys.stderr,
        )
        from .campaign import cache

        for spec, error in runner.failures:
            print(
                f"  {cache.cache_key(spec, runner.fingerprint)}: {error}",
                file=sys.stderr,
            )
        return 1

    if not args.no_report:
        for exp_id in ids:
            print()
            print(ALL_EXPERIMENTS[exp_id](**kwargs).format())
    return 0


def cmd_suite(args) -> int:
    config = _system(args.system)
    specs = {
        (bench, policy): _spec(args, bench, policy)
        for bench in BENCHMARK_ORDER
        for policy in ("dbi", args.policy)
    }
    sink = ProgressLine()
    results = CampaignRunner(jobs=args.jobs, sink=sink).run(specs.values())
    sink.close()
    rows = []
    for bench in BENCHMARK_ORDER:
        base = results[specs[(bench, "dbi")]]
        s = results[specs[(bench, args.policy)]]
        rows.append([
            bench,
            base.bus_utilization,
            s.cycles / base.cycles,
            s.total_zeros / max(1, base.total_zeros),
            s.dram_total_j / base.dram_total_j if s.dram_energy else
            float("nan"),
        ])
    print(format_table(
        ["benchmark", "base_util", "time", "zeros", "dram_energy"],
        rows,
        title=f"suite on {config.name}: {args.policy} vs DBI",
    ))
    return 0


def cmd_trace(args) -> int:
    import dataclasses

    from .analysis.tracedump import (
        audit_dump,
        dump_transactions_csv,
        dump_transactions_jsonl,
    )
    from .coding.pipeline import precompute_line_zeros
    from .coding.registry import real_schemes
    from .core.framework import make_policy_factory
    from .system.simulator import simulate
    from .workloads.benchmarks import build_trace

    config = _system(args.system)
    trace = build_trace(args.benchmark.upper(), config,
                        accesses_per_core=args.scale)
    zeros = precompute_line_zeros(
        trace.line_data, real_schemes(), digest=trace.line_digest
    )
    result = simulate(trace, config,
                      make_policy_factory(args.policy, zeros))
    # Each channel has its own data bus, so each gets its own dump and
    # its own audit (a merged file would interleave unrelated buses).
    stem, dot, suffix = args.output.rpartition(".")
    if not dot:
        stem, suffix = args.output, "csv"
    failed = False
    for ch, mc in enumerate(result.controllers):
        path = f"{stem}.ch{ch}.{suffix}"
        if suffix == "csv":
            count = dump_transactions_csv(path, mc.channel.transactions)
        else:
            count = dump_transactions_jsonl(path, mc.channel.transactions)
        report = audit_dump(path, config.timing)
        status = "clean" if report["clean"] else "VIOLATIONS"
        print(f"channel {ch}: {count} transactions -> {path} "
              f"(audit: {status}, schemes: {report['schemes']})")
        if not report["clean"]:
            failed = True
            for problem in report["violations"][:5]:
                print(f"  {problem}")
    del dataclasses  # imported for symmetry with other commands
    return 1 if failed else 0


def cmd_bench(args) -> int:
    from pathlib import Path

    from . import bench

    defs = bench.select(args.keyword, smoke_only=args.smoke)
    if not defs:
        known = ", ".join(sorted(bench.collect()))
        sys.exit(f"no benchmarks match {args.keyword!r}; known: {known}")

    if args.list:
        for d in defs:
            flag = "smoke" if d.smoke else "     "
            print(f"{d.name:28s} {flag}  {d.description}")
        return 0

    if args.profile:
        written = []
        for d in defs:
            print(f"profiling {d.name} [{args.profile}]", file=sys.stderr)
            try:
                written += bench.profile_benchmark(
                    d, args.profile, args.profile_dir
                )
            except bench.BenchError as exc:
                sys.exit(str(exc))
        for path in written:
            print(path)
        return 0

    def fmt(ns: float) -> str:
        if ns >= 1e6:
            return f"{ns / 1e6:9.2f} ms"
        if ns >= 1e3:
            return f"{ns / 1e3:9.2f} us"
        return f"{ns:9.0f} ns"

    results = []
    for d in defs:
        measurement = bench.measure(
            d.build(), repeats=args.repeats, warmup=args.warmup,
            inner_ops=d.inner_ops,
        )
        results.append(bench.result_entry(d, measurement))
        print(
            f"{d.name:28s} min {fmt(measurement.min_ns)}/op   "
            f"median {fmt(measurement.median_ns)}/op   "
            f"{measurement.ops_per_sec:12.0f} ops/s",
            file=sys.stderr,
        )
    doc = bench.build_report(
        results,
        protocol={"repeats": args.repeats, "warmup": args.warmup},
    )

    if args.update_baseline:
        target = Path(__file__).resolve().parents[2] / "benchmarks"
        out_path = bench.write_report(target / "baseline.json", doc)
    else:
        out_path = bench.write_report(args.out, doc)
    print(f"wrote {out_path}", file=sys.stderr)

    if args.compare:
        try:
            baseline = bench.load_report(args.compare)
        except bench.BenchError as exc:
            sys.exit(str(exc))
        comparison = bench.compare_reports(
            doc, baseline, max_regression_pct=args.max_regression
        )
        print(bench.format_comparison(comparison))
        if not comparison.ok:
            return 1
    return 0


def cmd_fuzz(args) -> int:
    from .audit.fuzz import combo_grid, run_corpus

    grid = len(combo_grid())
    dirty = 0
    commands = 0
    for i, res in enumerate(
        run_corpus(args.schedules, requests=args.requests,
                   base_seed=args.seed)
    ):
        commands += res.commands
        if not res.clean:
            dirty += 1
            print(f"VIOLATIONS in schedule {i} ({res.label}, "
                  f"seed {res.seed}):", file=sys.stderr)
            for v in res.violations[:10]:
                print(f"  {v}", file=sys.stderr)
    verdict = "clean" if not dirty else f"{dirty} DIRTY"
    print(
        f"fuzz: {args.schedules} schedules over {grid} combos "
        f"(timing x burst lengths x ranks x page policy), "
        f"{commands} commands audited, {verdict}",
        file=sys.stderr,
    )
    return 1 if dirty else 0


def cmd_telemetry(args) -> int:
    from .analysis.telemetry_view import render_metrics
    from .telemetry import load_metrics_jsonl

    try:
        payload = load_metrics_jsonl(args.path)
    except (OSError, ValueError) as exc:
        sys.exit(f"cannot read metrics dump {args.path!r}: {exc}")
    print(render_metrics(payload))
    return 0


def cmd_scenario(args) -> int:
    import json
    from pathlib import Path

    from .scenario import (
        ScenarioError,
        compile_scenario,
        discover,
        load_scenario,
        normalized,
        run_scenario,
        scenario_digest,
        write_rows,
    )

    if args.action == "list":
        paths = discover(args.dir)
        if not paths:
            where = args.dir or "scenarios/"
            print(f"no scenario files under {where}", file=sys.stderr)
            return 0
        for path in paths:
            try:
                scn = load_scenario(path)
            except ScenarioError as exc:
                print(f"{path.name:24s} INVALID: {exc}")
                continue
            print(f"{scn.name:18s} {scn.run_count:4d} runs  {path.name:24s} "
                  f"{scn.description}")
        return 0

    paths = [Path(p) for p in args.paths] or discover(args.dir)
    if not paths:
        sys.exit(f"scenario {args.action}: no scenario files given and "
                 "none found (see 'repro scenario list')")
    try:
        scenarios = [load_scenario(p) for p in paths]
    except (ScenarioError, OSError) as exc:
        sys.exit(str(exc))

    if args.action == "show":
        for scn in scenarios:
            print(json.dumps(normalized(scn), indent=2, sort_keys=True))
            print(f"# {scn.name}: digest {scenario_digest(scn)}, "
                  f"{scn.run_count} grid point(s)", file=sys.stderr)
        return 0

    if args.action == "compile" or args.dry_run:
        # One sorted-key JSON line per spec in compile order: the output
        # is byte-stable for a given scenario, so CI and users can diff
        # expansions across revisions.
        for scn in scenarios:
            for spec in compile_scenario(scn):
                print(json.dumps(
                    {"scenario": scn.name, "spec": spec.canonical()},
                    sort_keys=True,
                ))
        return 0

    if args.out and len(scenarios) > 1:
        sys.exit("scenario run: --out only applies to a single scenario "
                 "(each scenario writes its own JSONL)")

    # run: same environment-scoped --audit plumbing as cmd_campaign so
    # worker processes inherit the opt-in without touching cache keys.
    from .audit import AUDIT_ENV

    previous_audit = os.environ.get(AUDIT_ENV)
    if args.audit:
        os.environ[AUDIT_ENV] = "1"
    failed = False
    try:
        for scn in scenarios:
            sink = ProgressLine()
            result = run_scenario(scn, jobs=args.jobs, sink=sink)
            sink.close()
            out = Path(args.out) if args.out else (
                Path("results") / "scenarios" / f"{scn.name}.jsonl"
            )
            write_rows(out, result.rows)
            c = result.counters
            print(
                f"scenario {scn.name}: {c['specs']} runs — "
                f"{c['cache_hits']} cache hits, {c['executed']} executed "
                f"({c['wall_s']:.1f}s simulated work, {c['retries']} "
                f"retries, {c['failed']} failed) -> {out}",
                file=sys.stderr,
            )
            if not result.ok:
                failed = True
                from .campaign import cache

                print(f"scenario {scn.name} FAILED: "
                      f"{len(result.failures)} run(s) died after retries:",
                      file=sys.stderr)
                for spec, error in result.failures:
                    print(f"  {cache.cache_key(spec)}: {error}",
                          file=sys.stderr)
    finally:
        if args.audit:
            if previous_audit is None:
                os.environ.pop(AUDIT_ENV, None)
            else:
                os.environ[AUDIT_ENV] = previous_audit
    return 1 if failed else 0


# Where `repro submit`/`repro jobs` look for a service when --address
# is not given.  `repro serve` prints the actual bound address.
_ADDR_ENV = "REPRO_SERVE_ADDRESS"
_DEFAULT_ADDR = "127.0.0.1:7823"


def _serve_address(args) -> str:
    return args.address or os.environ.get(_ADDR_ENV) or _DEFAULT_ADDR


def _serve_client(args):
    from .serve.client import ServeClient

    return ServeClient(_serve_address(args))


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from .serve.server import ServeAPI
    from .serve.service import CampaignService, ServiceConfig

    from .serve.protocol import TOKEN_ENV

    config = ServiceConfig(
        store_root=args.store,
        shards=args.shards,
        queue_limit=args.queue_limit,
        quota=args.quota,
        retries=args.retries,
        worker_token=args.token or os.environ.get(TOKEN_ENV) or None,
        heartbeat_s=args.heartbeat,
        lease_timeout_s=args.lease_timeout,
        journal=not args.no_journal,
        metrics_interval_s=args.metrics_interval,
        metrics_out=args.metrics_out,
    )

    async def _amain() -> None:
        service = CampaignService(config)
        api = ServeAPI(service)
        await service.start()
        try:
            if args.socket:
                await api.listen_unix(args.socket)
                where = f"unix:{args.socket}"
            else:
                name = await api.listen_tcp(args.host, args.port)
                where = f"{name[0]}:{name[1]}"
            print(
                f"repro serve: listening on {where} "
                f"({service.shards} shard(s), store "
                f"{service.store.root})",
                file=sys.stderr, flush=True,
            )
            if service.resume_report:
                r = service.resume_report
                print(
                    f"repro serve: journal resumed {r['jobs']} job(s) — "
                    f"{r['requeued']} key(s) requeued, "
                    f"{r['settled']} settled from cache",
                    file=sys.stderr, flush=True,
                )
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
            await stop.wait()
            print("repro serve: shutting down", file=sys.stderr)
        finally:
            # Service first: detaching remote workers ends their
            # long-lived connections so api.close() cannot block on
            # open handlers (3.12+ waits for them).
            await service.stop()
            await api.close()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_worker(args) -> int:
    import asyncio
    import signal

    from .serve.protocol import TOKEN_ENV
    from .serve.worker import WorkerAuthError, WorkerDaemon

    daemon = WorkerDaemon(
        args.connect,
        token=args.token or os.environ.get(TOKEN_ENV) or None,
        name=args.name,
        reconnect_delay_s=args.reconnect_delay,
        max_connects=1 if args.once else None,
    )

    async def _amain() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, daemon.request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"repro worker: {daemon.name} dialing {args.connect}",
            file=sys.stderr, flush=True,
        )
        await daemon.run()
        print(
            f"repro worker: {daemon.name} exiting "
            f"({daemon.completed} lease(s) completed, "
            f"{daemon.failed} failed)",
            file=sys.stderr, flush=True,
        )

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    except WorkerAuthError as exc:
        sys.exit(str(exc))
    return 0


def _resolve_scenario(ref: str):
    """A scenario by file path, or by name within the corpus."""
    from pathlib import Path

    from .scenario import ScenarioError, discover, load_scenario

    path = Path(ref)
    if path.exists():
        return load_scenario(path)
    for candidate in discover():
        try:
            scn = load_scenario(candidate)
        except ScenarioError:
            continue
        if scn.name == ref:
            return scn
    sys.exit(f"no scenario file {ref!r} and no corpus scenario named "
             f"{ref!r} (see 'repro scenario list')")


def cmd_submit(args) -> int:
    import json

    from .scenario import normalized
    from .serve.client import BackPressureError, ServeError

    scn = _resolve_scenario(args.scenario)
    client = _serve_client(args)
    try:
        job = client.submit_scenario(
            normalized(scn),
            namespace=args.namespace,
            priority=args.priority,
            label=args.label or scn.name,
        )
    except BackPressureError as exc:
        sys.exit(f"service queue is full, try again later ({exc})")
    except (ServeError, OSError) as exc:
        sys.exit(f"cannot submit to {_serve_address(args)}: {exc}")
    print(
        f"submitted {job['id']} ({job['label']}): {job['total']} run(s), "
        f"{job['counters']['cache_hits']} already cached",
        file=sys.stderr,
    )
    if not (args.wait or args.follow or args.results):
        print(job["id"])
        return 0

    if args.follow:
        for event in client.events(job["id"]):
            print(json.dumps(event, sort_keys=True))
    final = client.wait(job["id"])
    c = final["counters"]
    print(
        f"job {final['id']} {final['state']}: {final['done']}/"
        f"{final['total']} done — {c['cache_hits']} cache hits, "
        f"{c['executed']} executed, {c['retries']} retries, "
        f"{c['failed']} failed",
        file=sys.stderr,
    )
    if args.results:
        rows = client.results(final["id"])
        from pathlib import Path

        out = Path(args.results)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"wrote {len(rows)} result row(s) -> {out}", file=sys.stderr)
    return 0 if final["state"] == "done" else 1


def cmd_jobs(args) -> int:
    import json

    from .serve.client import ServeError

    client = _serve_client(args)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.job_id and args.cancel:
            job = client.cancel(args.job_id)
            print(f"job {job['id']} -> {job['state']}")
            return 0
        if args.job_id and args.events:
            for event in client.events(args.job_id, since=args.since):
                print(json.dumps(event, sort_keys=True))
            return 0
        if args.job_id:
            print(json.dumps(client.job(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        jobs = client.jobs(namespace=args.namespace, state=args.state)
    except (ServeError, OSError) as exc:
        sys.exit(f"cannot reach service at {_serve_address(args)}: {exc}")
    if not jobs:
        print("no jobs", file=sys.stderr)
        return 0
    for job in jobs:
        c = job["counters"]
        print(
            f"{job['id']:6s} {job['state']:9s} {job['namespace']:12s} "
            f"{job['done']:4d}/{job['total']:<4d} "
            f"hits={c['cache_hits']} exec={c['executed']} "
            f"fail={c['failed']}  {job['label'] or ''}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MiL (More is Less) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    parser.add_argument(
        "--codec-impl", default=None, choices=_KNOWN_IMPLS,
        help="codec backend for this invocation (overrides the "
             f"{_IMPL_ENV} environment variable); every backend is "
             "bit-identical, so this only affects wall-clock",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Resolved at parser-build time, not import time, so policies
    # registered by the calling program (examples/custom_codec.py) are
    # accepted by --policy.
    policies = policy_names()

    sub.add_parser("list", help="show benchmarks/systems/policies")

    def add_telemetry_flags(p, default_stem):
        p.add_argument(
            "--telemetry", action="store_true",
            help="record metrics and an event trace for this command",
        )
        p.add_argument(
            "--trace-out", nargs="?", const=default_stem, default=None,
            metavar="PATH",
            help="write PATH.trace.json (Perfetto) and PATH.metrics.jsonl; "
                 f"implies --telemetry (default stem: {default_stem})",
        )

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark")
    p_run.add_argument("--system", default="ddr4-server")
    p_run.add_argument("--policy", default="mil", choices=policies)
    p_run.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    p_run.add_argument("--baseline", action="store_true",
                       help="also run and compare against DBI")
    p_run.add_argument("--audit", action="store_true",
                       help="record the command log and re-derive every "
                            "DRAM protocol constraint post-run")
    add_telemetry_flags(p_run, "traces/run")

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("id")
    p_exp.add_argument("--scale", type=int, default=None)
    p_exp.add_argument("--chart", action="store_true",
                       help="render a unicode bar chart of the result")

    p_camp = sub.add_parser(
        "campaign",
        help="run a whole figure set as one parallel cached campaign",
    )
    p_camp.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids (default: all)")
    p_camp.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    p_camp.add_argument("--scale", type=int, default=None)
    p_camp.add_argument("--no-report", action="store_true",
                        help="only warm the cache; skip printing figures")
    p_camp.add_argument("--audit", action="store_true",
                        help="audit every executed run's command log "
                             "(cache hits are not re-simulated)")
    add_telemetry_flags(p_camp, "traces/campaign")

    p_suite = sub.add_parser("suite", help="run all 11 benchmarks")
    p_suite.add_argument("--system", default="ddr4-server")
    p_suite.add_argument("--policy", default="mil", choices=policies)
    p_suite.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    p_suite.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS or 1)")

    p_trace = sub.add_parser(
        "trace", help="dump and audit a run's bus-transaction log"
    )
    p_trace.add_argument("benchmark")
    p_trace.add_argument("output", help=".csv or .jsonl path")
    p_trace.add_argument("--system", default="ddr4-server")
    p_trace.add_argument("--policy", default="mil", choices=policies)
    p_trace.add_argument("--scale", type=int, default=DEFAULT_SCALE)

    p_tele = sub.add_parser(
        "telemetry", help="pretty-print a saved telemetry metrics dump"
    )
    p_tele.add_argument("path", help="a *.metrics.jsonl file")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the controller with seeded schedules and audit "
             "every command log (see docs/VALIDATION.md)",
    )
    p_fuzz.add_argument("--schedules", type=int, default=96,
                        help="schedules to run (default 96; the grid "
                             "has 48 combos)")
    p_fuzz.add_argument("--requests", type=int, default=24,
                        help="requests per schedule (default 24)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="corpus base seed (default 0)")

    p_scn = sub.add_parser(
        "scenario",
        help="compile/run declarative scenario files "
             "(see docs/SCENARIOS.md)",
    )
    p_scn.add_argument("action", choices=("list", "show", "compile", "run"),
                       help="list the corpus, show a file's canonical "
                            "form, compile the spec matrix, or run it")
    p_scn.add_argument("paths", nargs="*", metavar="PATH",
                       help="scenario file(s) for show/compile/run "
                            "(default: the whole corpus)")
    p_scn.add_argument("--dir", default=None, metavar="DIR",
                       help="corpus directory when no PATH is given "
                            "(default: scenarios/)")
    p_scn.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1)")
    p_scn.add_argument("--out", default=None, metavar="PATH",
                       help="JSONL output for 'run' with one scenario "
                            "(default: results/scenarios/<NAME>.jsonl)")
    p_scn.add_argument("--dry-run", action="store_true",
                       help="print the expanded spec matrix instead of "
                            "running")
    p_scn.add_argument("--audit", action="store_true",
                       help="audit every executed run's command log "
                            "(cache hits are not re-simulated)")

    p_bench = sub.add_parser(
        "bench", help="run the wall-clock benchmark suite"
    )
    p_bench.add_argument(
        "-k", dest="keyword", default=None, metavar="PATTERN",
        help="only benchmarks whose name contains PATTERN (or glob)",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="only the quick smoke subset (what CI runs)",
    )
    p_bench.add_argument(
        "--list", action="store_true",
        help="list matching benchmarks instead of running them",
    )
    p_bench.add_argument(
        "--out", default=".", metavar="PATH",
        help="report file, or a directory to write BENCH_<ts>.json into "
             "(default: current directory)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=_BENCH_REPEATS,
        help=f"timed samples per benchmark (default {_BENCH_REPEATS})",
    )
    p_bench.add_argument(
        "--warmup", type=int, default=_BENCH_WARMUP,
        help=f"warmup rounds per benchmark (default {_BENCH_WARMUP})",
    )
    p_bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against a baseline report; exit non-zero on "
             "regressions",
    )
    p_bench.add_argument(
        "--max-regression", type=float, default=20.0, metavar="PCT",
        help="allowed slowdown vs baseline, percent (default 20)",
    )
    p_bench.add_argument(
        "--update-baseline", action="store_true",
        help="write the report to benchmarks/baseline.json instead",
    )
    p_bench.add_argument(
        "--profile", default=None, choices=("cprofile", "pyinstrument"),
        help="dump per-benchmark profiles instead of timing",
    )
    p_bench.add_argument(
        "--profile-dir", default="profiles", metavar="DIR",
        help="directory for profile output (default: profiles/)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived campaign service (docs/SERVICE.md)",
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a Unix socket instead of TCP")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7823,
                         help="TCP port (0 = pick a free one)")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="worker processes (default: "
                              "REPRO_SERVE_SHARDS or 2; 0 = inline)")
    p_serve.add_argument("--store", default=".cache/serve", metavar="DIR",
                         help="result store root (default: .cache/serve)")
    p_serve.add_argument("--queue-limit", type=int, default=4096,
                         help="max outstanding work units before 429s")
    p_serve.add_argument("--quota", type=int, default=4096,
                         help="cached results kept per namespace")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="retry budget per work unit (default 2)")
    p_serve.add_argument("--token", default=None, metavar="TOKEN",
                         help="shared token remote workers must present "
                              "(default: $REPRO_SERVE_TOKEN; unset = "
                              "accept any)")
    p_serve.add_argument("--heartbeat", type=float, default=10.0,
                         metavar="SECONDS",
                         help="remote-worker ping interval; a worker "
                              "silent for 3 intervals is detached "
                              "(default 10)")
    p_serve.add_argument("--lease-timeout", type=float, default=600.0,
                         metavar="SECONDS",
                         help="hard cap on one remote lease before the "
                              "worker is presumed wedged (default 600)")
    p_serve.add_argument("--no-journal", action="store_true",
                         help="disable the durable job journal "
                              "(no restart-resume)")
    p_serve.add_argument("--metrics-interval", type=float, default=0.0,
                         metavar="SECONDS",
                         help="write a /v1/metrics sample to JSONL every "
                              "SECONDS (0 = off)")
    p_serve.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="rolling metrics JSONL path (default: "
                              "<store>/metrics.jsonl)")

    p_worker = sub.add_parser(
        "worker",
        help="contribute one remote execution slot to a service",
    )
    p_worker.add_argument("--connect", required=True, metavar="ADDR",
                          help="service address, unix:/path or host:port")
    p_worker.add_argument("--token", default=None, metavar="TOKEN",
                          help="shared token (default: $REPRO_SERVE_TOKEN)")
    p_worker.add_argument("--name", default=None,
                          help="worker name (default: <host>-<pid>)")
    p_worker.add_argument("--reconnect-delay", type=float, default=2.0,
                          metavar="SECONDS",
                          help="redial pause after a lost connection "
                               "(default 2)")
    p_worker.add_argument("--once", action="store_true",
                          help="serve a single connection, then exit "
                               "(no redial loop)")

    def add_address_flag(p):
        p.add_argument("--address", default=None, metavar="ADDR",
                       help="service address, unix:/path or host:port "
                            f"(default: {_ADDR_ENV} or {_DEFAULT_ADDR})")

    p_submit = sub.add_parser(
        "submit", help="submit a scenario to a running service"
    )
    p_submit.add_argument("scenario",
                          help="scenario file path or corpus name")
    add_address_flag(p_submit)
    p_submit.add_argument("--namespace", default="default",
                          help="tenant namespace for the result store")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    p_submit.add_argument("--label", default=None,
                          help="job label (default: the scenario name)")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job is terminal")
    p_submit.add_argument("--results", default=None, metavar="PATH",
                          help="write completed rows as JSONL "
                               "(implies --wait)")
    p_submit.add_argument("--follow", action="store_true",
                          help="stream job events to stdout "
                               "(implies --wait)")

    p_jobs = sub.add_parser(
        "jobs", help="inspect a running service's jobs"
    )
    p_jobs.add_argument("job_id", nargs="?", default=None,
                        help="show one job instead of listing")
    add_address_flag(p_jobs)
    p_jobs.add_argument("--cancel", action="store_true",
                        help="cancel the given job")
    p_jobs.add_argument("--events", action="store_true",
                        help="stream the given job's events")
    p_jobs.add_argument("--since", type=int, default=-1,
                        help="with --events: replay after this seq")
    p_jobs.add_argument("--namespace", default=None,
                        help="filter the listing by namespace")
    p_jobs.add_argument("--state", default=None,
                        choices=("queued", "running", "done", "failed",
                                 "cancelled"),
                        help="filter the listing by state")
    p_jobs.add_argument("--stats", action="store_true",
                        help="print service stats instead")

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "experiment": cmd_experiment,
        "campaign": cmd_campaign,
        "suite": cmd_suite,
        "trace": cmd_trace,
        "telemetry": cmd_telemetry,
        "fuzz": cmd_fuzz,
        "scenario": cmd_scenario,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
    }[args.command]
    if args.codec_impl is None:
        return handler(args)
    # Publish the choice through the environment so worker processes
    # (campaign pools) inherit it, and restore afterwards: tests call
    # main() in-process and must not leak backend selection.
    saved = os.environ.get(_IMPL_ENV)
    os.environ[_IMPL_ENV] = args.codec_impl
    try:
        return handler(args)
    finally:
        if saved is None:
            os.environ.pop(_IMPL_ENV, None)
        else:
            os.environ[_IMPL_ENV] = saved


if __name__ == "__main__":
    raise SystemExit(main())

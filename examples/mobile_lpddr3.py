#!/usr/bin/env python
"""Mobile scenario: MiL over the unterminated LPDDR3 interface.

Shows the Section 4.5 story end to end: the LPDDR3 bus pays energy per
wire *flip*, transition signaling makes flips equal transmitted zeros,
and the very same MiL framework then cuts mobile DRAM energy — more
deeply than on DDR4, because LPDDR3's background power is tiny and IO
dominates.

Usage::

    python examples/mobile_lpddr3.py [BENCHMARK ...]
"""

import sys

import numpy as np

from repro.coding import TransitionSignaling
from repro.core import run
from repro.system import SNAPDRAGON_MOBILE


def demo_transition_signaling() -> None:
    """The Figure 15 circuit on a few beats of data."""
    ts = TransitionSignaling(lanes=8)
    beats = np.array(
        [
            [1, 1, 1, 1, 1, 1, 1, 1],  # all ones: no flips
            [1, 1, 1, 1, 0, 0, 0, 0],  # four zeros: four flips
            [1, 0, 1, 0, 1, 0, 1, 0],
        ],
        dtype=np.uint8,
    )
    levels = ts.encode(beats)
    flips = int((levels[0] != 0).sum()) + int(
        (np.diff(levels.astype(np.int8), axis=0) != 0).sum()
    )
    zeros = int(beats.size - beats.sum())
    print("Transition signaling (Figure 15):")
    print(f"  logical zeros transmitted : {zeros}")
    print(f"  wire flips on the bus     : {flips}")
    print("  -> flip energy == zero count; zero-minimizing codes apply\n")


def main() -> None:
    benchmarks = [b.upper() for b in sys.argv[1:]] or ["SWIM", "GUPS", "ART"]
    demo_transition_signaling()

    print(f"{'benchmark':10s} {'time':>7s} {'flips':>7s} {'dram':>7s} "
          f"{'system':>7s}   (MiL vs DBI, LPDDR3 mobile)")
    print("-" * 58)
    for bench in benchmarks:
        base = run(bench, SNAPDRAGON_MOBILE, "dbi", accesses_per_core=4000)
        mil = run(bench, SNAPDRAGON_MOBILE, "mil", accesses_per_core=4000)
        print(
            f"{bench:10s} "
            f"{mil.cycles / base.cycles:7.3f} "
            f"{mil.total_zeros / max(1, base.total_zeros):7.3f} "
            f"{mil.dram_total_j / base.dram_total_j:7.3f} "
            f"{mil.system_total_j / base.system_total_j:7.3f}"
        )
    print()
    print("paper (LPDDR3): 46% fewer transitions, 17% DRAM energy and "
          "7% system energy savings, <4% slowdown")


if __name__ == "__main__":
    main()

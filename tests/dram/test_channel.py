"""Tests for the DRAM channel constraint engine."""

import pytest

from repro.dram import (
    DDR4_3200,
    DDR4_GEOMETRY,
    LPDDR3_1600,
    BusAuditor,
    CommandType,
    DRAMChannel,
)

ACT = CommandType.ACTIVATE
PRE = CommandType.PRECHARGE
RD = CommandType.READ
WR = CommandType.WRITE
REF = CommandType.REFRESH


def fresh_channel():
    return DRAMChannel(DDR4_3200, DDR4_GEOMETRY)


def open_bank(ch, rank=0, group=0, bank=0, row=7, at=0):
    ch.issue(ACT, rank, group, bank, at, row=row)
    return at


class TestRowPath:
    def test_activate_then_read_waits_rcd(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        assert ch.earliest_issue(RD, 0, 0, 0, 0) == DDR4_3200.RCD

    def test_activate_then_precharge_waits_ras(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        assert ch.earliest_issue(PRE, 0, 0, 0, 0) == DDR4_3200.RAS

    def test_act_to_act_same_bank_waits_rc(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        ch.issue(PRE, 0, 0, 0, DDR4_3200.RAS)
        earliest = ch.earliest_issue(ACT, 0, 0, 0, 0)
        assert earliest >= DDR4_3200.RC
        assert earliest >= DDR4_3200.RAS + DDR4_3200.RP

    def test_rrd_same_and_cross_group(self):
        ch = fresh_channel()
        open_bank(ch, group=0, bank=0, at=0)
        same = ch.earliest_issue(ACT, 0, 0, 1, 0)
        cross = ch.earliest_issue(ACT, 0, 1, 0, 0)
        assert same == DDR4_3200.RRD_L
        assert cross == DDR4_3200.RRD_S
        assert same > cross  # the DDR4 bank-group effect

    def test_faw_limits_fifth_activate(self):
        ch = fresh_channel()
        t = 0
        banks = [(0, 0), (0, 1), (0, 2), (0, 3)]
        for g, b in banks:
            t = ch.earliest_issue(ACT, 0, g, b, t)
            ch.issue(ACT, 0, g, b, t, row=1)
        first_act = ch.ranks[0].act_history[0]
        fifth = ch.earliest_issue(ACT, 0, 1, 0, t)
        assert fifth >= first_act + DDR4_3200.FAW

    def test_activate_requires_closed_bank(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        with pytest.raises(ValueError):
            ch.issue(ACT, 0, 0, 0, 1000, row=3)

    def test_precharge_requires_open_bank(self):
        ch = fresh_channel()
        with pytest.raises(ValueError):
            ch.issue(PRE, 0, 0, 0, 100)


class TestColumnPath:
    def test_read_needs_open_row(self):
        ch = fresh_channel()
        with pytest.raises(ValueError):
            ch.issue(RD, 0, 0, 0, 100)

    def test_read_occupies_bus_after_cl(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        end = ch.issue(RD, 0, 0, 0, DDR4_3200.RCD, bus_cycles=4)
        assert end == DDR4_3200.RCD + DDR4_3200.CL + 4
        assert ch.bus_free_at == end

    def test_ccd_long_vs_short(self):
        ch = fresh_channel()
        open_bank(ch, group=0, bank=0, at=0)
        open_bank(ch, group=1, bank=0, at=DDR4_3200.RRD_S)
        t = max(DDR4_3200.RCD, DDR4_3200.RRD_S + DDR4_3200.RCD)
        ch.issue(RD, 0, 0, 0, t)
        same_group = ch.earliest_issue(RD, 0, 0, 0, t)
        cross_group = ch.earliest_issue(RD, 0, 1, 0, t)
        assert same_group == t + DDR4_3200.CCD_L
        assert cross_group == t + DDR4_3200.CCD_S

    def test_extended_burst_stretches_ccd(self):
        # A BL16 (8-cycle) burst pushes the next column command of the
        # same rank to at least 8 cycles — the cost MiL must reason about.
        ch = fresh_channel()
        open_bank(ch, group=0, bank=0, at=0)
        open_bank(ch, group=1, bank=0, at=DDR4_3200.RRD_S)
        t = DDR4_3200.RRD_S + DDR4_3200.RCD
        ch.issue(RD, 0, 0, 0, t, bus_cycles=8)
        cross = ch.earliest_issue(RD, 0, 1, 0, t)
        assert cross == t + 8  # max(CCD_S=4, burst=8)

    def test_write_to_read_turnaround(self):
        ch = fresh_channel()
        open_bank(ch, group=0, bank=0, at=0)
        open_bank(ch, group=1, bank=0, at=DDR4_3200.RRD_S)
        t = DDR4_3200.RRD_S + DDR4_3200.RCD
        data_end = ch.issue(WR, 0, 0, 0, t, bus_cycles=4)
        same_group = ch.earliest_issue(RD, 0, 0, 0, t)
        cross_group = ch.earliest_issue(RD, 0, 1, 0, t)
        assert same_group >= data_end + DDR4_3200.WTR_L
        assert cross_group >= data_end + DDR4_3200.WTR_S
        assert same_group > cross_group

    def test_write_recovery_blocks_precharge(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        data_end = ch.issue(WR, 0, 0, 0, DDR4_3200.RCD)
        assert ch.earliest_issue(PRE, 0, 0, 0, 0) >= data_end + DDR4_3200.WR

    def test_read_to_precharge_rtp(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        t = DDR4_3200.RCD
        ch.issue(RD, 0, 0, 0, t)
        assert ch.earliest_issue(PRE, 0, 0, 0, t) >= t + DDR4_3200.RTP

    def test_rank_switch_needs_rtrs_bubble(self):
        ch = fresh_channel()
        open_bank(ch, rank=0, at=0)
        open_bank(ch, rank=1, at=0)
        t = DDR4_3200.RCD
        end0 = ch.issue(RD, 0, 0, 0, t)
        earliest = ch.earliest_issue(RD, 1, 0, 0, t)
        # Data of the rank-1 read must start >= end0 + tRTRS.
        assert earliest + DDR4_3200.CL >= end0 + DDR4_3200.RTRS

    def test_timing_violation_raises(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        with pytest.raises(ValueError):
            ch.issue(RD, 0, 0, 0, DDR4_3200.RCD - 1)


class TestRefreshPath:
    def test_refresh_requires_closed_banks(self):
        # issue() must reject a refresh while a row is open ...
        ch = fresh_channel()
        open_bank(ch, at=0)
        with pytest.raises(ValueError):
            ch.issue(REF, 0, 0, 0, 100_000)

    def test_earliest_refresh_is_a_pure_query_with_open_rows(self):
        # ... but earliest_issue is a pure query the controller probes
        # speculatively: with a row open it returns the earliest cycle
        # a refresh could follow the required precharge, not an error.
        ch = fresh_channel()
        open_bank(ch, at=0)
        bound = ch.earliest_issue(REF, 0, 0, 0, 100)
        b = ch.banks[0][0][0]
        assert bound == max(100, b.next_pre) + DDR4_3200.RP
        # And the bound is achievable: precharge at the earliest legal
        # cycle, then refresh exactly at the returned cycle.
        pre_at = ch.earliest_issue(PRE, 0, 0, 0, 100)
        ch.issue(PRE, 0, 0, 0, pre_at)
        ch.issue(REF, 0, 0, 0, bound)

    def test_refresh_blocks_rank_for_rfc(self):
        ch = fresh_channel()
        ch.issue(REF, 0, 0, 0, 10)
        for g in range(DDR4_GEOMETRY.bank_groups):
            for b in range(DDR4_GEOMETRY.banks_per_group):
                assert ch.earliest_issue(ACT, 0, g, b, 10) >= 10 + DDR4_3200.RFC

    def test_refresh_leaves_other_rank_alone(self):
        ch = fresh_channel()
        ch.issue(REF, 0, 0, 0, 10)
        assert ch.earliest_issue(ACT, 1, 0, 0, 10) == 10


class TestAuditor:
    def test_clean_log_passes(self):
        ch = fresh_channel()
        open_bank(ch, at=0)
        t = DDR4_3200.RCD
        for _ in range(5):
            t = ch.earliest_issue(RD, 0, 0, 0, t)
            ch.issue(RD, 0, 0, 0, t)
        assert BusAuditor(DDR4_3200).check(ch.transactions) == []

    def test_overlap_detected(self):
        from repro.dram.channel import BusTransaction

        log = [
            BusTransaction(10, 14, 0, False, 0, 0, 0, "dbi", 1),
            BusTransaction(12, 16, 2, False, 0, 0, 0, "dbi", 2),
        ]
        problems = BusAuditor(DDR4_3200).check(log)
        assert any("overlap" in p for p in problems)

    def test_missing_bubble_detected(self):
        from repro.dram.channel import BusTransaction

        log = [
            BusTransaction(10, 14, 0, False, 0, 0, 0, "dbi", 1),
            BusTransaction(15, 19, 2, False, 1, 0, 0, "dbi", 2),
        ]
        problems = BusAuditor(DDR4_3200).check(log)
        assert any("turnaround" in p for p in problems)

    def test_overlapping_pair_still_checked_for_bubble(self):
        # Pre-fix, an overlap short-circuited the turnaround check for
        # the same pair; both violations must be reported.
        from repro.dram.channel import BusTransaction

        log = [
            BusTransaction(10, 18, 0, False, 0, 0, 0, "dbi", 1),
            BusTransaction(16, 20, 2, False, 1, 0, 0, "dbi", 2),
        ]
        problems = BusAuditor(DDR4_3200).check(log)
        assert any("overlap" in p for p in problems)
        assert any("turnaround" in p for p in problems)

    def test_overlap_with_non_adjacent_burst_detected(self):
        # A long burst can overlap a transaction two entries later in
        # start order; the auditor must compare against the running max
        # end, not just the immediate predecessor.
        from repro.dram.channel import BusTransaction

        log = [
            BusTransaction(10, 30, 0, False, 0, 0, 0, "3lwc", 1),
            BusTransaction(12, 16, 2, False, 0, 0, 1, "dbi", 2),
            BusTransaction(20, 24, 4, False, 0, 0, 2, "dbi", 3),
        ]
        problems = BusAuditor(DDR4_3200).check(log)
        # Burst 3 starts inside burst 1 even though burst 2 already
        # ended; pre-fix only the (1,2) overlap was caught.
        assert sum("overlap" in p for p in problems) >= 2


class TestLPDDR3Channel:
    def test_basic_read_cycle(self):
        from repro.dram import LPDDR3_GEOMETRY

        ch = DRAMChannel(LPDDR3_1600, LPDDR3_GEOMETRY)
        ch.issue(ACT, 0, 0, 0, 0, row=3)
        t = LPDDR3_1600.RCD
        end = ch.issue(RD, 0, 0, 0, t)
        assert end == t + LPDDR3_1600.CL + 4
        assert ch.read_count == 1

"""Tests for the MiL framework configuration."""

import pytest

from repro.core import MiLConfig


class TestDefaults:
    def test_paper_design_point(self):
        cfg = MiLConfig()
        assert cfg.base_scheme == "milc"
        assert cfg.long_scheme == "3lwc"
        assert cfg.write_optimization
        # Faithful Figure 11 logic by default: no uncoded fallback tier.
        assert cfg.short_lookahead is None

    def test_natural_lookahead_is_long_occupancy(self):
        # Section 7.5.2: X defaults to the 3-LWC bus occupancy (8).
        assert MiLConfig().effective_lookahead == 8

    def test_explicit_lookahead_wins(self):
        assert MiLConfig(lookahead=14).effective_lookahead == 14
        assert MiLConfig(lookahead=0).effective_lookahead == 0

    def test_extra_cl_is_max_of_schemes(self):
        assert MiLConfig().extra_cl == 1


class TestValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            MiLConfig(base_scheme="huffman")
        with pytest.raises(KeyError):
            MiLConfig(long_scheme="huffman")
        with pytest.raises(KeyError):
            MiLConfig(fallback_scheme="huffman")

    def test_long_must_not_be_shorter_than_base(self):
        with pytest.raises(ValueError):
            MiLConfig(base_scheme="3lwc", long_scheme="milc")

    def test_negative_lookaheads_rejected(self):
        with pytest.raises(ValueError):
            MiLConfig(lookahead=-1)
        with pytest.raises(ValueError):
            MiLConfig(short_lookahead=-1)

    def test_same_scheme_both_tiers_allowed(self):
        cfg = MiLConfig(base_scheme="milc", long_scheme="milc")
        assert cfg.effective_lookahead == 5

"""Benchmark target: controller design-space extension study."""

from repro.experiments import ALL_EXPERIMENTS


def test_ext_design_space(benchmark, show):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["ext_design_space"], rounds=1, iterations=1
    )
    show(result)
    assert result.rows, "experiment produced no rows"

"""ASCII table rendering for experiment output.

Every benchmark target prints the rows/series its paper figure reports;
this module keeps that formatting in one place.
"""

from __future__ import annotations

__all__ = ["format_table", "format_normalized_series"]


def format_table(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered_rows = [
        [
            float_fmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_normalized_series(
    title: str,
    labels: list[str],
    series: dict[str, list[float]],
    baseline_note: str = "normalized to the DBI baseline",
) -> str:
    """Render one figure's bar groups: one column per scheme."""
    headers = ["benchmark"] + list(series)
    rows = []
    for i, label in enumerate(labels):
        rows.append([label] + [series[s][i] for s in series])
    return format_table(headers, rows, title=f"{title} ({baseline_note})")

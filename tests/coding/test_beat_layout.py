"""Tests for the Figure 12 beat layout and the raw (uncoded) scheme."""

import numpy as np

from repro.coding import (
    BURST_FORMATS,
    DBICode,
    MiLCCode,
    line_zeros,
    raw_line_zeros,
)
from repro.coding.pipeline import beat_layout


class TestBeatLayout:
    def test_is_a_transpose(self):
        line = np.arange(64, dtype=np.uint8)[None, :]
        beats = beat_layout(line)[0].reshape(8, 8)
        words = line[0].reshape(8, 8)
        assert (beats == words.T).all()

    def test_involution(self):
        rng = np.random.default_rng(31)
        lines = rng.integers(0, 256, size=(20, 64), dtype=np.uint8)
        assert (beat_layout(beat_layout(lines)) == lines).all()

    def test_beat_gathers_same_byte_position(self):
        # Word j has byte p = (j << 4) | p: beat p must hold all eight.
        line = np.array(
            [[(j << 4) | p for p in range(8)] for j in range(8)],
            dtype=np.uint8,
        ).reshape(1, 64)
        beats = beat_layout(line)[0].reshape(8, 8)
        for p in range(8):
            assert (beats[p] == [(j << 4) | p for j in range(8)]).all()

    def test_milc_sees_cross_word_correlation(self):
        # Eight words sharing an exponent byte: the layout is what lets
        # MiLC's row-XOR collapse that byte position.
        rng = np.random.default_rng(32)
        line = rng.integers(0, 256, size=(8, 8), dtype=np.uint8)
        line[:, 7] = 0x40  # shared high byte
        flat = line.reshape(1, 64)
        with_layout = MiLCCode().count_zeros_bytes(beat_layout(flat))[0]
        without = MiLCCode().count_zeros_bytes(flat)[0]
        assert with_layout <= without


class TestRawScheme:
    def test_registered_with_bl8(self):
        assert BURST_FORMATS["raw"].burst_length == 8
        assert BURST_FORMATS["raw"].extra_latency == 0

    def test_counts_plain_zeros(self):
        rng = np.random.default_rng(33)
        lines = rng.integers(0, 256, size=(10, 64), dtype=np.uint8)
        assert (line_zeros("raw", lines) == raw_line_zeros(lines)).all()

    def test_dbi_never_worse_than_raw(self):
        # DBI bounds zeros at 4/byte group; raw can hit 8.  On sparse
        # data DBI is strictly better — the x4-vs-x8 study's premise.
        sparse = np.zeros((5, 64), dtype=np.uint8)
        assert (
            DBICode().count_zeros_bytes(sparse)
            < raw_line_zeros(sparse)
        ).all()
        rng = np.random.default_rng(34)
        lines = rng.integers(0, 256, size=(50, 64), dtype=np.uint8)
        assert (
            line_zeros("dbi", lines) <= raw_line_zeros(lines) + 64
        ).all()

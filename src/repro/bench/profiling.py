"""Per-benchmark profiles: ``repro bench --profile cprofile|pyinstrument``.

Profiles are written next to the results JSON, one file per benchmark:
``<dir>/<benchmark.name>.prof`` (cProfile binary stats, loadable with
:mod:`pstats` or snakeviz) plus ``.txt`` (top functions by cumulative
time).  pyinstrument — a statistical profiler with a far nicer HTML
tree — is optional; if it is not installed the error says so instead of
crashing mid-suite.

Profiling runs *outside* the timing protocol: a profiled run is never
the run whose numbers land in the report.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

from .registry import BenchError, BenchmarkDef

__all__ = ["PROFILE_BACKENDS", "profile_benchmark"]

PROFILE_BACKENDS = ("cprofile", "pyinstrument")

# Enough calls to smooth out per-call noise without rerunning the whole
# timing protocol under instrumentation.
_PROFILE_CALLS = 10


def _profile_cprofile(defn: BenchmarkDef, out_dir: Path) -> list[Path]:
    thunk = defn.build()
    thunk()  # warm caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(_PROFILE_CALLS):
        thunk()
    profiler.disable()

    prof_path = out_dir / f"{defn.name}.prof"
    profiler.dump_stats(prof_path)

    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    stats.sort_stats("cumulative").print_stats(30)
    txt_path = out_dir / f"{defn.name}.txt"
    txt_path.write_text(text.getvalue())
    return [prof_path, txt_path]


def _profile_pyinstrument(defn: BenchmarkDef, out_dir: Path) -> list[Path]:
    try:
        from pyinstrument import Profiler
    except ImportError:
        raise BenchError(
            "pyinstrument is not installed; use --profile cprofile or "
            "`pip install pyinstrument`"
        ) from None
    thunk = defn.build()
    thunk()
    profiler = Profiler()
    profiler.start()
    for _ in range(_PROFILE_CALLS):
        thunk()
    profiler.stop()

    html_path = out_dir / f"{defn.name}.html"
    html_path.write_text(profiler.output_html())
    txt_path = out_dir / f"{defn.name}.txt"
    txt_path.write_text(profiler.output_text(unicode=True, color=False))
    return [html_path, txt_path]


def profile_benchmark(
    defn: BenchmarkDef, backend: str, out_dir: str | Path
) -> list[Path]:
    """Profile one benchmark; returns the files written."""
    if backend not in PROFILE_BACKENDS:
        raise BenchError(
            f"unknown profile backend {backend!r}; known: {PROFILE_BACKENDS}"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if backend == "cprofile":
        return _profile_cprofile(defn, out)
    return _profile_pyinstrument(defn, out)

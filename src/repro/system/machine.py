"""The two Table 2 machine configurations.

* ``NIAGARA_SERVER`` — the Niagara-like microserver: 8 in-order cores at
  3.2 GHz with 4 threads each, a 4 MB shared L2, an aggressive stream
  prefetcher (64/32/4), and two channels of DDR4-3200.
* ``SNAPDRAGON_MOBILE`` — the Snapdragon-like mobile system: 8
  out-of-order cores at 1.6 GHz, a 2 MB shared L2, a conservative
  prefetcher (64/8/1), and two channels of LPDDR3-1600.

Both clocks are exactly 2x their DRAM clock, which keeps the CPU-to-DRAM
cycle conversion integral.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.commands import DDR4_GEOMETRY, LPDDR3_GEOMETRY, Geometry
from ..dram.timing import DDR4_3200, LPDDR3_1600, TimingParams
from .prefetcher import PrefetcherConfig

__all__ = ["SystemConfig", "NIAGARA_SERVER", "SNAPDRAGON_MOBILE", "SYSTEMS"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything the hierarchy and the timing simulator need to know."""

    name: str
    cores: int
    threads_per_core: int
    cpu_ghz: float
    issue_ipc: float  # sustained non-memory IPC per core
    mlp: int  # outstanding demand misses a core can sustain
    out_of_order: bool

    l1_bytes: int
    l1_ways: int
    l2_bytes: int
    l2_ways: int
    l2_hit_cpu_cycles: int

    prefetcher: PrefetcherConfig
    timing: TimingParams
    geometry: Geometry
    channels: int = 2
    read_queue: int = 64
    write_queue: int = 64
    drain_high: int = 60
    drain_low: int = 50
    line_bytes: int = 64
    # Calibration multiplier on each workload's arithmetic intensity for
    # this system (the mobile platform pairs its cores with a slower bus
    # but its single-threaded cores also extract less traffic per cycle).
    intensity_scale: float = 1.0
    # Design-space knobs (Table 2 uses page interleaving + open page).
    address_interleave: str = "page"  # or "line"
    page_policy: str = "open"  # or "closed" (auto-precharge columns)

    @property
    def cpu_per_dram_clock(self) -> float:
        """CPU cycles per DRAM clock cycle."""
        return self.cpu_ghz / self.timing.clock_ghz

    def cpu_to_dram_cycles(self, cpu_cycles: float) -> int:
        """Convert CPU cycles to whole DRAM cycles (ceiling)."""
        ratio = self.cpu_per_dram_clock
        return max(0, int(-(-cpu_cycles // ratio)))


NIAGARA_SERVER = SystemConfig(
    name="ddr4-server",
    cores=8,
    threads_per_core=4,
    cpu_ghz=3.2,
    issue_ipc=2.0,  # fetch/issue width 4/2, in-order
    mlp=4,  # one outstanding miss per hardware thread
    out_of_order=False,
    l1_bytes=32 * 1024,
    l1_ways=4,
    l2_bytes=4 * 1024 * 1024,
    l2_ways=8,
    l2_hit_cpu_cycles=16,
    prefetcher=PrefetcherConfig(nstreams=64, distance=32, degree=4),
    timing=DDR4_3200,
    geometry=DDR4_GEOMETRY,
)

SNAPDRAGON_MOBILE = SystemConfig(
    name="lpddr3-mobile",
    cores=8,
    threads_per_core=1,
    cpu_ghz=1.6,
    issue_ipc=1.5,  # 3-wide out-of-order, single thread
    mlp=8,  # OoO window exposes more memory-level parallelism
    out_of_order=True,
    l1_bytes=32 * 1024,
    l1_ways=4,
    l2_bytes=2 * 1024 * 1024,
    l2_ways=8,
    l2_hit_cpu_cycles=8,
    prefetcher=PrefetcherConfig(nstreams=64, distance=8, degree=1),
    timing=LPDDR3_1600,
    geometry=LPDDR3_GEOMETRY,
    intensity_scale=3.0,
)

SYSTEMS = {
    NIAGARA_SERVER.name: NIAGARA_SERVER,
    SNAPDRAGON_MOBILE.name: SNAPDRAGON_MOBILE,
}

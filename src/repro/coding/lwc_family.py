"""The limited-weight code family (Section 2.2 / 4.3.1 background).

Stan & Burleson's k-LWC framework bounds every codeword's Hamming
weight to ``k``.  The paper names three family members besides its own
(8,17) 3-LWC:

* bus-invert coding is an (n/2)-LWC,
* a one-hot code is a 1-LWC,
* the *perfect* 3-LWC maps 11 data bits onto the 2048 binary vectors of
  length 23 and weight <= 3 — exactly the coset leaders of the binary
  [23, 12, 7] Golay code, whose perfection is what makes the count come
  out even: C(23,0)+C(23,1)+C(23,2)+C(23,3) = 2048 = 2^11.

This module implements a generic enumerative :class:`KLimitedWeightCode`
and the Golay-based :class:`PerfectThreeLWC`.  Neither is used by the
default MiL configuration (the paper leaves alternate codes as future
work), but both plug into the same :class:`~repro.coding.base.
CodingScheme` interface, so a ``MiLConfig(long_scheme=...)`` experiment
away.

As everywhere in this package, the *transmitted* word is the ones'
complement of the weight-bounded word, so "weight <= k" becomes
"at most k zeros on the POD bus".
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from .base import CodingScheme
from .registry import register_codec

__all__ = [
    "KLimitedWeightCode",
    "PerfectThreeLWC",
    "GOLAY_POLY",
    "golay_syndrome",
    "lwc_capacity_bits",
]

# Generator polynomial of the binary [23, 12, 7] Golay code:
# x^11 + x^10 + x^6 + x^5 + x^4 + x^2 + 1.
GOLAY_POLY = 0b110001110101


def lwc_capacity_bits(code_bits: int, max_weight: int) -> int:
    """Data bits an (m, k)-LWC can carry: floor(log2 sum C(m, j))."""
    total = sum(comb(code_bits, j) for j in range(max_weight + 1))
    return total.bit_length() - 1


class KLimitedWeightCode(CodingScheme):
    """Enumerative (n -> m) code with codeword weight <= k.

    Data values are mapped to weight-bounded vectors in lexicographic
    weight order (lowest weight first), which makes the all-ones
    transmitted word represent value 0 — handy for sparse data.  This is
    the "hard to implement algorithmically" general case the paper
    sidesteps with MiLC/3-LWC; here the codebook is explicit, which is
    fine for a simulator and for studying hypothetical design points.
    """

    def __init__(self, data_bits: int, code_bits: int, max_weight: int):
        if data_bits < 1 or data_bits > 16:
            raise ValueError("data_bits must be in [1, 16] (table-based)")
        capacity = lwc_capacity_bits(code_bits, max_weight)
        if capacity < data_bits:
            raise ValueError(
                f"a ({code_bits}, w<={max_weight}) code holds only "
                f"{capacity} data bits, not {data_bits}"
            )
        self.data_bits = data_bits
        self.code_bits = code_bits
        self.max_weight = max_weight
        self.name = f"lwc-{data_bits}-{code_bits}-w{max_weight}"
        self.extra_latency_cycles = 1

        size = 1 << data_bits
        words = np.zeros((size, code_bits), dtype=np.uint8)
        produced = 0
        weight = 0
        while produced < size:
            for ones in combinations(range(code_bits), weight):
                if produced >= size:
                    break
                words[produced, list(ones)] = 1
                produced += 1
            weight += 1
        self._words = words
        # Reverse lookup via packed integer keys, held as sorted arrays
        # so decode is one vectorised searchsorted instead of a
        # per-codeword dict probe.
        keys = self._pack(words)
        order = np.argsort(keys)
        self._sorted_keys = keys[order]
        self._sorted_values = order.astype(np.int64)
        # Transmitted zeros per data value (codeword weight, since the
        # complement is transmitted).
        self._zeros_by_value = words.sum(axis=1).astype(np.int64)

    @staticmethod
    def _pack(bits: np.ndarray) -> np.ndarray:
        weights = 1 << np.arange(bits.shape[-1], dtype=np.int64)[::-1]
        return (bits.astype(np.int64) * weights).sum(axis=-1)

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        values = self._pack(data_bits.reshape(-1, self.data_bits))
        words = self._words[values]
        return (1 - words).reshape(lead + (self.code_bits,))

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zero count from uint8 byte values (8-bit codes only)."""
        if self.data_bits != 8:
            raise ValueError("byte fast path requires data_bits == 8")
        data = np.asarray(data, dtype=np.uint8)
        return self._zeros_by_value[data].sum(axis=-1)

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        words = (1 - code_bits.reshape(-1, self.code_bits)).astype(np.uint8)
        keys = self._pack(words)
        slots = np.searchsorted(self._sorted_keys, keys)
        slots_clipped = np.minimum(slots, self._sorted_keys.size - 1)
        if not (self._sorted_keys[slots_clipped] == keys).all():
            raise ValueError("word is not a codeword of this LWC")
        values = self._sorted_values[slots_clipped]
        shifts = np.arange(self.data_bits - 1, -1, -1, dtype=np.int64)
        bits = ((values[:, None] >> shifts) & 1).astype(np.uint8)
        return bits.reshape(lead + (self.data_bits,))


def golay_syndrome(words: np.ndarray) -> np.ndarray:
    """Syndrome (11 bits as an int) of 23-bit words under the Golay code.

    For the cyclic Golay code the syndrome of ``e(x)`` is simply
    ``e(x) mod g(x)``; two error patterns share a syndrome iff they
    differ by a codeword.
    """
    out = np.array(words, dtype=np.int64, copy=True)
    # Long division by g(x) over GF(2), run across the whole array: for
    # each of the 12 leading bit positions, subtract (xor) the shifted
    # generator from every word whose bit is set.  Twelve whole-array
    # iterations replace the old per-word Python loop.
    for bit in range(22, 10, -1):
        mask = (out >> bit) & 1
        out ^= mask * (GOLAY_POLY << (bit - 11))
    return out


class PerfectThreeLWC(CodingScheme):
    """Stan & Zhang's perfect (11, 23) 3-LWC, the dual of the Golay code.

    Each 11-bit datum is treated as a Golay syndrome and transmitted as
    the complement of that syndrome's (unique, weight <= 3) coset
    leader.  Decoding is purely algorithmic: the received word's
    polynomial residue mod g(x) *is* the data — no table on the DRAM
    side, which is the property that made the construction attractive
    for low-power IO.
    """

    name = "perfect-3lwc"
    data_bits = 11
    code_bits = 23
    extra_latency_cycles = 1

    def __init__(self):
        # Build the syndrome -> coset-leader table from all weight<=3
        # patterns; the code's perfection guarantees a bijection.
        patterns = []
        for weight in range(4):
            for ones in combinations(range(23), weight):
                value = 0
                for bit in ones:
                    value |= 1 << bit
                patterns.append(value)
        patterns = np.array(patterns, dtype=np.int64)
        syndromes = golay_syndrome(patterns)
        if len(np.unique(syndromes)) != 2048:
            raise AssertionError("Golay coset leaders are not distinct")
        table = np.zeros(2048, dtype=np.int64)
        table[syndromes] = patterns
        self._leader_for_syndrome = table

    @staticmethod
    def _to_bits(values: np.ndarray, width: int) -> np.ndarray:
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
        return ((values[:, None] >> shifts) & 1).astype(np.uint8)

    @staticmethod
    def _to_ints(bits: np.ndarray) -> np.ndarray:
        width = bits.shape[-1]
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
        return (bits.astype(np.int64) << shifts).sum(axis=-1)

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        values = self._to_ints(data_bits.reshape(-1, 11))
        leaders = self._leader_for_syndrome[values]
        words = self._to_bits(leaders, 23)
        return (1 - words).reshape(lead + (23,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        words = (1 - code_bits.reshape(-1, 23)).astype(np.uint8)
        values = self._to_ints(words)
        syndromes = golay_syndrome(values)
        return self._to_bits(syndromes, 11).reshape(lead + (11,))


# The Section 7.5.3 intermediate design point: an (8, 12) 3-LWC fills
# exactly 12 beats over the 64 data pins, between MiLC (BL10) and the
# (8, 17) 3-LWC (BL16).
register_codec(
    "lwc12", burst_length=12, extra_latency=1, layout="line", pins=64,
    description="intermediate (8, 12) 3-LWC at burst length 12 "
                "(Section 7.5.3)",
)(lambda: KLimitedWeightCode(8, 12, 3))

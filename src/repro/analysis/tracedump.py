"""Bus-transaction trace export/import and offline auditing.

A downstream user debugging a controller or validating an energy model
wants the raw transaction log, not just the summaries.  This module
round-trips :class:`~repro.dram.channel.BusTransaction` logs through CSV
and JSON-lines files, and re-runs the protocol auditor over a dump so a
trace captured on one machine can be verified on another.

Example::

    result = simulate(trace, NIAGARA_SERVER)
    dump_transactions_csv("bus.csv", result.controllers[0].channel.transactions)
    report = audit_dump("bus.csv", NIAGARA_SERVER.timing)
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, fields
from pathlib import Path

from ..dram.channel import BusAuditor, BusTransaction
from ..dram.timing import TimingParams

__all__ = [
    "dump_transactions_csv",
    "load_transactions_csv",
    "dump_transactions_jsonl",
    "load_transactions_jsonl",
    "audit_dump",
]

_FIELDS = [f.name for f in fields(BusTransaction)]
_INT_FIELDS = {
    "start", "end", "issue_cycle", "rank", "bank_group", "bank",
    "request_id",
}


def dump_transactions_csv(
    path: str | Path, transactions: list[BusTransaction]
) -> int:
    """Write a transaction log as CSV; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for tr in transactions:
            writer.writerow(asdict(tr))
    return len(transactions)


def load_transactions_csv(path: str | Path) -> list[BusTransaction]:
    """Read a CSV transaction dump back into objects."""
    out = []
    with Path(path).open(newline="") as handle:
        for row in csv.DictReader(handle):
            out.append(_from_strings(row))
    return out


def dump_transactions_jsonl(
    path: str | Path, transactions: list[BusTransaction]
) -> int:
    """Write a transaction log as JSON lines; returns the row count."""
    path = Path(path)
    with path.open("w") as handle:
        for tr in transactions:
            handle.write(json.dumps(asdict(tr)) + "\n")
    return len(transactions)


def load_transactions_jsonl(path: str | Path) -> list[BusTransaction]:
    """Read a JSON-lines transaction dump back into objects."""
    out = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(BusTransaction(**json.loads(line)))
    return out


def _from_strings(row: dict) -> BusTransaction:
    converted = {}
    for key, value in row.items():
        if key in _INT_FIELDS:
            converted[key] = int(value)
        elif key == "is_write":
            converted[key] = value in ("True", "true", "1")
        else:
            converted[key] = value
    return BusTransaction(**converted)


def audit_dump(path: str | Path, timing: TimingParams) -> dict:
    """Re-audit a dumped trace; returns a small report dict.

    The report carries the transaction count, busy cycles, per-scheme
    burst counts, and any protocol violations the auditor found.
    """
    path = Path(path)
    if path.suffix == ".csv":
        transactions = load_transactions_csv(path)
    else:
        transactions = load_transactions_jsonl(path)
    problems = BusAuditor(timing).check(transactions)
    schemes: dict[str, int] = {}
    for tr in transactions:
        schemes[tr.scheme] = schemes.get(tr.scheme, 0) + 1
    return {
        "transactions": len(transactions),
        "busy_cycles": sum(tr.cycles for tr in transactions),
        "schemes": schemes,
        "violations": problems,
        "clean": not problems,
    }

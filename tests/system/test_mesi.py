"""Tests for the MESI coherence directory."""

import pytest

from repro.system import MESIDirectory, MESIState

LINE = 0x1000


class TestReadPath:
    def test_first_reader_gets_exclusive(self):
        d = MESIDirectory(4)
        d.read(0, LINE)
        assert d.state(0, LINE) is MESIState.EXCLUSIVE

    def test_second_reader_shares(self):
        d = MESIDirectory(4)
        d.read(0, LINE)
        outcome = d.read(1, LINE)
        assert d.state(0, LINE) is MESIState.SHARED
        assert d.state(1, LINE) is MESIState.SHARED
        assert outcome.downgraded == [0]
        assert not outcome.dirty_writeback

    def test_read_after_modified_flushes(self):
        d = MESIDirectory(4)
        d.write(0, LINE)
        outcome = d.read(1, LINE)
        assert outcome.dirty_writeback
        assert d.state(0, LINE) is MESIState.SHARED
        assert d.dirty_transfers == 1

    def test_read_hit_is_silent(self):
        d = MESIDirectory(4)
        d.read(0, LINE)
        outcome = d.read(0, LINE)
        assert not outcome.downgraded and not outcome.invalidated


class TestWritePath:
    def test_writer_gets_modified(self):
        d = MESIDirectory(4)
        d.write(0, LINE)
        assert d.state(0, LINE) is MESIState.MODIFIED

    def test_write_invalidates_sharers(self):
        d = MESIDirectory(4)
        d.read(0, LINE)
        d.read(1, LINE)
        outcome = d.write(2, LINE)
        assert sorted(outcome.invalidated) == [0, 1]
        assert d.state(0, LINE) is MESIState.INVALID
        assert d.state(2, LINE) is MESIState.MODIFIED
        assert d.invalidations == 2

    def test_write_steals_modified_with_flush(self):
        d = MESIDirectory(4)
        d.write(0, LINE)
        outcome = d.write(1, LINE)
        assert outcome.dirty_writeback
        assert outcome.invalidated == [0]

    def test_upgrade_from_shared(self):
        d = MESIDirectory(4)
        d.read(0, LINE)
        d.read(1, LINE)
        d.write(0, LINE)
        assert d.state(0, LINE) is MESIState.MODIFIED
        assert d.state(1, LINE) is MESIState.INVALID


class TestEviction:
    def test_evict_reports_dirty(self):
        d = MESIDirectory(2)
        d.write(0, LINE)
        assert d.evict(0, LINE) is True
        assert d.state(0, LINE) is MESIState.INVALID

    def test_evict_clean_copy(self):
        d = MESIDirectory(2)
        d.read(0, LINE)
        assert d.evict(0, LINE) is False

    def test_evict_absent_is_noop(self):
        d = MESIDirectory(2)
        assert d.evict(0, LINE) is False

    def test_sole_sharer_left_behind_keeps_state(self):
        # After the other sharer evicts, the remaining copy stays S
        # (a silent S->E upgrade would need extra protocol support).
        d = MESIDirectory(2)
        d.read(0, LINE)
        d.read(1, LINE)
        d.evict(0, LINE)
        assert d.state(1, LINE) is MESIState.SHARED
        assert d.sharers(LINE) == [1]


class TestInvariants:
    def test_at_most_one_writable_copy(self):
        import random

        rng = random.Random(21)
        d = MESIDirectory(4)
        lines = [0x0, 0x40, 0x80]
        for _ in range(500):
            core = rng.randrange(4)
            line = rng.choice(lines)
            op = rng.random()
            if op < 0.4:
                d.read(core, line)
            elif op < 0.8:
                d.write(core, line)
            else:
                d.evict(core, line)
            for probe in lines:
                states = [d.state(c, probe) for c in range(4)]
                writable = [
                    s for s in states
                    if s in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
                ]
                valid = [s for s in states if s is not MESIState.INVALID]
                if writable:
                    assert len(valid) == 1, "M/E must be the sole copy"

    def test_validation(self):
        with pytest.raises(ValueError):
            MESIDirectory(0)

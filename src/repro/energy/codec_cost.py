"""Analytical synthesis model for the codec hardware (Table 4).

The paper implements the codecs in Verilog, synthesises at 45 nm with
the FreePDK library, and scales to a 22 nm DRAM process.  Neither a
synthesis tool nor the PDK is available here, so this module rebuilds
Table 4 from structure: each codec's design is reduced to a gate-level
bill of materials (combinational gate equivalents, flip-flops, logic
depth) derived from the encoder/decoder block diagrams of Figures 13
and 14, and a small 22 nm gate library turns those counts into area,
power, and latency.

What the model preserves from the paper's Table 4 (and what the tests
check) is the *structure*: the MiLC encoder is by far the largest block
(8 parallel row encoders, each with four candidate generators, popcount
trees, and a comparison tournament); the decoders are small; the 3-LWC
codec is tiny; and every latency fits within the one extra DRAM cycle
MiL charges on tCL.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GateLibrary",
    "CodecDesign",
    "CodecCost",
    "LIB_22NM",
    "CODEC_DESIGNS",
    "PAPER_TABLE4",
    "synthesize",
    "table4",
]


@dataclass(frozen=True)
class GateLibrary:
    """Technology constants for one process node."""

    name: str
    area_per_ge_um2: float  # area of one NAND2-equivalent
    ff_area_ge: float  # flip-flop area in gate equivalents
    energy_per_toggle_fj: float  # dynamic energy per gate toggle
    ff_energy_per_clock_fj: float
    activity: float  # average toggle probability per cycle
    delay_per_level_ps: float  # one logic level


LIB_22NM = GateLibrary(
    name="22nm-dram-process",
    area_per_ge_um2=0.60,
    ff_area_ge=4.5,
    energy_per_toggle_fj=3.0,
    ff_energy_per_clock_fj=6.0,
    activity=0.25,
    delay_per_level_ps=29.0,
)


@dataclass(frozen=True)
class CodecDesign:
    """Gate-level bill of materials for one codec block."""

    name: str
    combinational_ge: int
    flipflops: int
    logic_depth: float

    def __post_init__(self) -> None:
        if self.combinational_ge < 0 or self.flipflops < 0:
            raise ValueError("gate counts must be non-negative")
        if self.logic_depth <= 0:
            raise ValueError("logic depth must be positive")


# Bill of materials, from the block structure in Section 5.2:
#
# MiLC encoder (Figure 14): 8 parallel row encoders, each with an 8-bit
# XOR plane against the previous row, two inversion planes, four
# 8-input popcounts, a 3-comparator minimum tournament, and an 8-bit
# 4:1 output mux; plus the xorbi popcount over the mode column and
# 80 bits of output staging.
#
# MiLC decoder: a 72-bit conditional-inversion XOR plane followed by a
# *serial* 7-stage row-XOR chain (which is why its latency exceeds the
# encoder's despite far fewer gates), with modest staging.
#
# 3-LWC encoder (Figure 13): two 4->15 one-hot decoders, a 15-bit OR
# plane, the Table 1 mode logic, and 17 bits of staging.
#
# 3-LWC decoder: a priority scan of the 15-bit one-hot field plus the
# inverse mode mapping.
CODEC_DESIGNS = {
    "milc-enc": CodecDesign("milc-enc", combinational_ge=1950,
                            flipflops=80, logic_depth=12.0),
    "milc-dec": CodecDesign("milc-dec", combinational_ge=160,
                            flipflops=32, logic_depth=13.5),
    "3lwc-enc": CodecDesign("3lwc-enc", combinational_ge=200,
                            flipflops=17, logic_depth=3.5),
    "3lwc-dec": CodecDesign("3lwc-dec", combinational_ge=95,
                            flipflops=8, logic_depth=4.0),
}

# Table 4 of the paper, for side-by-side comparison in the bench:
# (area um^2, power mW, latency ns).
PAPER_TABLE4 = {
    "milc-enc": (1429.0, 3.32, 0.35),
    "milc-dec": (188.0, 0.16, 0.39),
    "3lwc-enc": (173.0, 0.44, 0.10),
    "3lwc-dec": (81.0, 0.70, 0.12),
}


@dataclass(frozen=True)
class CodecCost:
    """Synthesis estimate for one codec block."""

    name: str
    area_um2: float
    power_mw: float
    latency_ns: float


def synthesize(
    design: CodecDesign,
    library: GateLibrary = LIB_22NM,
    clock_ghz: float = 1.6,
) -> CodecCost:
    """Estimate area/power/latency for a codec design."""
    area = (
        design.combinational_ge + design.flipflops * library.ff_area_ge
    ) * library.area_per_ge_um2
    dynamic_fj_per_cycle = (
        design.combinational_ge * library.activity
        * library.energy_per_toggle_fj
        + design.flipflops * library.ff_energy_per_clock_fj
    )
    power_mw = dynamic_fj_per_cycle * 1e-15 * clock_ghz * 1e9 * 1e3
    latency_ns = design.logic_depth * library.delay_per_level_ps / 1000.0
    return CodecCost(design.name, area, power_mw, latency_ns)


def table4(
    library: GateLibrary = LIB_22NM, clock_ghz: float = 1.6
) -> dict[str, CodecCost]:
    """All four codec blocks, like the paper's Table 4."""
    return {
        name: synthesize(design, library, clock_ghz)
        for name, design in CODEC_DESIGNS.items()
    }

"""The policy registry: every decision policy declared in one place.

A *policy* names a controller-side decision procedure (which coding
scheme does each burst ship with?).  Historically the set lived in a
``POLICIES`` tuple plus an if-chain in ``make_policy_factory``; adding
one policy meant editing both, the module docstring table, and the CLI
choices.  Now a policy is one :func:`register_policy` call::

    @register_policy("mil-lwc14", schemes=("milc", "lwc14"),
                     mil_family=True,
                     description="mil with the (8, 14) 3-LWC long code")
    def _build(ctx):
        config = ctx.mil_config(long_scheme="lwc14")
        return lambda: MiLPolicy(config, ctx.zeros_by_scheme)

and ``POLICIES``, the framework docstring table, CLI ``--policy``
choices, and :class:`~repro.campaign.spec.RunSpec` validation all
derive from the registry.

The builder receives a :class:`PolicyContext` and returns the
*per-channel factory* the simulator calls once per memory controller.
Builders run once per simulation, in the parent process — expensive
setup (e.g. ``MiLConfig`` validation) happens there, not per channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..coding.registry import scheme_info
from ..controller.controller import AlwaysScheme
from .config import MiLConfig
from .decision import MiLCOnlyPolicy, MiLPolicy

__all__ = [
    "PolicyContext",
    "PolicyInfo",
    "get_policy",
    "known_policy",
    "make_factory",
    "policy_names",
    "policy_table",
    "register_policy",
    "unregister_policy",
]


@dataclass
class PolicyContext:
    """Everything a policy builder may need for one simulation.

    Attributes
    ----------
    zeros_by_scheme:
        Per-line zero tables (the write optimization consults them).
    lookahead:
        CLI/spec override of the rdyX window; ``None`` = natural value.
    mil_overrides:
        Extra :class:`MiLConfig` fields; only meaningful for the mil
        family (enforced by :func:`make_factory`).
    """

    zeros_by_scheme: Optional[dict] = None
    lookahead: Optional[int] = None
    mil_overrides: Optional[dict] = None

    def mil_config(self, **kwargs) -> MiLConfig:
        """Build the policy's canonical config plus any user overrides."""
        if self.mil_overrides:
            kwargs.update(self.mil_overrides)
        return MiLConfig(**kwargs)


@dataclass(frozen=True)
class PolicyInfo:
    """One registered policy.

    Attributes
    ----------
    name:
        Policy name as used on the CLI and in :class:`RunSpec`.
    builder:
        ``(PolicyContext) -> per-channel factory``.
    schemes:
        Coding schemes the policy can transmit with.  Energy is modelled
        iff every one has a zero-count path (``has_codec``), which is
        how the Figure 20 burst-length sweep points opt out.
    mil_family:
        Whether the policy owns a :class:`MiLConfig` (and therefore
        accepts ``mil_overrides``).
    description:
        One line for ``repro list`` and the generated policy table.
    """

    name: str
    builder: Callable[[PolicyContext], Callable]
    schemes: tuple = ()
    mil_family: bool = False
    description: str = ""

    @property
    def has_energy(self) -> bool:
        """Every scheme this policy ships has a zero-count path."""
        return all(scheme_info(s).has_codec for s in self.schemes)


_REGISTRY: dict[str, PolicyInfo] = {}


def register_policy(
    name: str,
    *,
    schemes: tuple,
    mil_family: bool = False,
    description: str = "",
):
    """Function decorator registering a policy builder under ``name``."""

    def deco(builder):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.builder is not builder:
            raise ValueError(
                f"policy {name!r} is already registered; "
                "unregister_policy() first"
            )
        _REGISTRY[name] = PolicyInfo(
            name=name,
            builder=builder,
            schemes=tuple(schemes),
            mil_family=mil_family,
            description=description,
        )
        return builder

    return deco


def unregister_policy(name: str) -> None:
    """Remove a registration (tests and interactive experimentation)."""
    _REGISTRY.pop(name, None)


def get_policy(name: str) -> PolicyInfo:
    """The registry entry for ``name``; KeyError names the known set."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {policy_names()}"
        ) from None


def known_policy(name: str) -> bool:
    return name in _REGISTRY


def policy_names() -> tuple[str, ...]:
    """Every registered policy name, in registration order."""
    return tuple(_REGISTRY)


def make_factory(
    policy: str,
    zeros_by_scheme: dict[str, np.ndarray] | None = None,
    lookahead: int | None = None,
    mil_overrides: dict | None = None,
):
    """Build a per-channel policy factory for :func:`simulate`.

    ``mil_overrides`` are extra :class:`MiLConfig` fields applied on
    top of the policy's canonical configuration; only the ``mil``
    family has a configuration, so overrides on other policies are an
    error rather than a silent no-op.
    """
    info = get_policy(policy)
    if mil_overrides and not info.mil_family:
        raise ValueError(f"policy {policy!r} has no MiLConfig to override")
    ctx = PolicyContext(
        zeros_by_scheme=zeros_by_scheme,
        lookahead=lookahead,
        mil_overrides=mil_overrides,
    )
    return info.builder(ctx)


def policy_table() -> str:
    """The policy-name table, rendered from the registry.

    Used verbatim in the :mod:`repro.core.framework` module docstring so
    the documented set can never drift from the registered set.
    """
    rows = [
        (f"``{info.name}``", info.description or "(no description)")
        for info in _REGISTRY.values()
    ]
    left = max(len(name) for name, _ in rows)
    right = max(
        (max(len(line) for line in _wrap(desc)) for _, desc in rows),
        default=0,
    )
    bar = "=" * left + " " + "=" * right
    lines = [bar]
    for name, desc in rows:
        wrapped = _wrap(desc)
        lines.append(f"{name:<{left}} {wrapped[0]}")
        lines.extend(f"{'':<{left}} {cont}" for cont in wrapped[1:])
    lines.append(bar)
    return "\n".join(lines)


def _wrap(text: str, width: int = 58) -> list[str]:
    import textwrap

    return textwrap.wrap(text, width) or [""]


# ----------------------------------------------------------------------
# Built-in policies, in the paper's presentation order.
# ----------------------------------------------------------------------

def _always(scheme: str):
    return lambda ctx: (lambda: AlwaysScheme(scheme))


register_policy(
    "raw", schemes=("raw",),
    description="uncoded bursts (the only option on x4 devices, which "
                "lack DBI pins)",
)(_always("raw"))

register_policy(
    "dbi", schemes=("dbi",),
    description="baseline: DDR4's native DBI at burst length 8",
)(_always("dbi"))

register_policy(
    "milc", schemes=("milc",),
    description="MiLC-only (always the base code)",
)(lambda ctx: (lambda: MiLCOnlyPolicy("milc")))


@register_policy(
    "mil", schemes=("milc", "3lwc"), mil_family=True,
    description="the full opportunistic framework (MiLC + 3-LWC + rdyX)",
)
def _build_mil(ctx: PolicyContext):
    config = ctx.mil_config(lookahead=ctx.lookahead)
    return lambda: MiLPolicy(config, ctx.zeros_by_scheme)


@register_policy(
    "mil-adaptive", schemes=("milc", "3lwc", "dbi"), mil_family=True,
    description="mil plus an uncoded fallback tier under saturation "
                "(the Section 7.5.2 decision logic)",
)
def _build_mil_adaptive(ctx: PolicyContext):
    # The Section 7.5.2 extension: a third, uncoded tier engaged under
    # bus saturation (see MiLConfig.short_lookahead).
    config = ctx.mil_config(lookahead=ctx.lookahead, short_lookahead=12)
    return lambda: MiLPolicy(config, ctx.zeros_by_scheme)


@register_policy(
    "mil-lwc12", schemes=("milc", "lwc12"), mil_family=True,
    description="mil with the intermediate (8, 12) 3-LWC as its long "
                "code (Section 7.5.3)",
)
def _build_mil_lwc12(ctx: PolicyContext):
    # Section 7.5.3's intermediate long code: (8,12) 3-LWC at BL12
    # captures shorter idle windows than the (8,17) code's BL16.
    config = ctx.mil_config(lookahead=ctx.lookahead, long_scheme="lwc12")
    return lambda: MiLPolicy(config, ctx.zeros_by_scheme)


register_policy(
    "cafo2", schemes=("cafo2",),
    description="CAFO with two fixed iterations, under the MiL framework",
)(_always("cafo2"))

register_policy(
    "cafo4", schemes=("cafo4",),
    description="CAFO with four fixed iterations",
)(_always("cafo4"))

register_policy(
    "3lwc", schemes=("3lwc",),
    description="always-on 3-LWC (the Figure 2 strawman)",
)(_always("3lwc"))

register_policy(
    "bl12", schemes=("bl12",),
    description="fixed burst length 12 (Figure 20 sweep; no energy model)",
)(_always("bl12"))

register_policy(
    "bl14", schemes=("bl14",),
    description="fixed burst length 14 (Figure 20 sweep; no energy model)",
)(_always("bl14"))

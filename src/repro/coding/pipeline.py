"""Burst-level coding pipeline: cache lines -> bus beats and zero counts.

The DRAM simulator moves 64-byte cache lines.  This module turns the
:mod:`~repro.coding.registry` — the single source of truth for how each
coding scheme packs a line onto the DDR4 data pins (Figure 12 of the
paper), what burst length that implies, and how many 0s end up on the
wires — into the zero tables the pseudo-open-drain IO energy model
charges for (and, via transition signaling, the LPDDR3 flip count).

Burst formats (Section 4.4):

========  ============  =====================================
scheme    burst length  packing
========  ============  =====================================
dbi       8             64 data pins + 8 DBI pins, 8 beats
milc      10            8 x (64 -> 80) blocks over 64 pins
cafo2/4   10            8 x (64 -> 80) blocks over 64 pins
3lwc      16            64 x (8 -> 17) codewords over the 72
                        data+DBI pins, 64 pad bits sent as 1s
========  ============  =====================================

``precompute_line_zeros`` is the hot path: it evaluates every scheme
over an entire trace of lines with vectorised numpy so the simulator
only ever does table lookups — and serves repeated traces from the
campaign-wide :mod:`~repro.coding.zerocache`, so a campaign that
replays one trace under many policies encodes each (trace, scheme)
pair exactly once per process.

``BURST_FORMATS``, ``scheme_for`` and ``line_zeros`` are kept as thin
derived views of the registry for backward compatibility; new code
should use :mod:`repro.coding.registry` directly.
"""

from __future__ import annotations

from collections.abc import MutableMapping

import numpy as np

# Importing the codec modules is what populates the registry; pipeline
# guarantees the built-in schemes are present regardless of how it was
# reached.  ``reference`` must come after the codec modules: it attaches
# the pure-Python oracle backends to the entries they register.
from . import cafo, dbi, lwc, lwc_family, milc  # noqa: F401
from . import reference  # noqa: F401
from . import registry, zerocache
from .bitops import zeros_in_bytes
from .registry import (
    LINE_BYTES,
    BurstFormat,
    NoCodecError,
    beat_layout,
    check_lines,
)

__all__ = [
    "LINE_BYTES",
    "BurstFormat",
    "BURST_FORMATS",
    "NoCodecError",
    "beat_layout",
    "scheme_for",
    "encode_trace",
    "line_zeros",
    "precompute_line_zeros",
    "raw_line_zeros",
]

_check_lines = check_lines  # historical private alias


def raw_line_zeros(lines: np.ndarray) -> np.ndarray:
    """Zeros in the *uncoded* 512-bit lines (Figure 7's normalisation).

    Counted straight on the byte values (popcount), never via an 8x
    bit-array expansion — this runs once per line per campaign run.
    """
    return zeros_in_bytes(check_lines(lines))


# Uncoded transfer: the only option for x4 devices, which have no DBI
# pins (Section 2.1.1) — and MiL's fallback tier.  It has no codec
# object, but its zero-count path is the raw popcount.
registry.register_burst_format(
    "raw", burst_length=8, extra_latency=0,
    count_fn=raw_line_zeros,
    description="uncoded bursts (the only option on x4 devices)",
)
# Hypothetical intermediate lengths for the Figure 20 fixed-burst
# sensitivity sweep (the paper evaluates BL 10/12/14/16 regardless of
# any specific code occupying them).  No codec: asking them for zero
# counts raises NoCodecError.
registry.register_burst_format(
    "bl12", burst_length=12, extra_latency=1,
    description="fixed burst length 12 (Figure 20 sweep; no codec)",
)
registry.register_burst_format(
    "bl14", burst_length=14, extra_latency=1,
    description="fixed burst length 14 (Figure 20 sweep; no codec)",
)


class _BurstFormatView(MutableMapping):
    """Live dict-shaped view of the registry (legacy ``BURST_FORMATS``).

    Reads reflect every registration, including ones made after import
    (the one-file custom-codec path).  Writes forward to the registry
    so the historical ``BURST_FORMATS["nzc"] = BurstFormat(...)`` recipe
    keeps working.
    """

    def __getitem__(self, name: str) -> BurstFormat:
        try:
            return registry.scheme_info(name).as_burst_format()
        except KeyError:
            raise KeyError(name) from None

    def __setitem__(self, name: str, fmt: BurstFormat) -> None:
        registry.register_burst_format(
            name, burst_length=fmt.burst_length,
            extra_latency=fmt.extra_latency,
        )

    def __delitem__(self, name: str) -> None:
        if name not in registry.scheme_names():
            raise KeyError(name)
        registry.unregister_scheme(name)

    def __iter__(self):
        return iter(registry.scheme_names())

    def __len__(self) -> int:
        return len(registry.scheme_names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BURST_FORMATS({dict(self)!r})"


BURST_FORMATS: MutableMapping = _BurstFormatView()


def scheme_for(name: str):
    """Return the codec object registered under ``name``.

    Raises ``KeyError`` for unknown schemes and :class:`NoCodecError`
    (a ``KeyError`` subclass) for burst-format-only entries such as
    ``bl12``/``bl14`` or ``raw``.
    """
    return registry.codec_for(name)


def line_zeros(scheme: str, lines: np.ndarray) -> np.ndarray:
    """Zeros put on the bus per line when transmitted under ``scheme``.

    Accepts ``(n, 64)`` uint8 lines (or a single line) and returns an
    ``(n,)`` int64 count that already includes flag/mode/pad bits.
    Burst-format-only schemes raise :class:`NoCodecError`.
    """
    return registry.scheme_info(scheme).line_zeros(lines)


def encode_trace(
    scheme: str, lines: np.ndarray, impl: str | None = None
) -> np.ndarray:
    """Encode a whole trace of lines under ``scheme`` in one batched shot.

    Applies the scheme's Figure 12 layout (beat squares for MiLC/CAFO,
    line order for DBI/LWC) and runs the codec's ``encode_lines``
    kernel: ``(n, 64)`` uint8 lines in, ``(n, code_bits_per_line)``
    uint8 bit rows out.  ``impl`` selects a specific backend
    (``"reference"`` | ``"numpy"`` | ``"native"``); ``None`` uses the
    process-wide :func:`~repro.coding.registry.active_impl`.  This is
    what the ``coding.encode_trace.*`` benchmarks measure.
    """
    info = registry.scheme_info(scheme)
    lines = check_lines(lines)
    arranged = beat_layout(lines) if info.layout == "beat" else lines
    return info.codec_impl(impl).encode_lines(arranged)


def precompute_line_zeros(
    lines: np.ndarray,
    schemes: tuple[str, ...] = ("dbi", "milc", "3lwc"),
    digest: str | None = None,
    cache=True,
) -> dict[str, np.ndarray]:
    """Evaluate several schemes over a whole trace of lines at once.

    The simulator calls this once per workload and then charges IO
    energy with O(1) lookups per transferred burst.

    Tables are served from the campaign-wide
    :class:`~repro.coding.zerocache.ZeroTableCache`, keyed on
    ``(trace digest, scheme)``, so replaying one trace under many
    policies encodes each pair once per process.  ``digest`` lets the
    caller supply a precomputed content digest of ``lines`` (e.g.
    :attr:`~repro.workloads.trace.MemoryTrace.line_digest`); ``cache``
    may be ``False`` (bypass), ``True`` (the process-global cache), or
    a private :class:`~repro.coding.zerocache.ZeroTableCache`.  Cached
    tables are read-only arrays.

    Cache keys are ``(trace digest, scheme)`` and deliberately do *not*
    include the active codec backend: every backend of a scheme is
    required to be bit-identical (see ``register_backend``), so the
    tables — and everything downstream, including campaign cache
    entries — are byte-identical whatever ``REPRO_CODEC_IMPL`` says.
    """
    lines = check_lines(lines)
    if cache is True:
        cache = zerocache.global_cache() if zerocache.cache_enabled() else None
    elif cache is False:
        cache = None
    if cache is None:
        return {scheme: line_zeros(scheme, lines) for scheme in schemes}
    if digest is None:
        digest = zerocache.lines_digest(lines)
    tables: dict[str, np.ndarray] = {}
    for scheme in schemes:
        table = cache.get(digest, scheme)
        if table is None:
            table = cache.put(digest, scheme, line_zeros(scheme, lines))
        tables[scheme] = table
    return tables


def __getattr__(name: str):
    # Legacy private surface, derived live from the registry so old
    # call sites (and tests) keep seeing every registered codec.
    if name == "_SCHEMES":
        return {n: registry.scheme_info(n).codec
                for n in registry.codec_schemes()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

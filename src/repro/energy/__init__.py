"""Energy models: IO interface, DRAM system, whole system, codec cost."""

from .codec_cost import (
    CODEC_DESIGNS,
    LIB_22NM,
    PAPER_TABLE4,
    CodecCost,
    CodecDesign,
    GateLibrary,
    synthesize,
    table4,
)
from .constants import (
    DDR3_ENERGY,
    DDR4_ENERGY,
    LPDDR3_ENERGY,
    MOBILE_SYSTEM_ENERGY,
    SERVER_SYSTEM_ENERGY,
    DramEnergyParams,
    SystemEnergyParams,
)
from .dram_power import DramEnergyBreakdown, DramEnergyModel
from .io_power import BUS_PINS, IOEnergyModel, IOEnergyResult
from .system_power import SystemEnergyBreakdown, SystemEnergyModel

__all__ = [
    "CODEC_DESIGNS",
    "LIB_22NM",
    "PAPER_TABLE4",
    "CodecCost",
    "CodecDesign",
    "GateLibrary",
    "synthesize",
    "table4",
    "DDR3_ENERGY",
    "DDR4_ENERGY",
    "LPDDR3_ENERGY",
    "MOBILE_SYSTEM_ENERGY",
    "SERVER_SYSTEM_ENERGY",
    "DramEnergyParams",
    "SystemEnergyParams",
    "DramEnergyBreakdown",
    "DramEnergyModel",
    "BUS_PINS",
    "IOEnergyModel",
    "IOEnergyResult",
    "SystemEnergyBreakdown",
    "SystemEnergyModel",
]

"""Address-stream primitives the synthetic benchmarks are built from.

Every primitive returns parallel numpy arrays ``(addresses, is_write)``
describing one core's accesses in program order.  The primitives are
deliberately simple and composable; :mod:`repro.workloads.benchmarks`
assembles them into the eleven Table 3 workloads.

All primitives take an explicit ``rng`` so benchmark traces are fully
reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sequential_stream",
    "random_access",
    "strided_sweep",
    "gather_stream",
    "tile_reuse",
    "update_pairs",
    "interleave",
    "ARRIVAL_KINDS",
    "poisson_gaps",
    "uniform_gaps",
    "bursty_gaps",
    "arrival_gaps",
]

LINE = 64


def sequential_stream(
    rng: np.random.Generator,
    count: int,
    base: int,
    span_bytes: int,
    element_bytes: int = 8,
    write_fraction: float = 0.0,
    start_offset: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A linear sweep through ``[base, base + span)``, wrapping around."""
    if count <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    start = (
        int(rng.integers(0, max(1, span_bytes // element_bytes)))
        if start_offset is None
        else start_offset
    )
    idx = (start + np.arange(count, dtype=np.int64)) % max(
        1, span_bytes // element_bytes
    )
    addresses = base + idx * element_bytes
    is_write = rng.random(count) < write_fraction
    return addresses, is_write


def random_access(
    rng: np.random.Generator,
    count: int,
    base: int,
    span_bytes: int,
    element_bytes: int = 8,
    write_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly random element accesses over a region (GUPS-style)."""
    elements = max(1, span_bytes // element_bytes)
    idx = rng.integers(0, elements, size=count)
    addresses = base + idx * element_bytes
    is_write = rng.random(count) < write_fraction
    return addresses.astype(np.int64), is_write


def strided_sweep(
    rng: np.random.Generator,
    count: int,
    base: int,
    span_bytes: int,
    stride_bytes: int,
    element_bytes: int = 8,
    write_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """A constant-stride walk (FFT butterflies, multigrid levels)."""
    elements = max(1, span_bytes // element_bytes)
    stride_elems = max(1, stride_bytes // element_bytes)
    idx = (np.arange(count, dtype=np.int64) * stride_elems) % elements
    addresses = base + idx * element_bytes
    is_write = rng.random(count) < write_fraction
    return addresses, is_write


def gather_stream(
    rng: np.random.Generator,
    count: int,
    seq_base: int,
    seq_span: int,
    gather_base: int,
    gather_span: int,
    gather_ratio: float = 0.5,
    write_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential index stream interleaved with random gathers (CG).

    Models ``y[i] += A[j] * x[col[j]]``: the matrix and column arrays
    stream sequentially while the source-vector reads scatter randomly.
    """
    seq_count = count - int(count * gather_ratio)
    seq_addr, seq_wr = sequential_stream(
        rng, seq_count, seq_base, seq_span, write_fraction=write_fraction
    )
    g_count = count - seq_count
    g_addr, g_wr = random_access(rng, g_count, gather_base, gather_span)
    return interleave(rng, [(seq_addr, seq_wr), (g_addr, g_wr)])


def tile_reuse(
    rng: np.random.Generator,
    count: int,
    base: int,
    span_bytes: int,
    tile_bytes: int,
    reuse_factor: int,
    write_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked-algorithm pattern: sweep a tile ``reuse_factor`` times,
    then move to the next tile (matrix multiply)."""
    tiles = max(1, span_bytes // tile_bytes)
    per_tile = max(1, (tile_bytes // 8) * reuse_factor)
    addresses = np.empty(count, dtype=np.int64)
    produced = 0
    tile = int(rng.integers(0, tiles))
    while produced < count:
        take = min(per_tile, count - produced)
        offsets = (np.arange(take, dtype=np.int64) * 8) % tile_bytes
        addresses[produced : produced + take] = base + tile * tile_bytes + offsets
        produced += take
        tile = (tile + 1) % tiles
    is_write = rng.random(count) < write_fraction
    return addresses, is_write


def update_pairs(
    rng: np.random.Generator,
    count: int,
    base: int,
    span_bytes: int,
    element_bytes: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Read-modify-write pairs at random elements (GUPS updates)."""
    pairs = count // 2
    elements = max(1, span_bytes // element_bytes)
    idx = rng.integers(0, elements, size=pairs)
    addresses = np.repeat(base + idx * element_bytes, 2).astype(np.int64)
    is_write = np.tile(np.array([False, True]), pairs)
    return addresses, is_write


# ----------------------------------------------------------------------
# Arrival processes (think-time gap samplers for synthesized traffic)
# ----------------------------------------------------------------------
#
# The Table 3 benchmarks derive their think times from arithmetic
# intensity through the cache hierarchy; scenario traffic
# (repro.workloads.mixed) instead *samples* inter-arrival gaps from an
# explicit stochastic process.  Every sampler returns ``count`` int64
# DRAM-cycle gaps with the requested mean, so sweeping the process kind
# at a fixed ``mean_gap`` isolates the effect of arrival *shape* on bus
# utilisation and look-ahead windows.

ARRIVAL_KINDS = ("poisson", "uniform", "bursty")


def poisson_gaps(
    rng: np.random.Generator, count: int, mean_gap: float
) -> np.ndarray:
    """Memoryless arrivals: geometric gaps with mean ``mean_gap``.

    The discrete-time analogue of a Poisson process — each DRAM cycle
    independently starts a new arrival with probability
    ``1 / (mean_gap + 1)`` — so gaps of zero (back-to-back records) are
    as common as an open-loop "millions of users" aggregate makes them.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if mean_gap < 0:
        raise ValueError("mean_gap must be non-negative")
    if mean_gap == 0:
        return np.zeros(count, dtype=np.int64)
    p = 1.0 / (float(mean_gap) + 1.0)
    # numpy's geometric counts trials (>= 1); gaps count idle cycles.
    return rng.geometric(p, size=count).astype(np.int64) - 1


def uniform_gaps(
    rng: np.random.Generator,
    count: int,
    mean_gap: float,
    jitter: float = 1.0,
) -> np.ndarray:
    """Paced arrivals: gaps uniform in ``mean_gap * [1-jitter, 1+jitter]``.

    ``jitter=0`` degenerates to a fixed-rate clocked stream; the default
    full jitter keeps the mean while spreading gaps over
    ``[0, 2*mean_gap]``.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if mean_gap < 0:
        raise ValueError("mean_gap must be non-negative")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be in [0, 1]")
    lo = float(mean_gap) * (1.0 - jitter)
    hi = float(mean_gap) * (1.0 + jitter)
    return np.rint(rng.uniform(lo, hi, size=count)).astype(np.int64)


def bursty_gaps(
    rng: np.random.Generator,
    count: int,
    mean_gap: float,
    burst: int = 8,
) -> np.ndarray:
    """On/off arrivals: geometric bursts of back-to-back records.

    Records arrive in bursts whose lengths are geometric with mean
    ``burst``; within a burst gaps are zero, and each burst is preceded
    by one long idle gap sized so the overall mean stays ``mean_gap``.
    This is the shape that opens the empty look-ahead windows MiL's
    long code needs (compare ``CoreAccessStream.burst_lines``), but as
    an explicit traffic knob instead of a benchmark property.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if mean_gap < 0:
        raise ValueError("mean_gap must be non-negative")
    if burst < 1:
        raise ValueError("burst must be >= 1")
    # Geometric burst membership: record i starts a new burst with
    # probability 1/burst (the first record always does).
    starts = rng.random(count) < (1.0 / float(burst))
    starts[0] = True
    n_bursts = int(starts.sum())
    # Each burst head carries the idle time of its whole burst: the
    # expected records per burst is ``count / n_bursts`` exactly, so
    # scaling by it preserves the configured mean gap.
    per_burst = float(mean_gap) * count / n_bursts
    gaps = np.zeros(count, dtype=np.int64)
    idle = rng.geometric(1.0 / (per_burst + 1.0), size=n_bursts) - 1
    gaps[starts] = idle.astype(np.int64)
    return gaps


def arrival_gaps(
    rng: np.random.Generator,
    count: int,
    kind: str,
    mean_gap: float,
    burst: int = 8,
) -> np.ndarray:
    """Dispatch to the named arrival sampler (:data:`ARRIVAL_KINDS`)."""
    kind = kind.lower()
    if kind == "poisson":
        return poisson_gaps(rng, count, mean_gap)
    if kind == "uniform":
        return uniform_gaps(rng, count, mean_gap)
    if kind == "bursty":
        return bursty_gaps(rng, count, mean_gap, burst=burst)
    raise ValueError(
        f"unknown arrival kind {kind!r}; known: {list(ARRIVAL_KINDS)}"
    )


def interleave(
    rng: np.random.Generator,
    streams: list[tuple[np.ndarray, np.ndarray]],
    chunk: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge several (addresses, is_write) streams in chunked round-robin."""
    streams = [s for s in streams if len(s[0])]
    if not streams:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    addr_parts: list[np.ndarray] = []
    wr_parts: list[np.ndarray] = []
    positions = [0] * len(streams)
    live = list(range(len(streams)))
    while live:
        nxt = []
        for s in live:
            a, w = streams[s]
            start = positions[s]
            stop = min(start + chunk, len(a))
            addr_parts.append(a[start:stop])
            wr_parts.append(w[start:stop])
            positions[s] = stop
            if stop < len(a):
                nxt.append(s)
        live = nxt
    return np.concatenate(addr_parts), np.concatenate(wr_parts)

"""MetricRegistry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.as_dict() == {"kind": "counter", "value": 42}


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("q")
        assert g.updates == 0
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert g.value == 7.0
        assert g.min == 1.0
        assert g.max == 7.0
        assert g.updates == 3

    def test_untouched_gauge_has_no_extremes(self):
        g = Gauge("q")
        body = g.as_dict()
        assert body["min"] is None and body["max"] is None


class TestHistogram:
    def test_buckets_are_inclusive_upper_edges(self):
        h = Histogram("h", bounds=(0, 2, 4))
        for v in (0, 1, 2, 3, 4, 5):
            h.observe(v)
        # <=0: {0}; <=2: {1,2}; <=4: {3,4}; overflow: {5}
        assert h.counts == [1, 2, 2, 1]
        assert h.count == 6
        assert h.total == 15
        assert h.min == 0 and h.max == 5
        assert h.mean == pytest.approx(2.5)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_default_bounds_cover_queue_depths(self):
        h = Histogram("h")
        assert h.bounds == Histogram.DEFAULT_BOUNDS
        h.observe(1000)  # deep but still countable: overflow bucket
        assert h.counts[-1] == 1

    def test_unsorted_or_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(4, 2))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        a = reg.counter("dram.ch0.act_count")
        b = reg.counter("dram.ch0.act_count")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")

    def test_as_dict_is_name_sorted(self):
        reg = MetricRegistry()
        reg.counter("b.two")
        reg.gauge("a.one")
        reg.histogram("c.three")
        assert list(reg.as_dict()) == ["a.one", "b.two", "c.three"]
        assert reg.names() == ["a.one", "b.two", "c.three"]
        assert "a.one" in reg
        assert reg["a.one"].kind == "gauge"

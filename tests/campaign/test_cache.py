"""Content-addressed cache: round-trips, invalidation, corruption."""

import json

import pytest

from repro.campaign import RunSpec, cache_path, load, model_fingerprint, store
from repro.campaign.cache import cache_dir, cache_enabled
from repro.core.framework import RunSummary


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


def _summary(spec: RunSpec) -> RunSummary:
    return RunSummary(
        benchmark=spec.benchmark,
        system=spec.system,
        policy=spec.policy,
        lookahead=spec.lookahead,
        cycles=1000,
        seconds=1e-6,
        bus_utilization=0.5,
        mean_read_latency=40.0,
        demand_reads=64,
        total_zeros=123,
        raw_zeros=456,
        scheme_counts={"dbi": 64},
    )


def test_store_then_load_round_trip():
    spec = RunSpec(benchmark="MM", accesses_per_core=100)
    path = store(spec, _summary(spec), wall_s=1.25, fingerprint="aa")
    assert path is not None and path.exists()
    cached = load(spec, fingerprint="aa")
    assert cached is not None
    assert cached.total_zeros == 123
    assert cached.stats == {"wall_s": 1.25, "cache_hit": True}
    # stats is orchestration metadata and must never be persisted
    assert "stats" not in json.loads(path.read_text())["summary"]


def test_fingerprint_change_is_a_miss():
    spec = RunSpec(benchmark="MM", accesses_per_core=100)
    store(spec, _summary(spec), fingerprint="model-v1")
    assert load(spec, fingerprint="model-v1") is not None
    # an edited model source produces a new fingerprint -> new address
    assert load(spec, fingerprint="model-v2") is None
    assert cache_path(spec, "model-v1") != cache_path(spec, "model-v2")


def test_model_fingerprint_is_stable_and_hex():
    fp = model_fingerprint()
    assert fp == model_fingerprint()
    assert len(fp) == 16
    int(fp, 16)  # must be a hex digest


def test_corrupt_cache_file_is_removed_and_missed():
    spec = RunSpec(benchmark="MM", accesses_per_core=100)
    path = store(spec, _summary(spec), fingerprint="aa")
    path.write_text('{"format": 1, "summ')  # truncated mid-write
    assert load(spec, fingerprint="aa") is None
    assert not path.exists()


def test_schema_incompatible_cache_file_is_removed():
    spec = RunSpec(benchmark="MM", accesses_per_core=100)
    path = store(spec, _summary(spec), fingerprint="aa")
    path.write_text(json.dumps({"format": 1, "summary": {"bogus": 1}}))
    assert load(spec, fingerprint="aa") is None
    assert not path.exists()


def test_missing_file_is_a_plain_miss():
    spec = RunSpec(benchmark="CG", accesses_per_core=100)
    assert load(spec, fingerprint="aa") is None


def test_cache_dir_created_at_write_time(tmp_path, monkeypatch):
    nested = tmp_path / "deep" / "nested" / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(nested))
    assert cache_dir() == nested
    assert not nested.exists()  # reading never creates it
    spec = RunSpec(benchmark="MM", accesses_per_core=100)
    assert load(spec, fingerprint="aa") is None
    assert not nested.exists()
    store(spec, _summary(spec), fingerprint="aa")
    assert nested.is_dir()


def test_no_cache_env_bypasses_read_and_write(monkeypatch):
    spec = RunSpec(benchmark="MM", accesses_per_core=100)
    store(spec, _summary(spec), fingerprint="aa")  # seed while enabled

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert not cache_enabled()
    # read path bypassed: the seeded entry is ignored
    assert load(spec, fingerprint="aa") is None
    # write path bypassed: nothing new lands on disk
    other = RunSpec(benchmark="CG", accesses_per_core=100)
    assert store(other, _summary(other), fingerprint="aa") is None
    assert not cache_path(other, "aa").exists()

    monkeypatch.delenv("REPRO_NO_CACHE")
    assert load(spec, fingerprint="aa") is not None

"""Exporters: JSON-lines metrics dumps and Chrome trace-event files.

Two on-disk formats:

* ``*.metrics.jsonl`` — line 1 is a ``{"meta": ...}`` header, every
  following line is one instrument (``{"name": ..., "kind": ...,
  ...}``).  ``repro telemetry PATH`` pretty-prints these.
* ``*.trace.json`` — the Chrome trace-event JSON-array format, openable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Run-
  level sessions stamp events in DRAM cycles and are scaled to real
  microseconds through the session's ``cycle_ns``; campaign sessions
  stamp in shared-clock seconds.  Multiple sessions may be merged into
  one file — each gets its own pid/track group, which is how a campaign
  timeline and a run timeline coexist in one Perfetto view.
"""

from __future__ import annotations

import json
from pathlib import Path

from .session import TelemetrySession

__all__ = [
    "chrome_trace_events",
    "load_metrics_jsonl",
    "write_chrome_trace",
    "write_metrics_jsonl",
]


def write_metrics_jsonl(path, session: TelemetrySession) -> Path:
    """Dump the session's metrics as JSON-lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = session.metrics_payload()
    lines = [json.dumps({"meta": payload["meta"]}, sort_keys=True)]
    for name, body in payload["metrics"].items():
        lines.append(json.dumps({"name": name, **body}, sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def load_metrics_jsonl(path) -> dict:
    """Inverse of :func:`write_metrics_jsonl`.

    Returns ``{"meta": ..., "metrics": {name: body}}``; raises
    ``ValueError`` on files that are not a metrics dump.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty metrics dump")
    head = json.loads(lines[0])
    if "meta" not in head:
        raise ValueError(f"{path}: missing meta header line")
    metrics: dict[str, dict] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        body = json.loads(line)
        name = body.pop("name", None)
        if name is None:
            raise ValueError(f"{path}:{lineno}: metric line without a name")
        metrics[name] = body
    return {"meta": head["meta"], "metrics": metrics}


def _ts_scale_us(session: TelemetrySession) -> float:
    """Multiplier taking the session's timestamps to microseconds."""
    if session.time_unit == "cycles":
        return session.cycle_ns / 1e3
    return 1e6  # seconds


def chrome_trace_events(*sessions: TelemetrySession) -> list[dict]:
    """Flatten sessions into Chrome trace-event dicts.

    Each session becomes one pid (named after its label); each trace
    track within it becomes one tid.  Counter totals are appended as
    per-pid metadata-free counter events at the end of the timeline.
    """
    events: list[dict] = []
    for pid, session in enumerate(sessions):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": session.label},
        })
        if session.trace is None:
            continue
        scale = _ts_scale_us(session)
        tids: dict[str, int] = {}
        for event in session.trace:
            tid = tids.get(event.track)
            if tid is None:
                tid = len(tids)
                tids[event.track] = tid
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                    "args": {"name": event.track},
                })
            body = {
                "name": event.name,
                "cat": event.category,
                "ph": event.phase,
                "ts": event.ts * scale,
                "pid": pid,
                "tid": tid,
            }
            if event.phase == "X":
                body["dur"] = event.dur * scale
            if event.phase == "i":
                body["s"] = "t"  # thread-scoped instant
            if event.args:
                body["args"] = event.args_dict()
            events.append(body)
    return events


def write_chrome_trace(path, *sessions: TelemetrySession) -> Path:
    """Write sessions as one Chrome trace-event JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "traceEvents": chrome_trace_events(*sessions),
        "displayTimeUnit": "ns",
        "metadata": {
            "tool": "repro.telemetry",
            "sessions": [s.label for s in sessions],
        },
    }
    path.write_text(json.dumps(document))
    return path

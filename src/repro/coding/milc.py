"""MiLC — the "More is Less Code" (Section 4.3.2 / 5.2.3, Figures 10, 14).

MiLC encodes 64 data bits laid out as an 8x8 square into an 80-bit
codeword: the (transformed) square plus two extra mode columns.  Every
8-bit row independently picks, among four candidates, the one with the
fewest transmitted 0s (mode-bit 0s included):

=========  =============================  ===========
candidate  transmitted row                mode (inv, xor)
=========  =============================  ===========
original   ``row``                        (0, 0)
inverted   ``~row``                       (1, 0)
xor        ``row ^ prev_row``             (0, 1)
inv-xor    ``~(row ^ prev_row)``          (1, 1)
=========  =============================  ===========

``prev_row`` is always the *original* previous data row, so all eight
row encoders run in parallel (Figure 14) while the decoder recovers rows
top-to-bottom.  The XOR candidates exploit spatial correlation: a row
equal to its predecessor becomes all-ones under inv-xor — zero IO cost.

Row 0 has no predecessor, so only the original/inverted candidates are
available to it; its xor-column position is repurposed as the ``xorbi``
bit (the gray bit in Figure 10), which bus-inverts the other seven xor
mode bits in that column to squeeze out a few more 0s.

Codeword layout (80 bits)::

    [ row0 body (8) | row1 body (8) | ... | row7 body (8)    # 64 bits
      inv0..inv7                                              # 8 bits
      xorbi, xor1..xor7 ]                                     # 8 bits

The mode polarity above means all-1 mode bits accompany the inv-xor
candidate, so perfectly correlated data transmits (almost) no 0s at all.
"""

from __future__ import annotations

import numpy as np

from .base import CodingScheme
from .bitops import popcount_per_byte
from .registry import register_codec

__all__ = ["MiLCCode"]

# Zeros contributed by the two mode bits of each candidate, in candidate
# order (original, inverted, xor, inv-xor).  These constants are the
# "additional constant" inputs of the Figure 14 row encoder.
_MODE_ZERO_COST = np.array([2, 1, 1, 0], dtype=np.int64)

_ROW0_MASK_COST = np.iinfo(np.int64).max


def _candidate_zeros(ones: np.ndarray, xor_ones: np.ndarray) -> np.ndarray:
    """Per-row candidate body zeros from popcounts alone.

    ``ones``/``xor_ones`` have shape ``(..., 8)`` — the popcount of each
    row and of each ``row ^ prev_row``.  The result has shape
    ``(..., 8, 4)`` in candidate order; no candidate *bodies* are
    materialised (the inverted/xor bodies' zero counts are arithmetic
    complements), which keeps the batched kernel free of the old
    ``(n, 8, 4, 8)`` temporary.
    """
    ones = np.asarray(ones, dtype=np.int64)
    xor_ones = np.asarray(xor_ones, dtype=np.int64)
    return np.stack(
        [8 - ones, ones, 8 - xor_ones, xor_ones], axis=-1
    )


def _choose_candidates(zeros: np.ndarray) -> np.ndarray:
    """argmin candidate per row, with row 0 restricted to original/inverted."""
    cost = zeros + _MODE_ZERO_COST
    cost[..., 0, 2:] = _ROW0_MASK_COST
    return cost.argmin(axis=-1)  # ties -> lowest candidate index


def _zeros_for_choice(zeros: np.ndarray, choice: np.ndarray) -> np.ndarray:
    """Total transmitted zeros per block given per-row candidate choices."""
    body_zeros = np.take_along_axis(
        zeros, choice[..., None], axis=-1
    )[..., 0].sum(axis=-1)
    inv_zeros = (1 - (choice % 2)).sum(axis=-1, dtype=np.int64)
    tail_ones = (choice[..., 1:] >= 2).sum(axis=-1, dtype=np.int64)
    # xorbi keeps (zeros = 7 - ones + 0 for the flag's own 1) or flips
    # (zeros = ones + 1 including the now-0 flag), whichever is sparser.
    xor_zeros = np.minimum(7 - tail_ones, tail_ones + 1)
    return body_zeros + inv_zeros + xor_zeros


@register_codec(
    "milc", burst_length=10, extra_latency=1, layout="beat", pins=64,
    description="the paper's (64, 80) base code: 8 blocks over 64 pins",
)
class MiLCCode(CodingScheme):
    """The (64, 80) MiLC block code."""

    name = "milc"
    data_bits = 64
    code_bits = 80
    extra_latency_cycles = 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        square = data_bits.reshape(-1, 8, 8)
        n = square.shape[0]

        prev = np.empty_like(square)
        prev[:, 1:] = square[:, :-1]
        prev[:, 0] = 0  # row 0 has no predecessor; masked in the cost
        xored = square ^ prev

        ones = square.sum(axis=-1, dtype=np.int64)  # (n, 8)
        xor_ones = xored.sum(axis=-1, dtype=np.int64)
        zeros = _candidate_zeros(ones, xor_ones)  # (n, 8, 4)
        choice = _choose_candidates(zeros)  # (n, 8)

        inv_col = (choice % 2).astype(np.uint8)  # candidates 1, 3 invert
        xor_col = (choice >= 2).astype(np.uint8)  # candidates 2, 3 xor

        # Select each row's body without materialising all four
        # candidates: pick the (possibly xored) base, then complementing
        # is a XOR with the inv flag.
        base = np.where(xor_col[:, :, None] == 1, xored, square)
        body = base ^ inv_col[:, :, None]

        # xorbi: bus-invert the xor bits of rows 1..7 when that removes 0s.
        tail = xor_col[:, 1:]
        tail_ones = tail.sum(axis=1, dtype=np.int64)
        # keep: xorbi=1 plus the 7 bits as-is -> zeros = 7 - ones
        # flip: xorbi=0 plus the 7 bits inverted -> zeros = ones + 1
        flip = (tail_ones + 1) < (7 - tail_ones)
        xor_out = xor_col.copy()
        xor_out[:, 0] = np.where(flip, 0, 1)
        xor_out[:, 1:] = np.where(flip[:, None], 1 - tail, tail)

        code = np.concatenate(
            [body.reshape(n, 64), inv_col, xor_out], axis=1
        ).astype(np.uint8)
        return code.reshape(lead + (80,))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        flat = code_bits.reshape(-1, 80)
        n = flat.shape[0]

        body = flat[:, :64].reshape(n, 8, 8)
        inv_col = flat[:, 64:72]
        xor_raw = flat[:, 72:80]

        xorbi = xor_raw[:, 0]
        xor_col = np.zeros((n, 8), dtype=np.uint8)
        xor_col[:, 1:] = np.where(
            (xorbi == 0)[:, None], 1 - xor_raw[:, 1:], xor_raw[:, 1:]
        )

        # Step 1 (parallel): undo inversion.
        uninv = np.where(inv_col[:, :, None] == 1, 1 - body, body)

        # Step 2 (sequential down the rows): undo XOR with decoded rows.
        out = np.empty_like(uninv)
        out[:, 0] = uninv[:, 0]
        for i in range(1, 8):
            out[:, i] = np.where(
                xor_col[:, i, None] == 1, uninv[:, i] ^ out[:, i - 1], uninv[:, i]
            )
        return out.reshape(lead + (64,))

    # ------------------------------------------------------------------
    # Fast zero counting
    # ------------------------------------------------------------------
    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        """Zeros on the bus per 64-bit block, without materialising codes."""
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        square = data_bits.reshape(-1, 8, 8)

        prev = np.empty_like(square)
        prev[:, 1:] = square[:, :-1]
        prev[:, 0] = 0

        ones = square.sum(axis=-1, dtype=np.int64)
        xor_ones = (square ^ prev).sum(axis=-1, dtype=np.int64)
        zeros = _candidate_zeros(ones, xor_ones)
        total = _zeros_for_choice(zeros, _choose_candidates(zeros))
        return total.reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zero count from uint8 bytes of shape ``(..., k*8)``.

        Each consecutive group of eight bytes forms one 64-bit block
        whose rows are exactly the bytes, so the whole cost model runs
        in the byte domain: per-byte popcounts of the rows and of
        ``row ^ prev_row`` feed the candidate costs directly — no
        ``unpackbits``, no candidate bodies.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] % 8 != 0:
            raise ValueError("MiLC operates on whole 8-byte blocks")
        rows = data.reshape(data.shape[:-1] + (-1, 8))  # byte == row

        prev = np.empty_like(rows)
        prev[..., 1:] = rows[..., :-1]
        prev[..., 0] = 0

        ones = popcount_per_byte(rows).astype(np.int64)
        xor_ones = popcount_per_byte(rows ^ prev).astype(np.int64)
        zeros = _candidate_zeros(ones, xor_ones)
        per_block = _zeros_for_choice(zeros, _choose_candidates(zeros))
        return per_block.sum(axis=-1)

"""Rendering of saved telemetry metrics dumps."""

from repro.analysis import render_metrics, summarize_decisions


def _payload() -> dict:
    return {
        "meta": {"label": "run-MM-mil", "time_unit": "cycles",
                 "trace_events": 12, "trace_dropped": 0},
        "metrics": {
            "core.ch0.decision.long": {"kind": "counter", "value": 10},
            "core.ch1.decision.long": {"kind": "counter", "value": 5},
            "core.ch0.decision.base": {"kind": "counter", "value": 3},
            "core.ch0.decision.fallback": {"kind": "counter", "value": 0},
            "dram.ch0.bus.bursts": {"kind": "counter", "value": 18},
            "controller.ch0.rdq.occupancy": {
                "kind": "histogram", "bounds": [0, 2, 4],
                "counts": [1, 2, 0, 1], "count": 4, "sum": 9,
                "mean": 2.25, "min": 0, "max": 7,
            },
            "campaign.scan.wall_s": {
                "kind": "gauge", "value": 0.5, "min": 0.5, "max": 0.5,
                "updates": 1,
            },
        },
    }


class TestSummarizeDecisions:
    def test_sums_modes_across_channels(self):
        assert summarize_decisions(_payload()["metrics"]) == {
            "long": 15, "base": 3,
        }

    def test_ignores_non_decision_names(self):
        metrics = {
            "dram.ch0.decision.long": {"kind": "counter", "value": 9},
            "core.ch0.decision.long.extra": {"kind": "counter", "value": 9},
        }
        assert summarize_decisions(metrics) == {}


class TestRenderMetrics:
    def test_groups_by_family_and_shows_decision_mix(self):
        text = render_metrics(_payload())
        assert "run-MM-mil" in text
        assert "base=3, long=15 (sum 18)" in text
        # One table per top-level family.
        for family in ("campaign", "controller", "core", "dram"):
            assert family in text

    def test_histogram_rows_show_buckets(self):
        text = render_metrics(_payload())
        assert "n=4 mean=2.25 max=7" in text
        assert "<=0:1" in text and ">4:1" in text

    def test_empty_payload_renders(self):
        text = render_metrics({"meta": {}, "metrics": {}})
        assert "telemetry" in text

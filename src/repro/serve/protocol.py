"""Wire-level helpers shared by the server and the client.

The API speaks minimal HTTP/1.1 with JSON bodies; streaming endpoints
reply ``Content-Type: application/x-ndjson`` with ``Connection: close``
and delimit the stream by EOF — one JSON document per line, exactly the
framing of the scenario/result JSONL files, so the same tooling reads
both.  Addresses take two forms::

    unix:/path/to/serve.sock     AF_UNIX (tests, CI, local tooling)
    host:port  or  host port     AF_INET

No third-party HTTP stack, no TLS, no keep-alive: the service is an
internal, single-origin tool in the ``http.server`` weight class.
"""

from __future__ import annotations

import json

__all__ = [
    "API_PREFIX",
    "NDJSON",
    "STATUS_TEXT",
    "dumps",
    "parse_address",
    "parse_query",
]

API_PREFIX = "/v1"
NDJSON = "application/x-ndjson"

STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def dumps(obj) -> str:
    """Canonical body encoding: sorted keys, no trailing whitespace."""
    return json.dumps(obj, sort_keys=True)


def parse_address(address: str) -> tuple[str, object]:
    """``"unix:/p"`` -> ``("unix", "/p")``; ``"h:p"`` -> ``("tcp", (h, p))``."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return "unix", path
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad address {address!r}; expected unix:/path or host:port"
        )
    return "tcp", (host or "127.0.0.1", int(port))


def parse_query(raw: str) -> dict:
    """A tiny query-string parser (no repeats, no encoding niceties)."""
    out: dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        out[key] = value
    return out

"""End-to-end telemetry wiring through the simulator.

The two load-bearing guarantees:

* **Observation never steers.**  A run with a telemetry session attached
  produces a byte-identical :class:`RunSummary` (modulo the ``stats``
  side-table that the cache strips anyway) and the same cache payload.
* **Decision accounting is complete.**  Every issued burst reports
  exactly one decision mode, so the per-mode counters sum to the total
  burst count — which is also the sum of the summary's scheme mix.
"""

import json

import pytest

from repro import telemetry
from repro.campaign import RunSpec, cache_path
from repro.campaign.cache import store
from repro.core.framework import run_spec
from repro.telemetry import TelemetrySession

SCALE = 80
FP = "test-fp"


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


def _mil_spec() -> RunSpec:
    return RunSpec(benchmark="MM", policy="mil", accesses_per_core=SCALE)


class TestObservationDoesNotSteer:
    def test_summary_identical_with_and_without_telemetry(self):
        spec = _mil_spec()
        plain = run_spec(spec).to_dict()
        observed = run_spec(spec, telemetry=TelemetrySession()).to_dict()
        assert plain.pop("stats") == {}
        assert observed.pop("stats")["telemetry"]["bursts"] > 0
        assert json.dumps(plain, sort_keys=True) == \
            json.dumps(observed, sort_keys=True)

    def test_cache_payload_identical_with_and_without_telemetry(self):
        spec = _mil_spec()
        store(spec, run_spec(spec), wall_s=None, fingerprint=FP)
        plain_payload = cache_path(spec, FP).read_text()
        store(spec, run_spec(spec, telemetry=TelemetrySession()),
              wall_s=None, fingerprint=FP)
        assert cache_path(spec, FP).read_text() == plain_payload

    def test_telemetry_is_not_part_of_the_spec(self):
        # The cache key is a pure function of (spec, fingerprint);
        # RunSpec has no telemetry field to leak into it.
        spec = _mil_spec()
        assert "telemetry" not in spec.canonical()
        assert cache_path(spec, FP) == cache_path(_mil_spec(), FP)


class TestDecisionAccounting:
    def test_mode_counts_sum_to_total_bursts(self):
        session = TelemetrySession()
        summary = run_spec(_mil_spec(), telemetry=session)
        modes = session.decision_modes()
        total_bursts = sum(summary.scheme_counts.values())
        assert total_bursts > 0
        assert sum(modes.values()) == total_bursts
        assert set(modes) <= {"long", "base", "fallback"}
        table = summary.stats["telemetry"]
        assert table["bursts"] == total_bursts
        assert table["decision_modes"] == modes

    def test_fixed_policy_reports_only_fixed_mode(self):
        session = TelemetrySession()
        spec = RunSpec(benchmark="MM", policy="dbi",
                       accesses_per_core=SCALE)
        summary = run_spec(spec, telemetry=session)
        modes = session.decision_modes()
        assert set(modes) == {"fixed"}
        assert modes["fixed"] == sum(summary.scheme_counts.values())

    def test_write_optimizations_match_summary(self):
        session = TelemetrySession()
        summary = run_spec(_mil_spec(), telemetry=session)
        counted = sum(
            session.registry[name].value
            for name in session.registry.names()
            if name.endswith(".decision.write_opt")
        )
        assert counted == summary.write_optimized

    def test_act_counter_matches_summary_free_channel_state(self):
        session = TelemetrySession()
        run_spec(_mil_spec(), telemetry=session)
        table = session.stats_table()
        assert table["act_count"] > 0
        assert table["trace_events"] > 0
        assert table["trace_dropped"] == 0


class TestEnabledFlag:
    def test_session_if_enabled_respects_the_switch(self):
        previous = telemetry.set_enabled(False)
        try:
            assert telemetry.session_if_enabled() is None
            telemetry.set_enabled(True)
            session = telemetry.session_if_enabled(label="x")
            assert isinstance(session, TelemetrySession)
            assert session.label == "x"
        finally:
            telemetry.set_enabled(previous)

    def test_set_enabled_returns_previous_value(self):
        previous = telemetry.set_enabled(True)
        try:
            assert telemetry.set_enabled(False) is True
        finally:
            telemetry.set_enabled(previous)

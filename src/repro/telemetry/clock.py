"""The one monotonic wall clock shared by every observability layer.

Campaign-level :class:`~repro.campaign.events.RunEvent` timestamps and
telemetry phase timers all read the same epoch-relative monotonic
clock, so a campaign trace and a run trace can be merged into a single
Perfetto timeline without cross-calibration.  The epoch is process
start (module import), which keeps the numbers small enough to stay
exact as float microseconds for any realistic session length.
"""

from __future__ import annotations

import time

__all__ = ["EPOCH_NS", "monotonic_ts"]

# Fixed at first import; every timestamp is relative to this instant.
EPOCH_NS = time.perf_counter_ns()


def monotonic_ts() -> float:
    """Seconds since the process-wide telemetry epoch (monotonic)."""
    return (time.perf_counter_ns() - EPOCH_NS) / 1e9

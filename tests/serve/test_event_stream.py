"""RunEvent streaming: gap-free ordering, mid-campaign backfill, replay.

The stream contract (docs/SERVICE.md): every subscriber — whenever it
connects — sees the job's events in one globally consistent order,
``seq`` numbered 0..N-1 with no gaps, snapshot first and live tail
after, ending cleanly at the job's terminal event.  The campaign here
runs on **4 worker shards**, so completions genuinely race; the log
must still serialize them into one stable history.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign import RunSpec
from repro.serve.client import ServeClient
from repro.serve.server import start_in_thread
from repro.serve.service import ServiceConfig

SCALE = 80
FP = "test-fp"
SHARDS = 4


def spec(seed: int) -> RunSpec:
    return RunSpec(benchmark="GUPS", system="ddr4-server", policy="dbi",
                   accesses_per_core=SCALE, seed=seed)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("stream")
    handle = start_in_thread(
        ServiceConfig(store_root=tmp / "store", shards=SHARDS,
                      fingerprint=FP),
        socket_path=str(tmp / "s.sock"),
    )
    try:
        yield handle, ServeClient(handle.address)
    finally:
        handle.stop()


def assert_consistent(events: list, total: int) -> None:
    """The ordering invariants every subscriber must observe."""
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(len(events))), "seq must be gap-free"
    assert events[0]["scope"] == "job" and events[0]["kind"] == "queued"
    assert events[-1]["scope"] == "job"
    assert events[-1]["kind"] in ("done", "failed", "cancelled")
    # Per-key lifecycle: queued -> started -> finished, in that order.
    for key in {e.get("key") for e in events if e.get("key")}:
        kinds = [e["kind"] for e in events if e.get("key") == key]
        assert kinds.index("queued") < kinds.index("started")
        assert kinds.index("started") < kinds.index("finished")
    finished = [e for e in events if e["kind"] == "finished"]
    assert len(finished) == total


def test_live_stream_matches_replay(served):
    """A subscriber joining mid-campaign sees snapshot + tail that is
    byte-identical to the full after-the-fact backfill."""
    handle, client = served
    specs = [spec(s) for s in range(8)]
    job = client.submit_specs(specs)
    # Connect immediately: the campaign is still running on 4 shards,
    # so this stream starts with a snapshot and ends with live tail.
    live = list(client.events(job["id"]))
    replay = list(client.events(job["id"]))  # terminal: pure backfill
    assert live == replay
    assert_consistent(replay, total=len(specs))


def test_since_resumes_exactly(served):
    handle, client = served
    specs = [spec(s) for s in range(10, 14)]
    job = client.submit_specs(specs)
    full = list(client.events(job["id"]))
    assert_consistent(full, total=len(specs))
    mid = full[len(full) // 2]["seq"]
    tail = list(client.events(job["id"], since=mid))
    assert tail == full[mid + 1:]
    # since beyond the end: just the empty suffix.
    assert list(client.events(job["id"], since=full[-1]["seq"])) == []


def test_concurrent_subscribers_agree(served):
    """N readers attached at random times all see the same history."""
    handle, client = served
    specs = [spec(s) for s in range(20, 26)]
    job = client.submit_specs(specs)

    streams: dict[int, list] = {}
    errors: list = []

    def reader(i: int) -> None:
        try:
            own = ServeClient(handle.address)
            streams[i] = list(own.events(job["id"]))
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    assert not errors
    assert len(streams) == 3
    reference = list(client.events(job["id"]))
    assert_consistent(reference, total=len(specs))
    for got in streams.values():
        assert got == reference


def test_paused_snapshot_then_tail(served):
    """Events produced while paused arrive as the snapshot; execution
    events arrive as tail after resume — one seamless sequence."""
    handle, client = served
    handle.call(handle.service.pause)
    job = client.submit_specs([spec(30), spec(31)])
    collected: list = []
    done = threading.Event()

    def consume() -> None:
        own = ServeClient(handle.address)
        collected.extend(own.events(job["id"]))
        done.set()

    t = threading.Thread(target=consume)
    t.start()
    handle.call(handle.service.resume)
    assert done.wait(timeout=180)
    t.join(timeout=10)
    assert_consistent(collected, total=2)
    # The paused-phase events (job+run queued) really came first.
    assert [e["kind"] for e in collected[:3]] == [
        "queued", "queued", "queued"
    ]

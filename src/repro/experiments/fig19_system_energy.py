"""Figure 19: system-wide energy, normalized to the DBI baseline.

Paper: average system savings on the server are 2.2 % / 1.6 % / 3.1 % /
3.7 % for CAFO2 / CAFO4 / MiLC-only / MiL, and 5 % / 5 % / 6 % / 7 % on
mobile.  The driver is the benchmark's memory-energy share: MM and
STRMATCH save little despite big zero cuts, GUPS and SCALPARC save most.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER, SNAPDRAGON_MOBILE
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "SCHEMES"]

SCHEMES = ("cafo2", "cafo4", "milc", "mil")

SYSTEMS = (NIAGARA_SERVER.name, SNAPDRAGON_MOBILE.name)


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=system, policy=policy,
                accesses_per_core=accesses_per_core)
        for system in SYSTEMS
        for bench in BENCHMARK_ORDER
        for policy in ("dbi",) + SCHEMES
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))

    def summary(system, bench, policy):
        return runs[RunSpec(benchmark=bench, system=system, policy=policy,
                            accesses_per_core=accesses_per_core)]

    rows = []
    observations: dict[str, float] = {}
    for system in SYSTEMS:
        per_scheme = {s: [] for s in SCHEMES}
        for bench in BENCHMARK_ORDER:
            base = summary(system, bench, "dbi")
            row = [system, bench]
            for scheme in SCHEMES:
                ratio = (summary(system, bench, scheme).system_total_j
                         / base.system_total_j)
                row.append(ratio)
                per_scheme[scheme].append(ratio)
            rows.append(row)
        for scheme, ratios in per_scheme.items():
            observations[f"mean_savings_{system}_{scheme}"] = float(
                1 - np.mean(ratios)
            )

    result = ExperimentResult(
        experiment="fig19",
        title="Figure 19: system energy normalized to the DBI baseline",
        headers=["system", "benchmark"] + list(SCHEMES),
        rows=rows,
        paper_claim=(
            "average system savings: server 2.2/1.6/3.1/3.7% and mobile "
            "5/5/6/7% for CAFO2/CAFO4/MiLC-only/MiL"
        ),
        observations=observations,
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Property-based tests: the controller engine under random traffic.

Hypothesis drives randomized request streams (addresses, read/write mix,
arrival spacing, coding policy) through a full controller and asserts the
global invariants no schedule may violate:

* the data bus never carries overlapping bursts and never skips a
  mandatory turnaround bubble (checked by the independent auditor);
* every accepted request is eventually serviced exactly once;
* reads are never reordered unfairly past the FR-FCFS bound (a request
  cannot wait forever while same-queue peers stream past it);
* under the closed-page policy, banks are left closed after lone hits.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.controller import AlwaysScheme, ChannelController, MemoryRequest
from repro.dram import DDR4_3200, DDR4_GEOMETRY, AddressMapper, BusAuditor

MAPPER = AddressMapper(DDR4_GEOMETRY, channels=2)
CAP_LINES = MAPPER.capacity_bytes // 64


def drive(mc, arrivals, max_cycles=400_000):
    """Feed (cycle, request) arrivals; run to empty; return completions."""
    done = []
    idx = 0
    now = 0
    while idx < len(arrivals) or mc.has_pending:
        while idx < len(arrivals) and arrivals[idx][0] <= now:
            cycle, req = arrivals[idx]
            if mc.can_accept(req.is_write):
                mc.enqueue(req, now)
                idx += 1
            else:
                break
        mc.step(now)
        done.extend(mc.drain_completions())
        bounds = [t for t in (
            mc.next_event(now),
            arrivals[idx][0] if idx < len(arrivals) else None,
        ) if t is not None]
        if not bounds:
            if idx < len(arrivals):
                now += 1
                continue
            break
        now = max(now + 1, min(bounds))
        assert now < max_cycles, "scheduler made no progress"
    done.extend(mc.drain_completions())
    return done


request_strategy = st.tuples(
    st.integers(min_value=0, max_value=1 << 15),  # line number
    st.booleans(),  # is_write
    st.integers(min_value=0, max_value=30),  # inter-arrival gap
)


@st.composite
def traffic(draw):
    items = draw(st.lists(request_strategy, min_size=1, max_size=60))
    arrivals = []
    now = 0
    for line, is_write, gap in items:
        now += gap
        from dataclasses import replace

        mapped = replace(MAPPER.map((line % CAP_LINES) * 64), channel=0)
        req = MemoryRequest(
            address=MAPPER.reverse(mapped), is_write=is_write
        )
        req.mapped = mapped
        arrivals.append((now, req))
    return arrivals


COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSchedulerInvariants:
    @settings(**COMMON)
    @given(traffic(), st.sampled_from(["dbi", "milc", "3lwc"]))
    def test_bus_protocol_and_completion(self, arrivals, scheme):
        mc = ChannelController(
            DDR4_3200, DDR4_GEOMETRY, policy=AlwaysScheme(scheme)
        )
        done = drive(mc, arrivals)
        # Coalesced writes collapse; everything else completes once.
        expected = len(arrivals) - mc.coalesced_writes
        assert len(done) == expected
        assert all(r.completed for r in done)
        assert BusAuditor(mc.timing).check(mc.channel.transactions) == []

    @settings(**COMMON)
    @given(traffic())
    def test_reads_complete_in_bounded_order(self, arrivals):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        done = drive(mc, arrivals)
        reads = [r for r in done if not r.is_write and r.scheme != "forwarded"]
        # FR-FCFS fairness: a read never finishes after more than
        # queue-capacity younger reads (row hits may pass it, but the
        # queue bounds how many).
        finish_order = sorted(reads, key=lambda r: r.finish_cycle)
        for pos, req in enumerate(finish_order):
            younger_before = sum(
                1 for other in finish_order[:pos]
                if other.serial > req.serial
            )
            assert younger_before <= mc.read_queue.capacity

    @settings(**COMMON)
    @given(traffic())
    def test_closed_page_leaves_lone_banks_closed(self, arrivals):
        mc = ChannelController(
            DDR4_3200, DDR4_GEOMETRY, page_policy="closed"
        )
        drive(mc, arrivals)
        # After the queues drain, closed-page leaves every bank closed.
        for rank in range(DDR4_GEOMETRY.ranks):
            assert mc.channel.all_banks_closed(rank)

    @settings(**COMMON)
    @given(traffic())
    def test_latency_accounting_consistent(self, arrivals):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        done = drive(mc, arrivals)
        for req in done:
            assert req.finish_cycle >= req.arrival
            if req.scheme != "forwarded":
                assert req.issue_cycle >= req.arrival
                assert req.finish_cycle > req.issue_cycle

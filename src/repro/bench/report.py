"""Machine-readable benchmark results: the ``BENCH_*.json`` schema.

Schema ``repro.bench/v1`` (documented in ``docs/BENCHMARKS.md``)::

    {
      "schema": "repro.bench/v1",
      "created_utc": "2026-02-03T04:05:06Z",
      "environment": {
        "git_rev": "<sha or 'unknown'>",
        "python": "3.12.1",
        "implementation": "CPython",
        "platform": "Linux-6.1-x86_64",
        "machine": "x86_64",
        "numpy": "2.4.6",
        "native_popcount": true
      },
      "protocol": {
        "repeats": 7, "warmup": 2, "gc_disabled": true,
        "timer": "repro.telemetry.clock.monotonic_ts",
        "stat_for_compare": "ns_per_op.min"
      },
      "results": [
        {
          "name": "coding.line_zeros.milc",
          "params": {"lines": 2048},
          "smoke": true,
          "repeats": 7, "warmup": 2,
          "inner_ops": 2048, "calls_per_sample": 3,
          "ns_per_op": {"min": ..., "median": ..., "mad": ...},
          "ops_per_sec": ...
        }, ...
      ]
    }

Every write goes through :func:`validate_report`, so a malformed file
can never be produced by this module, only consumed defensively.
"""

from __future__ import annotations

import json
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from .registry import BenchError, BenchmarkDef
from .timing import Measurement

__all__ = [
    "SCHEMA",
    "build_report",
    "default_filename",
    "environment",
    "load_report",
    "result_entry",
    "validate_report",
    "write_report",
]

SCHEMA = "repro.bench/v1"


def environment() -> dict:
    """Provenance block: where these numbers came from."""
    import numpy as np

    from ..coding.bitops import HAVE_NATIVE_POPCOUNT

    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        rev = ""
    return {
        "git_rev": rev or "unknown",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "native_popcount": HAVE_NATIVE_POPCOUNT,
    }


def result_entry(defn: BenchmarkDef, measurement: Measurement) -> dict:
    """One ``results[]`` element for a finished benchmark."""
    entry = {"name": defn.name, "params": dict(defn.params),
             "smoke": defn.smoke}
    entry.update(measurement.as_dict())
    return entry


def build_report(results: list[dict], protocol: dict | None = None) -> dict:
    """Assemble a schema-valid report document from result entries."""
    doc = {
        "schema": SCHEMA,
        "created_utc": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "environment": environment(),
        "protocol": {
            "gc_disabled": True,
            "timer": "repro.telemetry.clock.monotonic_ts",
            "stat_for_compare": "ns_per_op.min",
            **(protocol or {}),
        },
        "results": results,
    }
    problems = validate_report(doc)
    if problems:
        raise BenchError(
            "refusing to build an invalid report: " + "; ".join(problems)
        )
    return doc


def validate_report(doc) -> list[str]:
    """Schema check; returns a list of problems (empty == valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("created_utc", "environment", "protocol", "results"):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    env = doc.get("environment")
    if isinstance(env, dict):
        for key in ("git_rev", "python", "platform"):
            if not isinstance(env.get(key), str):
                problems.append(f"environment.{key} missing or not a string")
    elif env is not None:
        problems.append("environment is not an object")
    results = doc.get("results")
    if not isinstance(results, list):
        problems.append("results is not a list")
        return problems
    seen: set[str] = set()
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}.name missing or empty")
        elif name in seen:
            problems.append(f"{where}.name {name!r} is duplicated")
        else:
            seen.add(name)
        ns = entry.get("ns_per_op")
        if not isinstance(ns, dict):
            problems.append(f"{where}.ns_per_op missing")
        else:
            for stat in ("min", "median", "mad"):
                value = ns.get(stat)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}.ns_per_op.{stat} missing or negative"
                    )
        for key in ("repeats", "inner_ops", "calls_per_sample"):
            value = entry.get(key)
            if not isinstance(value, int) or value < 1:
                problems.append(f"{where}.{key} missing or < 1")
        if not isinstance(entry.get("params", {}), dict):
            problems.append(f"{where}.params is not an object")
    return problems


def default_filename(now: datetime | None = None) -> str:
    """The ``BENCH_<timestamp>.json`` naming convention."""
    now = now or datetime.now(timezone.utc)
    return f"BENCH_{now.strftime('%Y%m%dT%H%M%SZ')}.json"


def write_report(target: str | Path, doc: dict) -> Path:
    """Write ``doc`` to ``target`` (a file, or a directory to name into)."""
    problems = validate_report(doc)
    if problems:
        raise BenchError(
            "refusing to write an invalid report: " + "; ".join(problems)
        )
    path = Path(target)
    if path.is_dir() or str(target).endswith(("/", ".")):
        path = Path(target) / default_filename()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read and validate a report; raises :class:`BenchError` on problems."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise BenchError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchError(f"{path} is not valid JSON: {exc}") from exc
    problems = validate_report(doc)
    if problems:
        raise BenchError(f"{path} is not a valid report: " + "; ".join(problems))
    return doc

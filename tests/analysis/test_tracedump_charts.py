"""Tests for trace export/audit tooling and terminal charts."""

import numpy as np
import pytest

from repro.analysis import (
    audit_dump,
    bar_chart,
    dump_transactions_csv,
    dump_transactions_jsonl,
    grouped_bars,
    load_transactions_csv,
    load_transactions_jsonl,
)
from repro.dram import DDR4_3200, DDR4_GEOMETRY
from repro.dram.channel import BusTransaction
from repro.system import NIAGARA_SERVER, simulate
from repro.workloads import MemoryTrace, TraceRecord


def sample_log():
    return [
        BusTransaction(10, 14, 0, False, 0, 0, 0, "dbi", 1),
        BusTransaction(20, 25, 5, True, 1, 1, 2, "milc", 2),
        BusTransaction(40, 48, 18, False, 0, 0, 1, "3lwc", 3),
    ]


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_round_trip(self, tmp_path, fmt):
        path = tmp_path / f"log.{fmt}"
        log = sample_log()
        if fmt == "csv":
            count = dump_transactions_csv(path, log)
            loaded = load_transactions_csv(path)
        else:
            count = dump_transactions_jsonl(path, log)
            loaded = load_transactions_jsonl(path)
        assert count == 3
        assert loaded == log

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert dump_transactions_csv(path, []) == 0
        assert load_transactions_csv(path) == []


class TestAudit:
    def test_clean_dump(self, tmp_path):
        path = tmp_path / "log.csv"
        dump_transactions_csv(path, sample_log())
        report = audit_dump(path, DDR4_3200)
        assert report["clean"]
        assert report["transactions"] == 3
        assert report["schemes"] == {"dbi": 1, "milc": 1, "3lwc": 1}
        assert report["busy_cycles"] == 4 + 5 + 8

    def test_violating_dump_flagged(self, tmp_path):
        bad = [
            BusTransaction(10, 14, 0, False, 0, 0, 0, "dbi", 1),
            BusTransaction(12, 16, 2, False, 0, 0, 0, "dbi", 2),
        ]
        path = tmp_path / "bad.jsonl"
        dump_transactions_jsonl(path, bad)
        report = audit_dump(path, DDR4_3200)
        assert not report["clean"]
        assert report["violations"]

    def test_real_simulation_dump_is_clean(self, tmp_path):
        records = [[
            TraceRecord(core=0, gap=10, address=i * 4096, is_write=False,
                        line_id=i)
            for i in range(40)
        ]]
        trace = MemoryTrace(
            name="t", records_by_core=records,
            line_data=np.zeros((40, 64), dtype=np.uint8),
        )
        result = simulate(trace, NIAGARA_SERVER)
        path = tmp_path / "sim.csv"
        dump_transactions_csv(
            path, result.controllers[0].channel.transactions
        )
        assert audit_dump(path, result.controllers[0].timing)["clean"]


class TestCharts:
    def test_bar_chart_renders_values(self):
        text = bar_chart(["a", "bb"], [1.0, 0.5], title="T", width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.000" in lines[1] and "0.500" in lines[2]
        # Full-scale bar fills the width.
        assert "█" * 10 in lines[1]

    def test_bar_chart_reference_marker(self):
        text = bar_chart(["x"], [0.5], width=10, reference=1.0)
        assert "·" in text

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_grouped_bars(self):
        text = grouped_bars(
            ["G1", "G2"], {"mil": [0.5, 0.6], "dbi": [1.0, 1.0]}
        )
        assert "G1" in text and "mil" in text and "0.600" in text

    def test_zero_values_no_crash(self):
        text = bar_chart(["z"], [0.0])
        assert "0.000" in text

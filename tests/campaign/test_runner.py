"""CampaignRunner: serial/parallel equivalence, retries, events.

The tiny GUPS/MM traces here run in well under a second each, so the
parallel cases exercise a real ``ProcessPoolExecutor`` (explicitly
passing ``jobs=`` overrides the runner's serial-under-pytest default).
"""

import json
import os

import pytest

from repro.campaign import CampaignRunner, RunSpec, cache_path, run_cached
from repro.campaign.runner import FAIL_ONCE_ENV, default_jobs

SCALE = 80  # accesses per core: tiny but a full end-to-end simulation
FP = "test-fp"  # fixed fingerprint so model edits don't churn test files


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv(FAIL_ONCE_ENV, raising=False)


def _specs():
    return [
        RunSpec(benchmark=bench, policy=policy, accesses_per_core=SCALE)
        for bench in ("MM", "GUPS")
        for policy in ("dbi", "mil")
    ]


def test_default_jobs_is_serial_under_pytest():
    assert "PYTEST_CURRENT_TEST" in os.environ
    assert default_jobs() == 1


def test_run_cached_miss_then_hit():
    spec = RunSpec(benchmark="MM", policy="dbi", accesses_per_core=SCALE)
    first = run_cached(spec, fingerprint=FP)
    assert first.stats["cache_hit"] is False
    assert first.stats["wall_s"] > 0
    second = run_cached(spec, fingerprint=FP)
    assert second.stats["cache_hit"] is True
    assert second.cycles == first.cycles
    assert second.total_zeros == first.total_zeros


def test_serial_and_parallel_campaigns_agree(tmp_path, monkeypatch):
    specs = _specs()

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial = CampaignRunner(jobs=1, fingerprint=FP)
    serial_results = serial.run(specs)
    serial_payloads = {
        spec: json.loads(cache_path(spec, FP).read_text())
        for spec in specs
    }

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel = CampaignRunner(jobs=2, fingerprint=FP)
    parallel_results = parallel.run(specs)

    assert serial.counters["executed"] == len(specs)
    assert parallel.counters["executed"] == len(specs)
    assert set(serial_results) == set(parallel_results)
    for spec in specs:
        payload = json.loads(cache_path(spec, FP).read_text())
        ref = serial_payloads[spec]
        # byte-identical modulo the meta (timing) block
        payload["meta"] = ref["meta"] = None
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(ref, sort_keys=True)


def test_duplicate_specs_run_once():
    spec = RunSpec(benchmark="MM", policy="dbi", accesses_per_core=SCALE)
    runner = CampaignRunner(jobs=1, fingerprint=FP)
    results = runner.run([spec, spec, RunSpec(
        benchmark="mm", policy="dbi", accesses_per_core=SCALE)])
    assert runner.counters["specs"] == 1
    assert runner.counters["executed"] == 1
    assert list(results) == [spec]


def test_event_stream_cold_then_warm():
    spec = RunSpec(benchmark="MM", policy="dbi", accesses_per_core=SCALE)
    cold_events = []
    CampaignRunner(jobs=1, sink=cold_events.append, fingerprint=FP).run(
        [spec])
    assert [e.kind for e in cold_events] == ["queued", "started", "finished"]
    finished = cold_events[-1]
    assert finished.spec == spec
    assert finished.wall_s > 0
    assert finished.key == cache_path(spec, FP).stem

    warm_events = []
    warm = CampaignRunner(jobs=1, sink=warm_events.append, fingerprint=FP)
    warm.run([spec])
    assert [e.kind for e in warm_events] == ["queued", "cache-hit"]
    assert warm.counters["cache_hits"] == 1
    assert warm.counters["executed"] == 0


def test_worker_failure_is_retried(tmp_path, monkeypatch):
    sentinel = tmp_path / "fail-once"
    monkeypatch.setenv(FAIL_ONCE_ENV, str(sentinel))
    spec = RunSpec(benchmark="MM", policy="dbi", accesses_per_core=SCALE)
    events = []
    runner = CampaignRunner(jobs=1, sink=events.append, fingerprint=FP)
    results = runner.run([spec])
    assert sentinel.exists()  # the injected failure really fired
    assert runner.counters["retries"] == 1
    assert runner.counters["failed"] == 0
    assert results[spec].cycles > 0
    assert [e.kind for e in events] == \
        ["queued", "started", "retried", "finished"]


def test_retry_budget_exhaustion_raises(tmp_path, monkeypatch):
    sentinel = tmp_path / "fail-once"
    monkeypatch.setenv(FAIL_ONCE_ENV, str(sentinel))
    spec = RunSpec(benchmark="MM", policy="dbi", accesses_per_core=SCALE)
    events = []
    runner = CampaignRunner(jobs=1, sink=events.append, retries=0,
                            fingerprint=FP)
    with pytest.raises(RuntimeError, match="injected worker failure"):
        runner.run([spec])
    assert runner.counters["failed"] == 1
    assert events[-1].kind == "failed"


def test_parallel_worker_failure_recovers_in_parent(tmp_path, monkeypatch):
    sentinel = tmp_path / "fail-once"
    monkeypatch.setenv(FAIL_ONCE_ENV, str(sentinel))
    specs = _specs()[:2]
    runner = CampaignRunner(jobs=2, fingerprint=FP)
    results = runner.run(specs)
    assert len(results) == 2
    assert runner.counters["executed"] == 2
    # exactly one worker tripped the sentinel; the parent re-ran it
    assert runner.counters["retries"] == 1
    assert runner.counters["failed"] == 0


def test_no_cache_campaign_reexecutes(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    spec = RunSpec(benchmark="MM", policy="dbi", accesses_per_core=SCALE)
    for _ in range(2):
        runner = CampaignRunner(jobs=1, fingerprint=FP)
        runner.run([spec])
        assert runner.counters["cache_hits"] == 0
        assert runner.counters["executed"] == 1
    assert not cache_path(spec, FP).exists()

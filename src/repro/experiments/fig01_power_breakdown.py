"""Figure 1: DRAM power breakdown — IO is ~42 % of DDR4 module power.

The paper's Figure 1 (from the Samsung DDR4 brochure) motivates the
whole work: at sustained transfer rates, the IO interface is the single
biggest consumer in a DDR4 module.  We reproduce it analytically from
the energy model at a high, row-hit-friendly utilisation (the brochure's
measurement condition), for all three modelled DRAM generations.
"""

from __future__ import annotations

from ..energy.constants import (
    DDR3_ENERGY,
    DDR4_ENERGY,
    LPDDR3_ENERGY,
    DramEnergyParams,
)
from ..energy.io_power import BUS_PINS
from ..dram.timing import DDR3_1600, DDR4_3200, LPDDR3_1600, TimingParams
from .base import ExperimentResult

__all__ = ["sustained_breakdown", "run_experiment"]

# Brochure-style measurement conditions: near-saturated bus, streaming
# access pattern (high row-buffer hit rate), DBI-coded random-ish data.
UTILIZATION = 0.9
ROW_HIT_RATE = 0.9
ZEROS_PER_BURST = 160.0  # DBI on mixed application data (64-byte line)
RANKS = 2


def sustained_breakdown(
    params: DramEnergyParams, timing: TimingParams
) -> dict[str, float]:
    """Per-category power shares at sustained utilisation."""
    cycle_s = timing.cycle_ns * 1e-9
    bursts_per_cycle = UTILIZATION / 4.0  # BL8 occupies 4 cycles

    io = bursts_per_cycle * (
        ZEROS_PER_BURST * params.energy_per_zero_bit
        + 8 * BUS_PINS * params.energy_per_beat
    )
    activate = bursts_per_cycle * (1 - ROW_HIT_RATE) * (
        params.energy_activate_precharge
    )
    read_write = bursts_per_cycle * params.energy_column_read
    refresh = RANKS * params.energy_refresh_per_rank / timing.REFI
    background = RANKS * params.background_active_w * cycle_s

    total = io + activate + read_write + refresh + background
    return {
        "io": io / total,
        "activate": activate / total,
        "read_write": read_write / total,
        "refresh": refresh / total,
        "background": background / total,
    }


def run_experiment(accesses_per_core: int | None = None) -> ExperimentResult:
    """Reproduce the Figure 1 breakdown (no simulation needed)."""
    rows = []
    for name, params, timing in (
        ("DDR3-1600", DDR3_ENERGY, DDR3_1600),
        ("DDR4-3200", DDR4_ENERGY, DDR4_3200),
        ("LPDDR3-1600", LPDDR3_ENERGY, LPDDR3_1600),
    ):
        shares = sustained_breakdown(params, timing)
        rows.append(
            [
                name,
                shares["io"],
                shares["activate"],
                shares["read_write"],
                shares["refresh"],
                shares["background"],
            ]
        )
    result = ExperimentResult(
        experiment="fig01",
        title="Figure 1: DRAM power breakdown at sustained utilization",
        headers=["module", "io", "activate", "read_write", "refresh",
                 "background"],
        rows=rows,
        paper_claim="the IO interface is ~42% of DDR4 module power",
    )
    result.observations["ddr4_io_share"] = result.row_for("DDR4-3200")[1]
    result.observations["ddr3_io_share"] = result.row_for("DDR3-1600")[1]
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""CAFO — Cost-Aware Flip Optimization, adapted to the MiL framework.

CAFO [Maddah et al., HPCA 2015] is a two-dimensional bus-invert code:
data is laid out as a square, and row and column inversions are applied
iteratively until no single flip improves the objective.  The paper
(Section 7.2) adapts CAFO to the zero-minimisation problem on an 8x8
square with eight row flags and eight column flags — an 80-bit codeword
with the same bandwidth overhead as MiLC.

Because unbounded iteration gives a *non-deterministic* latency (which
the MiL memory controller cannot schedule around), the paper evaluates
fixed-iteration variants: CAFO2 (one row pass + one column pass) and
CAFO4 (two of each), charging one extra DRAM cycle of tCL per
iteration.  Those variants are what :class:`CAFOCode` implements; pass
``iterations=None`` to run to convergence like the original CAFO.

Flag polarity follows DBI: a transmitted flag bit of 1 means
"not flipped", so untouched rows/columns cost no extra zeros on the
pseudo-open-drain bus.

Codeword layout (80 bits)::

    [ effective 8x8 square, row-major (64) | row flags (8) | col flags (8) ]

where flag bit = 1 - flip_indicator.
"""

from __future__ import annotations

import numpy as np

from .base import CodingScheme
from .registry import register_codec

__all__ = ["CAFOCode"]


def _row_pass(square: np.ndarray, rf: np.ndarray, cf: np.ndarray) -> np.ndarray:
    """One synchronised row pass over ``(n, 8, 8)`` squares, in place.

    A row flips when doing so strictly lowers its cost (its transmitted
    zeros, counting the flag wire).  Returns the per-square changed
    mask, shape ``(n,)``.
    """
    eff = square ^ rf[:, :, None] ^ cf[:, None, :]
    zeros = 8 - eff.sum(axis=2, dtype=np.int64)  # (n, 8)
    # Current cost of each row: its zeros plus 1 if its flag is
    # transmitted as 0 (i.e. the row is flipped).
    cur = zeros + rf
    alt = (8 - zeros) + (1 - rf)
    flip = alt < cur
    rf ^= flip.astype(np.uint8)
    return flip.any(axis=1)


def _col_pass(square: np.ndarray, rf: np.ndarray, cf: np.ndarray) -> np.ndarray:
    """One synchronised column pass; mirror of :func:`_row_pass`."""
    eff = square ^ rf[:, :, None] ^ cf[:, None, :]
    zeros = 8 - eff.sum(axis=1, dtype=np.int64)  # (n, 8)
    cur = zeros + cf
    alt = (8 - zeros) + (1 - cf)
    flip = alt < cur
    cf ^= flip.astype(np.uint8)
    return flip.any(axis=1)


class CAFOCode(CodingScheme):
    """(64, 80) iterative two-dimensional bus-invert code.

    Parameters
    ----------
    iterations:
        Number of half-passes (row pass, column pass, row pass, ...).
        ``2`` and ``4`` reproduce the paper's CAFO2/CAFO4; ``None`` runs
        until a full row+column sweep makes no change (original CAFO).
    """

    data_bits = 64
    code_bits = 80

    def __init__(self, iterations: int | None = 2):
        if iterations is not None and iterations < 1:
            raise ValueError("iterations must be >= 1 or None")
        self.iterations = iterations
        self.name = "cafo" if iterations is None else f"cafo{iterations}"
        # One DRAM cycle per synchronised iteration (Section 7.2).  The
        # convergent variant is charged its worst case: a full sweep per
        # dimension repeated; the paper observes 4 iterations suffice.
        self.extra_latency_cycles = iterations if iterations is not None else 4

    # ------------------------------------------------------------------
    # Core flip search
    # ------------------------------------------------------------------
    def _solve(self, square: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Choose row/column flip indicators for ``(n, 8, 8)`` squares.

        Both variants run the passes as whole-array reductions across
        every square at once; the convergent variant additionally keeps
        an *active set*, dropping squares as soon as a full row+column
        sweep leaves them unchanged (a fixed point of the deterministic
        passes — they can never change again).
        """
        n = square.shape[0]
        rf = np.zeros((n, 8), dtype=np.uint8)
        cf = np.zeros((n, 8), dtype=np.uint8)

        if self.iterations is not None:
            for i in range(self.iterations):
                if i % 2 == 0:
                    _row_pass(square, rf, cf)
                else:
                    _col_pass(square, rf, cf)
        else:
            # Original CAFO: iterate row+column sweeps to a fixed point.
            # Each accepted flip strictly reduces total zeros, so this
            # terminates (the objective is bounded below by 0); 64
            # sweeps is a generous safety bound.
            active = np.arange(n)
            for _ in range(64):
                sq = square[active]
                r = rf[active]
                c = cf[active]
                changed = _row_pass(sq, r, c)
                changed |= _col_pass(sq, r, c)
                rf[active] = r
                cf[active] = c
                active = active[changed]
                if active.size == 0:
                    break
        return rf, cf

    # ------------------------------------------------------------------
    # CodingScheme interface
    # ------------------------------------------------------------------
    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        square = data_bits.reshape(-1, 8, 8)
        n = square.shape[0]

        rf, cf = self._solve(square)
        eff = square ^ rf[:, :, None] ^ cf[:, None, :]
        code = np.concatenate(
            [eff.reshape(n, 64), 1 - rf, 1 - cf], axis=1
        ).astype(np.uint8)
        return code.reshape(lead + (80,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        flat = code_bits.reshape(-1, 80)
        n = flat.shape[0]

        eff = flat[:, :64].reshape(n, 8, 8)
        rf = (1 - flat[:, 64:72]).astype(np.uint8)
        cf = (1 - flat[:, 72:80]).astype(np.uint8)
        data = eff ^ rf[:, :, None] ^ cf[:, None, :]
        return data.reshape(lead + (64,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        square = data_bits.reshape(-1, 8, 8)

        rf, cf = self._solve(square)
        eff = square ^ rf[:, :, None] ^ cf[:, None, :]
        body_zeros = 64 - eff.sum(axis=(1, 2), dtype=np.int64)
        flag_zeros = rf.sum(axis=1, dtype=np.int64) + cf.sum(axis=1, dtype=np.int64)
        return (body_zeros + flag_zeros).reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zero count from uint8 bytes; 8-byte groups form 64-bit blocks."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] % 8 != 0:
            raise ValueError("CAFO operates on whole 8-byte blocks")
        bits = np.unpackbits(data, axis=-1)
        blocks = bits.reshape(bits.shape[:-1] + (data.shape[-1] // 8, 64))
        return self.count_zeros(blocks).sum(axis=-1)


# The two deterministic-latency design points the paper evaluates
# (Section 7.2): k half-passes cost k extra cycles of tCL.
register_codec(
    "cafo2", burst_length=10, extra_latency=2, layout="beat", pins=64,
    description="CAFO with two fixed iterations, under the MiL framework",
)(lambda: CAFOCode(iterations=2))
register_codec(
    "cafo4", burst_length=10, extra_latency=4, layout="beat", pins=64,
    description="CAFO with four fixed iterations",
)(lambda: CAFOCode(iterations=4))

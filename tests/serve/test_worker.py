"""Remote TCP workers end to end: equivalence, auth, death, heartbeat.

A real ``WorkerDaemon`` (background thread, own event loop) dials the
background-thread service over the same wire ``repro worker`` uses; a
scripted *fake* worker over a raw socket plays the misbehaving cases a
well-written daemon never exhibits (vanishing mid-lease, ignoring
pings).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.campaign import CampaignRunner, RunSpec, cache
from repro.serve.client import ServeClient
from repro.serve.server import start_in_thread
from repro.serve.service import ServiceConfig
from repro.serve.worker import WorkerAuthError, WorkerDaemon

SCALE = 80
FP = "test-fp"


def spec(seed: int, policy: str = "dbi") -> RunSpec:
    return RunSpec(benchmark="GUPS", system="ddr4-server", policy=policy,
                   accesses_per_core=SCALE, seed=seed)


def make_config(tmp_path, **kw) -> ServiceConfig:
    kw.setdefault("store_root", tmp_path / "store")
    kw.setdefault("shards", 0)
    kw.setdefault("fingerprint", FP)
    kw.setdefault("backoff_base_s", 0.01)
    return ServiceConfig(**kw)


class WorkerThread:
    """A WorkerDaemon on its own thread + event loop, like the CLI verb."""

    def __init__(self, address: str, **kw) -> None:
        kw.setdefault("reconnect_delay_s", 0.05)
        self.daemon = WorkerDaemon(address, **kw)
        self.error: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        try:
            asyncio.run(self.daemon.run())
        except BaseException as exc:  # noqa: BLE001 — surfaced in the test
            self.error = exc

    def start(self) -> "WorkerThread":
        self._thread.start()
        return self

    def join(self, timeout: float = 30.0) -> None:
        self.daemon.request_stop()
        self._thread.join(timeout)


def wait_for(predicate, timeout: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


class FakeWorker:
    """A scripted worker over a raw socket: full control, no goodwill."""

    def __init__(self, address: str, token: str | None = None,
                 name: str = "fake") -> None:
        host, _, port = address.rpartition(":")
        self.sock = socket.create_connection((host, int(port)), timeout=30)
        self.file = self.sock.makefile("rb")
        body = json.dumps(
            {"token": token, "name": name, "pid": 0}
        ).encode()
        self.sock.sendall(
            b"POST /v1/workers HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        status = self.file.readline().split()[1]
        while self.file.readline() not in (b"\r\n", b"\n", b""):
            pass  # drain response headers
        assert status == b"200", f"handshake got {status!r}"

    def read_frame(self, want_op: str | None = None) -> dict:
        """Next frame, optionally skipping until ``want_op`` arrives."""
        while True:
            line = self.file.readline()
            assert line, "server closed the stream"
            message = json.loads(line)
            if want_op is None or message.get("op") == want_op:
                return message

    def send(self, obj: dict) -> None:
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def vanish(self) -> None:
        """Die without ceremony — no result, no close handshake."""
        self.sock.close()


@pytest.fixture
def tcp_handle(tmp_path):
    handle = start_in_thread(make_config(tmp_path), host="127.0.0.1")
    try:
        yield handle
    finally:
        handle.stop()


class TestRemoteEquivalence:
    """The acceptance criterion: rows computed on a remote worker are
    byte-identical to a serial local campaign's."""

    def test_remote_rows_match_local(self, tmp_path, monkeypatch):
        specs = [spec(s) for s in range(3)] + [spec(0, policy="mil")]

        local_dir = tmp_path / "local"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(local_dir))
        local = CampaignRunner(jobs=1, fingerprint=FP).run(specs)
        assert len(local) == len(specs)
        monkeypatch.delenv("REPRO_CACHE_DIR")

        handle = start_in_thread(make_config(tmp_path), host="127.0.0.1")
        worker = WorkerThread(handle.address, name="eq-worker").start()
        try:
            client = ServeClient(handle.address)
            wait_for(lambda: client.health()["workers"] == 1,
                     what="worker attach")
            job = client.submit_specs(specs, namespace="eq")
            final = client.wait(job["id"])
            assert final["state"] == "done"
            assert final["counters"]["executed"] == len(specs)
            rows = client.results(job["id"])
            fleet = client.workers()["fleet"]
        finally:
            handle.stop()
            worker.join()
        assert worker.error is None

        # Every execution ran on the remote worker (shards=0, and the
        # inline fallback is disabled while a worker is attached).
        assert len(fleet) == 1 and fleet[0]["kind"] == "remote"
        assert fleet[0]["completed"] == len(specs)
        assert worker.daemon.completed == len(specs)

        keys = [cache.cache_key(s, FP) for s in specs]
        assert [r["cache_key"] for r in rows] == keys
        served_runs = tmp_path / "store" / "runs"
        for key in keys:
            a = json.loads((local_dir / f"{key}.json").read_text())
            b = json.loads((served_runs / f"{key}.json").read_text())
            assert json.dumps(a["summary"], sort_keys=True) == \
                json.dumps(b["summary"], sort_keys=True)
            assert a["fingerprint"] == b["fingerprint"]
            assert a["spec"] == b["spec"]
            row = rows[keys.index(key)]
            assert row["summary"] == a["summary"]


class TestWorkerAuth:
    def test_bad_token_is_rejected(self, tmp_path):
        handle = start_in_thread(
            make_config(tmp_path, worker_token="sekrit"),
            host="127.0.0.1",
        )
        try:
            daemon = WorkerDaemon(handle.address, token="wrong",
                                  max_connects=1)
            with pytest.raises(WorkerAuthError):
                asyncio.run(daemon.run())
            client = ServeClient(handle.address)
            assert client.health()["workers"] == 0
        finally:
            handle.stop()

    def test_good_token_attaches(self, tmp_path):
        handle = start_in_thread(
            make_config(tmp_path, worker_token="sekrit"),
            host="127.0.0.1",
        )
        worker = WorkerThread(handle.address, token="sekrit").start()
        try:
            client = ServeClient(handle.address)
            wait_for(lambda: client.health()["workers"] == 1,
                     what="worker attach")
        finally:
            handle.stop()
            worker.join()
        assert worker.error is None


class TestWorkerDeath:
    def test_vanished_worker_releases_lease(self, tcp_handle):
        """A worker SIGKILLed mid-lease surfaces as EOF; its key must
        go back to the queue and complete elsewhere (here: the inline
        fallback, once the fleet is empty again)."""
        client = ServeClient(tcp_handle.address)
        fake = FakeWorker(tcp_handle.address)
        fake.read_frame("welcome")
        wait_for(lambda: client.health()["workers"] == 1,
                 what="fake worker attach")

        job = client.submit_specs([spec(31)])
        lease = fake.read_frame("lease")
        assert lease["key"] == cache.cache_key(spec(31), FP)
        fake.vanish()  # mid-lease, no result

        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["counters"]["retries"] >= 1
        stats = client.stats()
        assert stats["worker_deaths"] == 1
        assert stats["service"]["died"] == 1
        assert stats["workers"] == 0

    def test_wrong_key_result_is_an_error_not_a_crash(self, tcp_handle):
        client = ServeClient(tcp_handle.address)
        fake = FakeWorker(tcp_handle.address)
        fake.read_frame("welcome")
        wait_for(lambda: client.health()["workers"] == 1,
                 what="fake worker attach")
        job = client.submit_specs([spec(32)])
        fake.read_frame("lease")
        fake.send({"op": "result", "key": "not-the-key",
                   "status": "ok", "body": {}})
        # The mismatched answer is charged as an error; the retry goes
        # back to the fake worker (still the only capacity), which this
        # time answers nothing and vanishes — inline finishes the key.
        fake.read_frame("lease")
        fake.vanish()
        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["counters"]["retries"] >= 2


class TestHeartbeat:
    def test_silent_worker_is_detached(self, tmp_path):
        handle = start_in_thread(
            make_config(tmp_path, heartbeat_s=0.05), host="127.0.0.1"
        )
        try:
            client = ServeClient(handle.address)
            fake = FakeWorker(handle.address)
            fake.read_frame("welcome")
            wait_for(lambda: client.health()["workers"] == 1,
                     what="fake worker attach")
            # The fake never pongs: three missed beats and it's gone.
            wait_for(lambda: client.health()["workers"] == 0,
                     what="silent worker detach")
        finally:
            handle.stop()

    def test_live_worker_survives_heartbeats(self, tmp_path):
        handle = start_in_thread(
            make_config(tmp_path, heartbeat_s=0.05), host="127.0.0.1"
        )
        worker = WorkerThread(handle.address).start()
        try:
            client = ServeClient(handle.address)
            wait_for(lambda: client.health()["workers"] == 1,
                     what="worker attach")
            time.sleep(0.5)  # ten heartbeat intervals
            assert client.health()["workers"] == 1
            job = client.submit_specs([spec(33)])
            assert client.wait(job["id"])["state"] == "done"
        finally:
            handle.stop()
            worker.join()
        assert worker.error is None

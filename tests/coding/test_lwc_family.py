"""Tests for the generic k-LWC family and the perfect (11, 23) 3-LWC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coding.bitops import zeros_in_bits
from repro.coding.lwc_family import (
    GOLAY_POLY,
    KLimitedWeightCode,
    PerfectThreeLWC,
    golay_syndrome,
    lwc_capacity_bits,
)


class TestCapacity:
    def test_perfect_case(self):
        # C(23,0..3) sums to exactly 2^11: the Golay perfection.
        assert lwc_capacity_bits(23, 3) == 11

    def test_one_hot_is_1lwc(self):
        # n wires + the all-zero word carry log2(n+1) bits at weight 1.
        assert lwc_capacity_bits(15, 1) == 4

    def test_bus_invert_shape(self):
        # 9 wires at weight <= 4 hold 8 data bits (BI's budget).
        assert lwc_capacity_bits(9, 4) >= 8


class TestKLWC:
    def test_weight_bound_exhaustive(self):
        code = KLimitedWeightCode(8, 17, 3)
        values = np.arange(256, dtype=np.uint8)
        bits = np.unpackbits(values[:, None], axis=1)
        encoded = code.encode(bits)
        assert zeros_in_bits(encoded).max() <= 3

    def test_round_trip_exhaustive(self):
        code = KLimitedWeightCode(8, 17, 3)
        values = np.arange(256, dtype=np.uint8)
        bits = np.unpackbits(values[:, None], axis=1)
        assert (code.decode(code.encode(bits)) == bits).all()

    def test_zero_maps_to_all_ones(self):
        code = KLimitedWeightCode(4, 9, 2)
        encoded = code.encode(np.zeros((1, 4), dtype=np.uint8))
        assert encoded.sum() == 9

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            KLimitedWeightCode(8, 9, 1)  # 9 wires, weight 1: 3 bits only

    def test_non_codeword_rejected(self):
        code = KLimitedWeightCode(4, 9, 2)
        with pytest.raises(ValueError):
            code.decode(np.zeros((1, 9), dtype=np.uint8))  # weight 9

    @settings(max_examples=50)
    @given(arrays(np.uint8, (6,), elements=st.integers(0, 1)))
    def test_one_hot_family(self, bits):
        code = KLimitedWeightCode(6, 63, 1)
        encoded = code.encode(bits[None, :])
        assert zeros_in_bits(encoded)[0] <= 1
        assert (code.decode(encoded)[0] == bits).all()


class TestGolay:
    def test_syndrome_of_codeword_is_zero(self):
        # g(x) itself is a codeword.
        assert golay_syndrome(np.array([GOLAY_POLY]))[0] == 0
        # ... and so is x * g(x).
        assert golay_syndrome(np.array([GOLAY_POLY << 1]))[0] == 0

    def test_syndrome_of_low_degree_is_identity(self):
        # Degree < 11 polynomials are their own residue.
        assert golay_syndrome(np.array([0b101]))[0] == 0b101

    def test_coset_leaders_cover_all_syndromes(self):
        # Constructing the code asserts this; do it explicitly too.
        PerfectThreeLWC()  # would raise if the cover were imperfect


class TestPerfectThreeLWC:
    @pytest.fixture(scope="class")
    def code(self):
        return PerfectThreeLWC()

    def test_round_trip_exhaustive(self, code):
        values = np.arange(2048, dtype=np.int64)
        bits = ((values[:, None] >> np.arange(10, -1, -1)) & 1).astype(
            np.uint8
        )
        assert (code.decode(code.encode(bits)) == bits).all()

    def test_weight_bound_exhaustive(self, code):
        values = np.arange(2048, dtype=np.int64)
        bits = ((values[:, None] >> np.arange(10, -1, -1)) & 1).astype(
            np.uint8
        )
        assert zeros_in_bits(code.encode(bits)).max() <= 3

    def test_denser_than_stans_3lwc(self, code):
        # 11/23 data density beats the simple 3-LWC's 8/17 with the
        # same worst-case zeros: the reason the construction exists.
        assert code.data_bits / code.code_bits > 8 / 17

    def test_zero_datum_is_free(self, code):
        encoded = code.encode(np.zeros((1, 11), dtype=np.uint8))
        assert zeros_in_bits(encoded)[0] == 0

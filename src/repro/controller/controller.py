"""The channel controller: queues, FR-FCFS, write drain, refresh, MiL hook.

This is the event-driven engine that owns one :class:`DRAMChannel`.  It
advances in DRAM cycles but never busy-waits: :meth:`next_event` reports
the earliest future cycle at which anything could change, and the system
simulator jumps straight there.

The MiL framework plugs in through a *coding policy* object with two
members (duck-typed to avoid a dependency cycle with ``repro.core``):

``extra_cl``
    Codec cycles folded into tCL/tWL for the whole run (Section 7.1).
``choose(controller, request, now)``
    Called when a column command is being issued; returns the coding
    scheme name, which fixes the burst length for that transaction.

The baseline :class:`AlwaysScheme` policy always answers ``"dbi"``.
"""

from __future__ import annotations

import os

from ..coding.registry import scheme_info
from ..dram.channel import DRAMChannel
from ..dram.commands import CommandType, Geometry
from ..dram.refresh import RefreshScheduler
from ..dram.timing import TimingParams
from .frfcfs import FRFCFSScheduler
from .queues import TransactionQueue
from .request import MemoryRequest
from .writedrain import WriteDrainPolicy

__all__ = ["AlwaysScheme", "ChannelController", "NO_EVENT_CACHE_ENV"]

# Kill switch for the scheduling-loop memoisation (candidate list and
# wake-time caches).  The caches are invalidated on every state change
# (enqueue, issue, drain flip), so disabling them must never alter a
# single issued command — tests/controller/test_event_cache.py holds
# the two modes to byte-identical, auditor-clean command logs.
NO_EVENT_CACHE_ENV = "REPRO_NO_EVENT_CACHE"


def _event_cache_enabled() -> bool:
    return os.environ.get(NO_EVENT_CACHE_ENV, "") not in ("1", "true", "yes")


class AlwaysScheme:
    """Fixed-scheme coding policy (baseline DBI, or Figure 20 sweeps)."""

    probe = None  # telemetry slot; set by ChannelController.attach_probe

    def __init__(self, scheme: str = "dbi", extra_cl: int | None = None):
        info = scheme_info(scheme)
        self.scheme = scheme
        self.extra_cl = info.extra_latency if extra_cl is None else extra_cl

    def choose(self, controller: "ChannelController", request, now: int) -> str:
        if self.probe is not None:
            self.probe.decision(now, "fixed", self.scheme)
        return self.scheme

    @property
    def max_bus_cycles(self) -> int:
        return scheme_info(self.scheme).bus_cycles


class ChannelController:
    """Event-skipping memory controller for one channel."""

    def __init__(
        self,
        timing: TimingParams,
        geometry: Geometry,
        policy: AlwaysScheme | None = None,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        drain_high: int = 60,
        drain_low: int = 50,
        keep_log: bool = True,
        keep_cmd_log: bool = False,
        refresh_enabled: bool = True,
        page_policy: str = "open",
    ):
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.page_policy = page_policy
        self.policy = policy if policy is not None else AlwaysScheme("dbi")
        self.timing = timing.with_extra_cl(self.policy.extra_cl)
        self.geometry = geometry
        self.channel = DRAMChannel(
            self.timing, geometry, keep_log=keep_log,
            keep_cmd_log=keep_cmd_log,
        )
        self.scheduler = FRFCFSScheduler(self.channel)
        self.refresh = (
            RefreshScheduler(self.timing, geometry.ranks)
            if refresh_enabled
            else None
        )
        self.read_queue = TransactionQueue(read_queue_size)
        self.write_queue = TransactionQueue(write_queue_size)
        self.drain = WriteDrainPolicy(drain_high, drain_low, write_queue_size)
        self.draining_now = False

        # Telemetry probe shared with the channel and the policy; None
        # (the default) leaves the fast path uninstrumented.
        self._probe = None

        self.completed: list[MemoryRequest] = []
        self.next_cmd_cycle = 0
        self.scheme_counts: dict[str, int] = {}
        self.forwarded_reads = 0
        self.coalesced_writes = 0

        # Candidate cache: the FR-FCFS candidate list only changes when
        # device or queue state does, so it is memoised against a state
        # version counter (the dominant cost of the scheduling loop).
        # REPRO_NO_EVENT_CACHE=1 recomputes everything every call, for
        # A/B-ing the caches against the protocol auditor.
        self._cache_enabled = _event_cache_enabled()
        self._state_version = 0
        self._cand_version = -1
        self._cand_cache: list = []
        # Wake cache: nothing can happen before this absolute cycle
        # unless the state version changes (new request, command issued).
        self._wake_version = -1
        self._wake_time: int | None = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_probe(self, probe) -> None:
        """Wire one :class:`~repro.telemetry.probes.ChannelProbe` in.

        Called once by the simulator when a telemetry session is active;
        the same probe serves the controller's own sites, the DRAM
        channel's command/bus sites, and the coding policy's decision
        sites (policies without a ``probe`` slot simply never call it).
        """
        self._probe = probe
        self.channel.probe = probe
        if hasattr(self.policy, "probe"):
            self.policy.probe = probe

    # ------------------------------------------------------------------
    # Protocol audit
    # ------------------------------------------------------------------
    def audit(self):
        """Replay this controller's logs through the independent auditor.

        Requires ``keep_cmd_log=True``; returns the list of
        :class:`~repro.audit.protocol.Violation` (empty == clean).  The
        auditor gets the controller's *effective* timing (codec latency
        folded in), matching what the channel enforced.
        """
        from ..audit.protocol import ProtocolAuditor

        return ProtocolAuditor(self.timing, self.geometry).audit(
            self.channel.command_log, self.channel.transactions
        )

    # ------------------------------------------------------------------
    # Front end
    # ------------------------------------------------------------------
    @property
    def has_pending(self) -> bool:
        """True when any transaction is queued (the Figure 5 predicate)."""
        return len(self.read_queue) > 0 or len(self.write_queue) > 0

    def can_accept(self, is_write: bool) -> bool:
        """Back-pressure check used by the LLC/core model."""
        queue = self.write_queue if is_write else self.read_queue
        return not queue.full

    def enqueue(self, request: MemoryRequest, now: int) -> None:
        """Accept a request at cycle ``now``.

        Reads that hit the write queue are forwarded and complete
        immediately; writes coalesce with queued writes to the same
        line.  Callers must respect :meth:`can_accept`.
        """
        if request.mapped is None:
            raise ValueError("request must be address-mapped before enqueue")
        request.arrival = now
        self._state_version += 1
        if self._probe is not None:
            self._probe.enqueue(len(self.read_queue), len(self.write_queue))
        if request.is_write:
            took_slot = self.write_queue.push(request, coalesce=True)
            if not took_slot:
                self.coalesced_writes += 1
            return
        hit = self.write_queue.find(request.address)
        if hit is not None:
            request.issue_cycle = now
            request.finish_cycle = now
            request.scheme = "forwarded"
            self.forwarded_reads += 1
            self.completed.append(request)
            return
        self.read_queue.push(request)

    def drain_completions(self) -> list[MemoryRequest]:
        """Hand completed requests to the caller and clear the list."""
        done, self.completed = self.completed, []
        return done

    # ------------------------------------------------------------------
    # MiL decision-logic support (the Figure 11 rdyX computation)
    # ------------------------------------------------------------------
    def column_ready_within(
        self,
        now: int,
        window: int,
        exclude: MemoryRequest | None = None,
        include_prefetches: bool = False,
        reads_only: bool = False,
    ) -> int:
        """Count queued column commands ready within ``window`` cycles.

        This is the software analogue of the rdyX comparator tree:
        a queued request contributes when its target row is open and all
        its timing counters will reach zero within ``window`` cycles.

        Prefetches are excluded by default: the controller knows which
        queue entries are prefetches, and postponing one by a few cycles
        cannot stall any core, so counting them would only veto long
        coded bursts for no benefit (a refinement over the paper's
        prefetch-blind comparator tree; see DESIGN.md).
        """
        count = 0
        horizon = now + window
        entries: list[MemoryRequest] = list(self.read_queue)
        if self.draining_now:
            entries += list(self.write_queue)
        for req in entries:
            if req is exclude:
                continue
            if req.is_prefetch and not include_prefetches:
                continue
            if reads_only and req.is_write:
                continue
            m = req.mapped
            if self.channel.open_row(m.rank, m.bank_group, m.bank) != m.row:
                continue
            cmd = CommandType.WRITE if req.is_write else CommandType.READ
            earliest = self.channel.earliest_issue(
                cmd, m.rank, m.bank_group, m.bank, now
            )
            if earliest <= horizon:
                count += 1
        return count

    def _row_has_more_hits(self, request: MemoryRequest) -> bool:
        """Does any other queued request still want this open row?

        Under the closed-page policy a column command auto-precharges
        unless a queued sibling would hit the same row.
        """
        m = request.mapped
        for queue in (self.read_queue, self.write_queue):
            sibling = None
            for req in queue:
                if req is request:
                    continue
                rm = req.mapped
                if (
                    rm.rank == m.rank
                    and rm.bank_group == m.bank_group
                    and rm.bank == m.bank
                    and rm.row == m.row
                ):
                    sibling = req
                    break
            if sibling is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # Scheduling engine
    # ------------------------------------------------------------------
    def _urgent_refresh_action(self, now: int):
        """(cmd, rank, group, bank, earliest) for overdue refresh, or None."""
        if self.refresh is None or not self.refresh.any_urgent():
            return None
        for rank in range(self.geometry.ranks):
            if not self.refresh.urgent(rank):
                continue
            # Close any open bank, oldest constraint first.
            best = None
            for g in range(self.geometry.bank_groups):
                for b in range(self.geometry.banks_per_group):
                    if self.channel.open_row(rank, g, b) is not None:
                        earliest = self.channel.earliest_issue(
                            CommandType.PRECHARGE, rank, g, b, now
                        )
                        if best is None or earliest < best[4]:
                            best = (CommandType.PRECHARGE, rank, g, b, earliest)
            if best is not None:
                return best
            earliest = self.channel.earliest_issue(
                CommandType.REFRESH, rank, 0, 0, now
            )
            return (CommandType.REFRESH, rank, 0, 0, earliest)
        return None

    def _idle_refresh_action(self, now: int):
        """Opportunistic refresh when no transactions are pending."""
        if self.refresh is None or self.has_pending:
            return None
        if not self.refresh.any_debt():
            return None
        for rank in self.refresh.pending_ranks():
            if not self.channel.all_banks_closed(rank):
                best = None
                for g in range(self.geometry.bank_groups):
                    for b in range(self.geometry.banks_per_group):
                        if self.channel.open_row(rank, g, b) is not None:
                            earliest = self.channel.earliest_issue(
                                CommandType.PRECHARGE, rank, g, b, now
                            )
                            if best is None or earliest < best[4]:
                                best = (
                                    CommandType.PRECHARGE, rank, g, b, earliest
                                )
                return best
            earliest = self.channel.earliest_issue(
                CommandType.REFRESH, rank, 0, 0, now
            )
            return (CommandType.REFRESH, rank, 0, 0, earliest)
        return None

    def _active_entries(self, now: int) -> list[MemoryRequest]:
        draining = self.drain.update(
            len(self.write_queue), len(self.read_queue)
        )
        if draining != self.draining_now:
            self.draining_now = draining
            self._state_version += 1
            if self._probe is not None:
                self._probe.drain_transition(now, draining)
        queue = self.write_queue if self.draining_now else self.read_queue
        return queue.oldest_first()

    def _candidates(self, now: int) -> list:
        """Memoised FR-FCFS candidate list (see ``_state_version``)."""
        entries = self._active_entries(now)
        if not self._cache_enabled:
            return self.scheduler.candidates(entries, now)
        if self._cand_version != self._state_version:
            self._cand_cache = self.scheduler.candidates(entries, now)
            self._cand_version = self._state_version
        return self._cand_cache

    def step(self, now: int) -> bool:
        """Issue at most one command at cycle ``now``; True if issued."""
        if now < self.next_cmd_cycle:
            return False
        if (
            self._cache_enabled
            and self._wake_version == self._state_version
            and self._wake_time is not None
            and now < self._wake_time
        ):
            return False  # provably nothing to do yet
        if self.refresh is not None:
            self.refresh.accrue(now)

        action = self._urgent_refresh_action(now)
        if action is not None:
            cmd, rank, group, bank, earliest = action
            if earliest > now:
                return False
            self.channel.issue(cmd, rank, group, bank, now)
            if cmd is CommandType.REFRESH:
                self.refresh.paid(rank)
            self._state_version += 1
            self.next_cmd_cycle = now + 1
            return True

        cands = self._candidates(now)
        pick = self.scheduler.pick(cands, now)

        if pick is None:
            action = self._idle_refresh_action(now)
            if action is not None:
                cmd, rank, group, bank, earliest = action
                if earliest <= now:
                    self.channel.issue(cmd, rank, group, bank, now)
                    if cmd is CommandType.REFRESH:
                        self.refresh.paid(rank)
                    self._state_version += 1
                    self.next_cmd_cycle = now + 1
                    return True
            return False

        if pick.cmd.is_column:
            req = pick.request
            scheme = self.policy.choose(self, req, now)
            fmt = scheme_info(scheme)
            auto_pre = (
                self.page_policy == "closed"
                and not self._row_has_more_hits(req)
            )
            data_end = self.channel.issue(
                pick.cmd, pick.rank, pick.group, pick.bank, now,
                bus_cycles=fmt.bus_cycles, scheme=scheme,
                request_id=req.line_id, auto_precharge=auto_pre,
            )
            req.issue_cycle = now
            req.finish_cycle = data_end
            req.scheme = scheme
            queue = self.write_queue if req.is_write else self.read_queue
            queue.remove(req)
            self.completed.append(req)
            self.scheme_counts[scheme] = self.scheme_counts.get(scheme, 0) + 1
        else:
            self.channel.issue(
                pick.cmd, pick.rank, pick.group, pick.bank, now, row=pick.row
            )
        self._state_version += 1
        self.next_cmd_cycle = now + 1
        return True

    def next_event(self, now: int) -> int | None:
        """Earliest cycle > ``now`` worth calling :meth:`step` at.

        ``None`` means nothing will ever happen without new requests
        (queues empty and refresh disabled).
        """
        floor = max(now + 1, self.next_cmd_cycle)
        if (
            self._cache_enabled
            and self._wake_version == self._state_version
            and self._wake_time is not None
            and now < self._wake_time
        ):
            return max(floor, self._wake_time)

        times: list[int] = []
        if self.refresh is not None:
            self.refresh.accrue(now)
            times.append(self.refresh.next_event())
            action = self._urgent_refresh_action(now)
            if action is None and not self.has_pending:
                action = self._idle_refresh_action(now)
            if action is not None:
                times.append(action[4])
        if self.has_pending:
            cands = self._candidates(now)
            wake = self.scheduler.next_wakeup(cands)
            if wake is not None:
                times.append(wake)
        if not times:
            self._wake_version = self._state_version
            self._wake_time = None
            return None
        wake = min(times)
        self._wake_version = self._state_version
        self._wake_time = wake
        return max(floor, wake)

"""Unit tests for the FR-FCFS candidate generator and picker."""

from dataclasses import replace

from repro.controller import FRFCFSScheduler, MemoryRequest
from repro.dram import (
    DDR4_3200,
    DDR4_GEOMETRY,
    AddressMapper,
    CommandType,
    DRAMChannel,
)

MAPPER = AddressMapper(DDR4_GEOMETRY, channels=2)


def req(line, write=False, arrival=0):
    m = replace(MAPPER.map(line * 64), channel=0)
    r = MemoryRequest(address=MAPPER.reverse(m), is_write=write)
    r.mapped = m
    r.arrival = arrival
    return r


def fixture():
    channel = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
    return channel, FRFCFSScheduler(channel)


class TestCandidateGeneration:
    def test_closed_bank_yields_activate(self):
        channel, sched = fixture()
        cands = sched.candidates([req(0)], now=0)
        assert len(cands) == 1
        assert cands[0].cmd is CommandType.ACTIVATE

    def test_open_row_yields_column(self):
        channel, sched = fixture()
        r = req(0)
        m = r.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        cands = sched.candidates([r], now=100)
        assert cands[0].cmd is CommandType.READ

    def test_write_request_yields_write(self):
        channel, sched = fixture()
        r = req(0, write=True)
        m = r.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        cands = sched.candidates([r], now=100)
        assert cands[0].cmd is CommandType.WRITE

    def test_conflict_precharges_only_without_hits(self):
        channel, sched = fixture()
        lines_per_row = DDR4_GEOMETRY.lines_per_row
        hit = req(0)
        conflict = req(lines_per_row * 32)  # same bank, another row
        m = hit.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        # With the hit queued: no precharge candidate for the conflict.
        cands = sched.candidates([hit, conflict], now=100)
        assert all(c.cmd is not CommandType.PRECHARGE for c in cands)
        # Without it: precharge on behalf of the conflicting request.
        cands = sched.candidates([conflict], now=100)
        assert any(c.cmd is CommandType.PRECHARGE for c in cands)

    def test_one_row_command_per_bank(self):
        channel, sched = fixture()
        a = req(0)
        b = req(1)  # same row/bank as a while closed: one ACT only
        cands = sched.candidates([a, b], now=0)
        acts = [c for c in cands if c.cmd is CommandType.ACTIVATE]
        assert len(acts) == 1


class TestPick:
    def test_ready_column_beats_activate(self):
        channel, sched = fixture()
        hit = req(0, arrival=50)
        miss = req(1 << 13, arrival=1)  # older, but needs an ACT
        m = hit.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        cands = sched.candidates([miss, hit], now=100)
        pick = sched.pick(cands, now=100)
        assert pick.cmd is CommandType.READ  # first-ready wins

    def test_oldest_column_among_ready(self):
        channel, sched = fixture()
        young = req(0, arrival=90)
        old = req(1, arrival=10)
        m = young.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        cands = sched.candidates([young, old], now=100)
        pick = sched.pick(cands, now=100)
        assert pick.request is old

    def test_nothing_ready_returns_none(self):
        channel, sched = fixture()
        r = req(0)
        m = r.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        # tRCD not yet elapsed: the read exists but is not ready.
        cands = sched.candidates([r], now=1)
        assert sched.pick(cands, now=1) is None

    def test_next_wakeup_is_min_earliest(self):
        channel, sched = fixture()
        r = req(0)
        m = r.mapped
        channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group, m.bank,
                      0, row=m.row)
        cands = sched.candidates([r], now=1)
        assert sched.next_wakeup(cands) == DDR4_3200.RCD
        assert sched.next_wakeup([]) is None

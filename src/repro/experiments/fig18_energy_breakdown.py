"""Figure 18: DRAM energy breakdown, DBI vs MiL, on both systems.

The paper's reading: on DDR4 the (non-power-down) background energy is
large enough to cap MiL's DRAM-system savings at ~8 %; on the
aggressively power-optimised LPDDR3, IO is a much bigger slice, so the
same IO cut yields ~17 %.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER, SNAPDRAGON_MOBILE
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "CATEGORIES"]

CATEGORIES = ("background", "activate", "read_write", "refresh", "io")

SYSTEMS = (NIAGARA_SERVER.name, SNAPDRAGON_MOBILE.name)


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=system, policy=policy,
                accesses_per_core=accesses_per_core)
        for system in SYSTEMS
        for bench in BENCHMARK_ORDER
        for policy in ("dbi", "mil")
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    savings: dict[str, list[float]] = {s: [] for s in SYSTEMS}
    for system in SYSTEMS:
        for bench in BENCHMARK_ORDER:
            base, mil = (
                runs[RunSpec(benchmark=bench, system=system, policy=policy,
                             accesses_per_core=accesses_per_core)]
                for policy in ("dbi", "mil")
            )
            base_total = base.dram_total_j or 1.0
            for policy, summary in (("dbi", base), ("mil", mil)):
                rows.append(
                    [system, bench, policy]
                    + [
                        summary.dram_energy[c] / base_total
                        for c in CATEGORIES
                    ]
                    + [summary.dram_total_j / base_total]
                )
            savings[system].append(
                1 - mil.dram_total_j / base_total
            )

    result = ExperimentResult(
        experiment="fig18",
        title=(
            "Figure 18: DRAM energy breakdown (each benchmark's bars "
            "normalized to its DBI total)"
        ),
        headers=["system", "benchmark", "policy"] + list(CATEGORIES)
        + ["total"],
        rows=rows,
        paper_claim=(
            "MiL cuts DRAM system energy ~8% on DDR4 (background-"
            "limited) and ~17% on LPDDR3 (IO-dominated)"
        ),
    )
    for system, vals in savings.items():
        result.observations[f"mean_dram_savings_{system}"] = float(
            np.mean(vals)
        )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro import telemetry
from repro.cli import main


@pytest.fixture(autouse=True)
def _restore_telemetry_flag():
    """--telemetry flips the process-wide switch; undo it per test."""
    previous = telemetry.enabled()
    yield
    telemetry.set_enabled(previous)


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("GUPS", "ddr4-server", "lpddr3-mobile", "mil",
                         "fig16", "table4"):
            assert expected in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "MM", "--scale", "600"]) == 0
        out = capsys.readouterr().out
        assert "MM on ddr4-server" in out
        assert "zeros on bus" in out

    def test_run_with_baseline_comparison(self, capsys):
        assert main([
            "run", "mm", "--scale", "600", "--policy", "milc", "--baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "vs DBI: zeros" in out

    def test_unknown_system_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--system", "pdp11"])

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--policy", "huffman"])


class TestExperiment:
    def test_analytic_experiment(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "milc-enc" in out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrace:
    def test_trace_dump_and_audit(self, tmp_path, capsys):
        out = tmp_path / "bus.csv"
        assert main([
            "trace", "MM", str(out), "--scale", "600", "--policy", "milc",
        ]) == 0
        text = capsys.readouterr().out
        assert "audit: clean" in text
        assert (tmp_path / "bus.ch0.csv").exists()
        assert (tmp_path / "bus.ch1.csv").exists()

    def test_trace_jsonl_format(self, tmp_path, capsys):
        out = tmp_path / "bus.jsonl"
        assert main(["trace", "MM", str(out), "--scale", "600"]) == 0
        assert (tmp_path / "bus.ch0.jsonl").exists()


class TestTelemetry:
    def test_run_telemetry_extends_summary(self, capsys):
        assert main([
            "run", "MM", "--scale", "400", "--policy", "mil", "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry: bursts" in out
        assert "telemetry: decision mix" in out

    def test_run_trace_out_writes_both_artifacts(self, tmp_path, capsys):
        stem = tmp_path / "mm"
        assert main([
            "run", "MM", "--scale", "400", "--policy", "mil",
            "--trace-out", str(stem),
        ]) == 0
        trace = json.loads((tmp_path / "mm.trace.json").read_text())
        assert trace["traceEvents"], "trace must not be empty"
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases and "M" in phases
        metrics = (tmp_path / "mm.metrics.jsonl").read_text().splitlines()
        assert "meta" in json.loads(metrics[0])

    def test_telemetry_verb_renders_a_dump(self, tmp_path, capsys):
        stem = tmp_path / "mm"
        assert main([
            "run", "MM", "--scale", "400", "--policy", "mil",
            "--trace-out", str(stem),
        ]) == 0
        capsys.readouterr()
        assert main(["telemetry", str(tmp_path / "mm.metrics.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "decision mix" in out
        assert "core.ch0.decision" in out
        # The decision mix line carries the burst-sum invariant.
        assert "(sum " in out

    def test_telemetry_verb_rejects_non_dumps(self, tmp_path):
        bogus = tmp_path / "not-a-dump.jsonl"
        bogus.write_text('{"name": "x"}\n')
        with pytest.raises(SystemExit):
            main(["telemetry", str(bogus)])
        with pytest.raises(SystemExit):
            main(["telemetry", str(tmp_path / "missing.jsonl")])

    def test_campaign_trace_out(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
        stem = tmp_path / "camp"
        assert main([
            "campaign", "fig02", "--scale", "80", "--no-report",
            "--telemetry", "--trace-out", str(stem),
        ]) == 0
        trace = json.loads((tmp_path / "camp.trace.json").read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert "campaign.scan" in {e["name"] for e in spans}
        finished = [e for e in spans if e["cat"] == "run.finished"]
        assert len(finished) == 4  # fig02 is four runs, all executed cold

    def test_run_without_flags_stays_silent(self, capsys):
        assert main(["run", "MM", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
        assert not telemetry.enabled()

"""`repro worker`: a remote execution daemon that dials the service.

One daemon contributes one execution slot to a running ``repro serve``
instance, from the same host or any other that can reach it over TCP.
The conversation:

1. the daemon connects and sends an HTTP handshake — ``POST
   /v1/workers`` with ``{"token", "name", "pid"}``.  The token must
   match the service's ``--token`` (both default to
   ``$REPRO_SERVE_TOKEN``); a mismatch is a 403 and the daemon gives
   up rather than retrying into a wall.
2. the server answers ``200`` with an NDJSON header and the socket
   becomes a symmetric frame stream: one JSON document per line.
3. server→worker frames: ``welcome`` (assigned name + heartbeat
   cadence), ``lease`` (a key and a canonical spec to execute),
   ``ping``, ``stop``.  Worker→server frames: ``pong`` and ``result``
   (``{"op": "result", "key", "status": "ok"|"err", "body",
   "wall_s", "error"}``).

The worker runs :func:`repro.campaign.runner._execute` — the model
itself — and ships the summary body back as JSON.  It never touches a
cache: the *service* finishes the result through the same
``_finish`` path a local campaign uses, so a row computed on a remote
host is byte-identical to one computed by a local shard.  Leases run on
a thread-pool executor, keeping the frame loop responsive: pings are
answered mid-execution, which is what lets the broker tell "slow" from
"gone".

A dropped connection (service restart, network blip) is retried every
``reconnect_delay_s`` forever — the pair of retry loops (worker redials,
broker re-queues) is what lets either side be SIGKILLed at any moment
without losing work.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time

from ..campaign.runner import _execute
from .protocol import frame, parse_address, spec_from_canonical

__all__ = ["WorkerAuthError", "WorkerDaemon"]

DEFAULT_RECONNECT_S = 2.0


class WorkerAuthError(Exception):
    """The service rejected our token; retrying would never help."""


class WorkerDaemon:
    """One remote execution slot, reconnecting until told to stop."""

    def __init__(
        self,
        address: str,
        token: str | None = None,
        name: str | None = None,
        reconnect_delay_s: float = DEFAULT_RECONNECT_S,
        max_connects: int | None = None,
    ) -> None:
        self.address = address
        self.token = token
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.reconnect_delay_s = reconnect_delay_s
        self.max_connects = max_connects  # None = redial forever
        self.connects = 0
        self.completed = 0
        self.failed = 0
        self._stop = False
        self._loop: asyncio.AbstractEventLoop | None = None

    def request_stop(self) -> None:
        """Ask the daemon to exit after the current lease (threadsafe)."""
        self._stop = True
        if self._loop is not None and not self._loop.is_closed():
            try:
                # Wake the frame loop even if it's blocked on readline.
                self._loop.call_soon_threadsafe(lambda: None)
            except RuntimeError:
                pass  # the loop closed between the check and the call

    async def run(self) -> None:
        """Dial, serve, and redial until stopped or out of attempts."""
        self._loop = asyncio.get_running_loop()
        while not self._stop:
            if (self.max_connects is not None
                    and self.connects >= self.max_connects):
                return
            self.connects += 1
            try:
                await self._serve_once()
            except WorkerAuthError:
                raise
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass  # service down or mid-restart: redial below
            if self._stop:
                return
            await asyncio.sleep(self.reconnect_delay_s)

    # -- one connection's lifetime --------------------------------------
    async def _serve_once(self) -> None:
        kind, target = parse_address(self.address)
        if kind == "unix":
            reader, writer = await asyncio.open_unix_connection(target)
        else:
            reader, writer = await asyncio.open_connection(*target)
        try:
            status = await self._handshake(reader, writer)
            if status == 403:
                raise WorkerAuthError(
                    f"service at {self.address} rejected worker token"
                )
            if status != 200:
                raise ConnectionError(f"handshake got HTTP {status}")
            await self._frame_loop(reader, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, reader, writer) -> int:
        body = json.dumps({
            "token": self.token, "name": self.name, "pid": os.getpid(),
        }, sort_keys=True).encode()
        writer.write(
            b"POST /v1/workers HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: keep-alive\r\n\r\n"
            + body
        )
        await writer.drain()
        line = await reader.readline()
        try:
            status = int(line.split()[1])
        except (IndexError, ValueError):
            raise ConnectionError(
                f"bad handshake response {line!r}"
            ) from None
        while True:  # drain response headers up to the blank line
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
        return status

    async def _frame_loop(self, reader, writer) -> None:
        lease_task: asyncio.Task | None = None
        try:
            while not self._stop:
                line = await reader.readline()
                if not line:
                    return  # service went away; run() redials
                try:
                    message = json.loads(line)
                except ValueError:
                    continue  # tolerate garbage frames
                op = message.get("op")
                if op == "ping":
                    writer.write(frame({"op": "pong"}))
                    await writer.drain()
                elif op == "lease":
                    # One lease at a time by protocol; execute off-loop
                    # so pings keep flowing during long runs.
                    lease_task = self._loop.create_task(
                        self._run_lease(writer, message)
                    )
                elif op == "stop":
                    self._stop = True
                    return
                # "welcome" and unknown ops: nothing to do.
        finally:
            if lease_task is not None and not lease_task.done():
                lease_task.cancel()

    async def _run_lease(self, writer, message: dict) -> None:
        key = message.get("key")
        started = time.perf_counter()
        try:
            spec = spec_from_canonical(message.get("spec"))
            body, wall_s = await self._loop.run_in_executor(
                None, _execute, spec
            )
            reply = {"op": "result", "key": key, "status": "ok",
                     "body": body, "wall_s": wall_s}
            self.completed += 1
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            reply = {"op": "result", "key": key, "status": "err",
                     "error": repr(exc),
                     "wall_s": time.perf_counter() - started}
            self.failed += 1
        try:
            writer.write(frame(reply))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # broker will see EOF and re-queue the key

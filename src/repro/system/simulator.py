"""Closed-loop timing simulation: cores + caches' residue + DRAM.

The simulator replays a :class:`~repro.workloads.trace.MemoryTrace`
against the two-channel memory system.  Each core is a small state
machine that honours, per record:

* **think time** — ``gap`` DRAM cycles of CPU work since its previous
  record;
* **memory-level parallelism** — at most ``config.mlp`` demand reads in
  flight;
* **dependences** — a record flagged ``dependent`` waits for the
  previous demand read's data (pointer chasing);
* **back-pressure** — writes are posted but stall the core when the
  write queue is full; prefetches are dropped instead of stalling.

Execution time is the cycle at which every demand access has completed,
which is how longer coded bursts turn into the Figure 16 performance
deltas.

The engine is event-driven: a cross-channel
:class:`~repro.system.events.EventQueue` holds completion times, core
arm times, and per-controller wakes, and the main loop jumps from one
populated cycle to the next — an idle channel is never polled while
another streams a burst.  Setting ``REPRO_NO_EVENT_CACHE=1`` falls back
to the original lockstep loop (every core and every controller visited
at every global event time), which doubles as the equivalence oracle:
both paths must produce byte-identical command logs (see DESIGN.md,
"Event core").
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field

from ..controller.controller import (
    AlwaysScheme,
    ChannelController,
    NO_EVENT_CACHE_ENV,
)
from ..controller.request import MemoryRequest
from ..dram.address import AddressMapper
from ..workloads.trace import MemoryTrace
from .events import EventQueue
from .machine import SystemConfig

__all__ = ["SimulationResult", "simulate", "accrue_pending_cycles"]


def _event_core_enabled() -> bool:
    return os.environ.get(NO_EVENT_CACHE_ENV, "") not in ("1", "true", "yes")


@dataclass
class SimulationResult:
    """Outputs of one benchmark x system x policy run."""

    name: str
    system: str
    policy: str
    cycles: int  # execution time in DRAM cycles
    controllers: list  # the ChannelControllers (logs, counters)
    pending_cycles: list  # per channel: cycles with queued requests
    demand_reads: int = 0
    read_latency_sum: int = 0
    dropped_prefetches: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        clock_hz = self.controllers[0].timing.clock_ghz * 1e9
        return self.cycles / clock_hz

    @property
    def mean_read_latency(self) -> float:
        if not self.demand_reads:
            return 0.0
        return self.read_latency_sum / self.demand_reads

    @property
    def scheme_counts(self) -> dict:
        merged: dict[str, int] = {}
        for mc in self.controllers:
            for scheme, count in mc.scheme_counts.items():
                merged[scheme] = merged.get(scheme, 0) + count
        return merged

    def transactions(self):
        """All data-bus transactions across channels."""
        for mc in self.controllers:
            yield from mc.channel.transactions

    @property
    def bus_utilization(self) -> float:
        busy = sum(mc.channel.busy_cycles for mc in self.controllers)
        return busy / (self.cycles * len(self.controllers)) if self.cycles else 0.0


class _CoreState:
    """Progress of one core through its trace."""

    __slots__ = (
        "records", "index", "earliest", "outstanding",
        "wait_completion_of", "last_demand_read",
    )

    def __init__(self, records):
        self.records = records
        self.index = 0
        self.earliest = 0  # earliest cycle the next record may issue
        self.outstanding = 0  # in-flight demand reads
        self.wait_completion_of: int | None = None  # request serial
        self.last_demand_read: MemoryRequest | None = None

    @property
    def done(self) -> bool:
        return self.index >= len(self.records)


def accrue_pending_cycles(controllers, pending_cycles, now, nxt) -> None:
    """Charge the jump ``now -> nxt`` to each channel's pending counter.

    "Pending" in the Figure 5 sense: work queued *or* a burst still
    streaming on the data bus.  A channel with queued requests is
    pending for the whole jump; an empty channel whose last burst's
    data tail extends past ``now`` is pending until the tail ends
    (clipped to ``nxt``).  The accrual telescopes: splitting a jump at
    any intermediate event-free cycle charges the same total, which is
    what lets the event heap visit fewer cycles than the lockstep loop
    without changing the counters.
    """
    for ch, mc in enumerate(controllers):
        if mc.has_pending:
            pending_cycles[ch] += nxt - now
        else:
            bus_free_at = mc.channel.bus_free_at
            if bus_free_at > now:
                pending_cycles[ch] += min(nxt, bus_free_at) - now


class _SimCore:
    """The simulation engine: cores, controllers, and the event loop.

    All mutable loop state lives in slots; the hot methods bind their
    attributes to locals once per call.  Two drivers share every
    state-transition method: :meth:`run_event` (the cross-channel event
    heap) and :meth:`run_lockstep` (the original
    advance-everything-to-the-global-minimum loop, kept verbatim as the
    ``REPRO_NO_EVENT_CACHE=1`` oracle).
    """

    __slots__ = (
        "cores", "controllers", "mapper", "mlp", "address_mask",
        "completion_heap", "inflight", "pending_cycles",
        "demand_reads", "read_latency_sum", "dropped_prefetches",
        "last_completion", "now", "events", "waiters", "done_cores",
    )

    def __init__(self, trace, config, controllers, mapper):
        self.cores = [_CoreState(recs) for recs in trace.records_by_core]
        self.controllers = controllers
        self.mapper = mapper
        self.mlp = config.mlp
        self.address_mask = mapper.capacity_bytes - 1
        self.completion_heap: list[tuple[int, int]] = []  # (finish, serial)
        self.inflight: dict[int, tuple[MemoryRequest, int]] = {}
        self.pending_cycles = [0] * config.channels
        self.demand_reads = 0
        self.read_latency_sum = 0
        self.dropped_prefetches = 0
        self.last_completion = 0
        self.now = 0
        self.events: EventQueue | None = None
        # Cores stalled on a full transaction queue, per channel; woken
        # when that channel's controller issues (the only event that can
        # free a slot).
        self.waiters: list[set] = [set() for _ in range(config.channels)]
        # Cores with empty traces are born done; _arm_next counts the
        # rest exactly once, when their index first passes the end.
        self.done_cores = sum(1 for core in self.cores if not core.records)

    # ------------------------------------------------------------------
    # Core-side transitions (shared by both drivers)
    # ------------------------------------------------------------------
    def _issue_from_core(self, core_id: int, core: _CoreState, now: int,
                         dirty) -> bool:
        """Try to issue the core's next record; True on progress.

        ``dirty`` is a set collecting the channels enqueued into this
        round (the event driver steps exactly those; the lockstep
        driver passes a throwaway).
        """
        rec = core.records[core.index]
        if now < core.earliest:
            return False
        if rec.dependent and core.wait_completion_of is not None:
            return False
        if not rec.is_write and not rec.is_prefetch:
            if core.outstanding >= self.mlp:
                return False
        address = rec.address & self.address_mask
        mapped = self.mapper.map(address)
        mc = self.controllers[mapped.channel]
        if rec.is_prefetch:
            if not mc.can_accept(False):
                self.dropped_prefetches += 1
                core.index += 1
                self._arm_next(core, now)
                return True
        elif not mc.can_accept(rec.is_write):
            return False

        request = MemoryRequest(
            address=address,
            is_write=rec.is_write,
            core=core_id,
            line_id=rec.line_id,
            is_prefetch=rec.is_prefetch,
        )
        request.mapped = mapped
        mc.enqueue(request, now)
        dirty.add(mapped.channel)
        if request.completed:
            # Forwarded from the write queue: done instantly.
            pass
        elif not rec.is_write and not rec.is_prefetch:
            core.outstanding += 1
            self.inflight[request.serial] = (request, core_id)
            core.last_demand_read = request
        core.index += 1
        self._arm_next(core, now)
        return True

    def _arm_next(self, core: _CoreState, now: int) -> None:
        """Set earliest-issue constraints for the core's next record."""
        if core.index >= len(core.records):
            self.done_cores += 1
            return
        nxt = core.records[core.index]
        core.earliest = now + nxt.gap
        if nxt.dependent and core.last_demand_read is not None:
            if core.last_demand_read.completed:
                core.wait_completion_of = None
                core.earliest = max(
                    core.earliest,
                    core.last_demand_read.finish_cycle + nxt.gap,
                )
            else:
                core.wait_completion_of = core.last_demand_read.serial
        else:
            core.wait_completion_of = None

    def _drive_core(self, core_id: int, now: int, dirty) -> None:
        """Issue as much as the core can, then schedule its wake-up.

        The block classification mirrors the lockstep loop's candidate
        rules: a core waiting on a completion (dependence or MLP) is
        woken by the completion retire; a core inside its think time is
        armed in the event queue; a core stalled on a full queue waits
        on that channel's next issued command.
        """
        core = self.cores[core_id]
        records = core.records
        if core.index >= len(records):
            return
        while core.index < len(records) and self._issue_from_core(
            core_id, core, now, dirty
        ):
            pass
        if core.index >= len(records):
            return
        if core.wait_completion_of is not None:
            return  # the completion event wakes this core
        rec = records[core.index]
        if not rec.is_write and not rec.is_prefetch:
            if core.outstanding >= self.mlp:
                return  # a completion will free an MLP slot
        if core.earliest > now:
            self.events.push_core(core_id, core.earliest)
            return
        # Ready but blocked on queue capacity: wake on the next command
        # issued by the channel the stalled record maps to.
        mapped = self.mapper.map(rec.address & self.address_mask)
        self.waiters[mapped.channel].add(core_id)

    def _retire_completions(self, serials, freed) -> None:
        """Retire finished demand reads; collect their cores in ``freed``."""
        inflight = self.inflight
        cores = self.cores
        for serial in serials:
            request, core_id = inflight.pop(serial)
            core = cores[core_id]
            core.outstanding -= 1
            if core.wait_completion_of == serial:
                core.wait_completion_of = None
                # The dependent record's think time starts when the data
                # arrives, not when the load issued.
                if core.index < len(core.records):
                    gap = core.records[core.index].gap
                    core.earliest = max(
                        core.earliest, request.finish_cycle + gap
                    )
            freed.add(core_id)

    def _collect_completions(self, mc, push) -> None:
        """Fold one controller's completed requests into the bookkeeping.

        ``push(finish, serial)`` schedules the retire — a heap push for
        the lockstep driver, an event push for the event driver.
        """
        for request in mc.drain_completions():
            finish = request.finish_cycle
            if finish > self.last_completion:
                self.last_completion = finish
            if request.is_write or request.is_prefetch:
                continue
            self.demand_reads += 1
            self.read_latency_sum += request.queue_latency()
            if request.serial in self.inflight:
                push(finish, request.serial)

    def _finished(self) -> bool:
        return (
            self.done_cores >= len(self.cores)
            and not self.inflight
            and not any(mc.has_pending for mc in self.controllers)
        )

    def _deadlock(self) -> RuntimeError:
        return RuntimeError(
            f"simulation deadlocked at cycle {self.now} "
            f"({sum(c.done for c in self.cores)}/{len(self.cores)} cores done)"
        )

    # ------------------------------------------------------------------
    # Event-heap driver
    # ------------------------------------------------------------------
    def run_event(self, max_cycles: int) -> None:
        """Drive the simulation off the cross-channel event heap.

        Each round processes one populated cycle in the same phase
        order as the lockstep loop (retire, core issue, controller
        step, completion collection), but only touches the cores and
        controllers that have an event there — plus the controllers
        that received an enqueue this round, since an enqueue at ``t``
        can enable an issue at ``t``.
        """
        cores = self.cores
        controllers = self.controllers
        events = self.events = EventQueue(len(controllers), len(cores))
        waiters = self.waiters
        push = events.push_completion

        now = 0
        completions: list = []
        attempt = set(range(len(cores)))
        due = range(len(controllers))
        while now < max_cycles:
            # 1. Retire completions whose data arrives this cycle.
            if completions:
                self._retire_completions(completions, attempt)

            # 2. Let the woken cores push work into the controllers.
            dirty: set = set()
            for core_id in sorted(attempt):
                self._drive_core(core_id, now, dirty)

            # 3. One scheduling step per due-or-enqueued controller,
            #    then reschedule its wake.
            for ch in sorted(set(due) | dirty):
                mc = controllers[ch]
                if mc.step(now):
                    events.push_ctrl(ch, now + 1)
                    stalled = waiters[ch]
                    if stalled:
                        for core_id in stalled:
                            events.push_core(core_id, now + 1)
                        stalled.clear()
                else:
                    wake = mc.next_event(now)
                    if wake is None:
                        events.cancel_ctrl(ch)
                    else:
                        events.push_ctrl(ch, wake)
                # 4. Collect newly scheduled transfers.
                if mc.completed:
                    self._collect_completions(mc, push)

            if self._finished():
                break

            # 5. Jump to the next populated cycle.
            round_ = events.pop_round()
            if round_ is None:
                self.now = now
                raise self._deadlock()
            nxt, completions, armed, due = round_
            accrue_pending_cycles(
                controllers, self.pending_cycles, now, nxt
            )
            now = nxt
            attempt = set(armed)
        self.now = now

    # ------------------------------------------------------------------
    # Lockstep driver (the REPRO_NO_EVENT_CACHE oracle)
    # ------------------------------------------------------------------
    def run_lockstep(self, max_cycles: int) -> None:
        """Advance every core and controller to each global event time.

        This is the original main loop, preserved as the equivalence
        oracle for the event-heap driver: under
        ``REPRO_NO_EVENT_CACHE=1`` the controller also recomputes its
        candidate list from scratch each call, so the pair proves the
        whole caching stack transparent (byte-identical command logs).
        """
        cores = self.cores
        controllers = self.controllers
        completion_heap = self.completion_heap
        inflight = self.inflight
        mlp = self.mlp

        def push(finish: int, serial: int) -> None:
            heapq.heappush(completion_heap, (finish, serial))

        dirty: set = set()  # unused by this driver; throwaway sink
        now = 0
        while now < max_cycles:
            # 1. Retire completions whose data has arrived.
            ready: list = []
            while completion_heap and completion_heap[0][0] <= now:
                ready.append(heapq.heappop(completion_heap)[1])
            if ready:
                self._retire_completions(ready, set())

            # 2. Let every core push work into the controllers.
            for core_id, core in enumerate(cores):
                while core.index < len(core.records) and self._issue_from_core(
                    core_id, core, now, dirty
                ):
                    pass

            # 3. One scheduling step per controller.
            stepped = [mc.step(now) for mc in controllers]

            # 4. Collect newly scheduled transfers into the heap.
            for mc in controllers:
                self._collect_completions(mc, push)

            if self._finished():
                break

            # 5. Jump to the next event.
            candidates: list[int] = []
            if completion_heap:
                candidates.append(completion_heap[0][0])
            for mc, did in zip(controllers, stepped):
                nxt = (now + 1) if did else mc.next_event(now)
                if nxt is not None:
                    candidates.append(nxt)
            for core in cores:
                if core.index >= len(core.records):
                    continue
                if core.wait_completion_of is not None:
                    continue  # completion heap covers the wake-up
                rec = core.records[core.index]
                if not rec.is_write and not rec.is_prefetch:
                    if core.outstanding >= mlp:
                        continue  # a completion will free a slot
                candidates.append(max(now + 1, core.earliest))

            if not candidates:
                self.now = now
                raise self._deadlock()
            nxt = max(now + 1, min(candidates))
            accrue_pending_cycles(
                controllers, self.pending_cycles, now, nxt
            )
            now = nxt
        self.now = now


def simulate(
    trace: MemoryTrace,
    config: SystemConfig,
    policy_factory=None,
    max_cycles: int = 200_000_000,
    telemetry=None,
    record_commands: bool = False,
) -> SimulationResult:
    """Run ``trace`` on ``config`` under a coding policy.

    ``policy_factory()`` builds one policy per channel (default: the
    always-DBI baseline).  ``telemetry`` is an optional
    :class:`~repro.telemetry.session.TelemetrySession`; when given, one
    probe per channel is wired into the controller, its DRAM channel,
    and its policy (the default ``None`` leaves the fast path exactly as
    it was).  ``record_commands`` makes every channel keep the full
    per-command log the protocol audit layer replays (off by default:
    the log costs memory and buys nothing unless something audits it).
    Returns a :class:`SimulationResult`.
    """
    if policy_factory is None:
        policy_factory = lambda: AlwaysScheme("dbi")  # noqa: E731

    mapper = AddressMapper(
        config.geometry, config.channels,
        interleave=config.address_interleave,
    )
    controllers = [
        ChannelController(
            config.timing,
            config.geometry,
            policy=policy_factory(),
            read_queue_size=config.read_queue,
            write_queue_size=config.write_queue,
            drain_high=config.drain_high,
            drain_low=config.drain_low,
            keep_cmd_log=record_commands,
            page_policy=config.page_policy,
        )
        for _ in range(config.channels)
    ]
    if telemetry is not None:
        telemetry.cycle_ns = 1.0 / config.timing.clock_ghz
        for ch, mc in enumerate(controllers):
            mc.attach_probe(telemetry.channel_probe(ch))
    policy = controllers[0].policy
    policy_name = getattr(policy, "scheme", None) or type(policy).__name__

    engine = _SimCore(trace, config, controllers, mapper)
    if _event_core_enabled():
        engine.run_event(max_cycles)
    else:
        engine.run_lockstep(max_cycles)

    events = engine.events
    if telemetry is not None and events is not None:
        telemetry.sim_probe().event_queue(events.pops, events.stale)

    cycles = max(engine.last_completion, engine.now)
    return SimulationResult(
        name=trace.name,
        system=config.name,
        policy=policy_name,
        cycles=cycles,
        controllers=controllers,
        pending_cycles=engine.pending_cycles,
        demand_reads=engine.demand_reads,
        read_latency_sum=engine.read_latency_sum,
        dropped_prefetches=engine.dropped_prefetches,
        stats={
            "trace_records": trace.total_records,
            "forwarded_reads": sum(mc.forwarded_reads for mc in controllers),
            "coalesced_writes": sum(mc.coalesced_writes for mc in controllers),
            "event_queue_pops": events.pops if events is not None else 0,
            "event_queue_stale": events.stale if events is not None else 0,
        },
    )

"""Injected-violation matrix: prove the auditor catches every class.

Each test hand-builds a *legal* command log (asserted clean first, so
the baseline itself is validated), then mutates exactly one command to
violate one Table 2 constraint and asserts the auditor names it.  This
is the test of the auditor itself — the fuzz corpus only proves
channel and auditor agree, which they also would if both were wrong.

DDR4-3200 numbers used throughout (tRC is isolated on LPDDR3, the one
timing set where tRC exceeds tRAS + tRP):

    RCD=20 RAS=52 RC=72 RP=20 RTP=12 WR=4 CL=20 WL=16
    CCD_S=4 CCD_L=8 RRD_S=9 RRD_L=11 FAW=48 WTR_S=4 WTR_L=12
    RFC=416 REFI=12480 RTRS=2
"""

from repro.audit.protocol import ProtocolAuditor
from repro.dram import (
    DDR4_3200,
    DDR4_GEOMETRY,
    LPDDR3_1600,
    LPDDR3_GEOMETRY,
    CommandRecord,
    CommandType,
)
from repro.dram.channel import BusTransaction

ACT = CommandType.ACTIVATE
PRE = CommandType.PRECHARGE
RD = CommandType.READ
WR = CommandType.WRITE
REF = CommandType.REFRESH

T = DDR4_3200


def rec(cycle, cmd, rank=0, group=0, bank=0, row=1, bus=0, ap=False):
    return CommandRecord(
        cycle=cycle, cmd=cmd, rank=rank, bank_group=group, bank=bank,
        row=row if cmd is ACT else None,
        bus_cycles=bus if cmd.is_column else 0,
        auto_precharge=ap and cmd.is_column,
    )


def auditor(timing=T, geometry=DDR4_GEOMETRY):
    return ProtocolAuditor(timing, geometry)


def constraints(log, timing=T, geometry=DDR4_GEOMETRY):
    return {v.constraint for v in auditor(timing, geometry).check(log)}


def assert_catches(legal, mutated, constraint, timing=T,
                   geometry=DDR4_GEOMETRY):
    assert constraints(legal, timing, geometry) == set(), (
        "baseline log must be clean"
    )
    assert constraint in constraints(mutated, timing, geometry)


class TestActivateConstraints:
    def test_tfaw(self):
        # 4 ACTs at 0/12/24/36 (alternating groups, distinct banks);
        # the 5th is legal at 48, violates tFAW at 47.
        base = [
            rec(0, ACT, group=0, bank=0),
            rec(12, ACT, group=1, bank=0),
            rec(24, ACT, group=0, bank=1),
            rec(36, ACT, group=1, bank=1),
        ]
        legal = base + [rec(48, ACT, group=0, bank=2)]
        mutated = base + [rec(47, ACT, group=0, bank=2)]
        assert_catches(legal, mutated, "tFAW")

    def test_trrd_s(self):
        legal = [rec(0, ACT, group=0), rec(T.RRD_S, ACT, group=1)]
        mutated = [rec(0, ACT, group=0), rec(T.RRD_S - 1, ACT, group=1)]
        assert_catches(legal, mutated, "tRRD_S")
        assert "tRRD_L" not in constraints(mutated)

    def test_trrd_l(self):
        legal = [rec(0, ACT, bank=0), rec(T.RRD_L, ACT, bank=1)]
        mutated = [rec(0, ACT, bank=0), rec(T.RRD_L - 1, ACT, bank=1)]
        assert_catches(legal, mutated, "tRRD_L")
        assert "tRRD_S" not in constraints(mutated)

    def test_trp(self):
        # PRE at 60 (> tRAS); re-ACT legal at 80, tRP-short at 78
        # (tRC bound is 72, already satisfied, so tRP is isolated).
        base = [rec(0, ACT), rec(20, RD, bus=4), rec(60, PRE)]
        legal = base + [rec(60 + T.RP, ACT, row=2)]
        mutated = base + [rec(60 + T.RP - 2, ACT, row=2)]
        assert_catches(legal, mutated, "tRP")
        assert "tRC" not in constraints(mutated)

    def test_trc(self):
        # LPDDR3: tRC (51) > tRAS + tRP (50), so an ACT-to-ACT gap of
        # 50 satisfies tRP after an earliest-legal PRE but not tRC.
        lt = LPDDR3_1600
        base = [
            rec(0, ACT),
            rec(lt.RCD, RD, bus=4),
            rec(lt.RAS, PRE),
        ]
        legal = base + [rec(lt.RC, ACT, row=2)]
        mutated = base + [rec(lt.RC - 1, ACT, row=2)]
        assert_catches(legal, mutated, "tRC",
                       timing=lt, geometry=LPDDR3_GEOMETRY)
        assert "tRP" not in constraints(mutated, lt, LPDDR3_GEOMETRY)


class TestColumnConstraints:
    def test_trcd(self):
        legal = [rec(0, ACT), rec(T.RCD, RD, bus=4)]
        mutated = [rec(0, ACT), rec(T.RCD - 1, RD, bus=4)]
        assert_catches(legal, mutated, "tRCD")

    def test_tccd_s(self):
        base = [rec(0, ACT, group=0), rec(9, ACT, group=1)]
        first = rec(29, RD, group=0, bus=4)
        legal = base + [first, rec(29 + T.CCD_S, RD, group=1, bus=4)]
        mutated = base + [first, rec(29 + T.CCD_S - 1, RD, group=1, bus=4)]
        assert_catches(legal, mutated, "tCCD_S")

    def test_tccd_l(self):
        base = [rec(0, ACT, bank=0), rec(11, ACT, bank=1)]
        first = rec(31, RD, bank=0, bus=4)
        legal = base + [first, rec(31 + T.CCD_L, RD, bank=1, bus=4)]
        mutated = base + [first, rec(31 + T.CCD_L - 1, RD, bank=1, bus=4)]
        assert_catches(legal, mutated, "tCCD_L")

    def test_tccd_burst_stretch(self):
        # A BL16 burst (8 bus cycles) stretches the effective column
        # spacing past tCCD_S: 5 cycles satisfies the plain tCCD_S=4
        # but not the stretch, so only the stretch check can catch it.
        base = [rec(0, ACT, group=0), rec(9, ACT, group=1)]
        first = rec(29, RD, group=0, bus=8)
        legal = base + [first, rec(29 + 8, RD, group=1, bus=4)]
        mutated = base + [first, rec(29 + T.CCD_S + 1, RD, group=1, bus=4)]
        assert_catches(legal, mutated, "tCCD_S")

    def test_twtr_s(self):
        base = [rec(0, ACT, group=0), rec(9, ACT, group=1)]
        wr = rec(20, WR, group=0, bus=4)
        data_end = 20 + T.WL + 4  # 40
        legal = base + [wr, rec(data_end + T.WTR_S, RD, group=1, bus=4)]
        mutated = base + [wr, rec(data_end + T.WTR_S - 2, RD, group=1,
                                  bus=4)]
        assert_catches(legal, mutated, "tWTR_S")

    def test_twtr_l(self):
        base = [rec(0, ACT, bank=0), rec(11, ACT, bank=1)]
        wr = rec(20, WR, bank=0, bus=4)
        data_end = 20 + T.WL + 4  # 40
        legal = base + [wr, rec(data_end + T.WTR_L, RD, bank=1, bus=4)]
        # 6 cycles after data end: tWTR_S (4) holds, tWTR_L (12) broken.
        mutated = base + [wr, rec(data_end + 6, RD, bank=1, bus=4)]
        assert_catches(legal, mutated, "tWTR_L")
        assert "tWTR_S" not in constraints(mutated)


class TestPrechargeConstraints:
    def test_tras(self):
        base = [rec(0, ACT), rec(20, RD, bus=4)]
        legal = base + [rec(T.RAS, PRE)]
        mutated = base + [rec(T.RAS - 2, PRE)]
        assert_catches(legal, mutated, "tRAS")
        assert "tRTP" not in constraints(mutated)

    def test_trtp(self):
        # Read late enough that its tRTP bound (57) exceeds tRAS (52).
        base = [rec(0, ACT), rec(45, RD, bus=4)]
        legal = base + [rec(45 + T.RTP, PRE)]
        mutated = base + [rec(45 + T.RTP - 2, PRE)]
        assert_catches(legal, mutated, "tRTP")
        assert "tRAS" not in constraints(mutated)

    def test_twr(self):
        # Write data ends at 40+WL+4 = 60; write recovery dominates
        # tRAS, so a PRE at 62 breaks only tWR.
        base = [rec(0, ACT), rec(40, WR, bus=4)]
        data_end = 40 + T.WL + 4  # 60
        legal = base + [rec(data_end + T.WR, PRE)]
        mutated = base + [rec(data_end + T.WR - 2, PRE)]
        assert_catches(legal, mutated, "tWR")
        assert "tRAS" not in constraints(mutated)


class TestRefreshConstraints:
    def test_trfc_between_refreshes(self):
        # Idle two tREFI so two obligations accrue, then refresh twice.
        t0 = 2 * T.REFI
        legal = [rec(t0, REF), rec(t0 + T.RFC, REF)]
        mutated = [rec(t0, REF), rec(t0 + T.RFC - 16, REF)]
        assert_catches(legal, mutated, "tRFC")

    def test_trfc_blocks_activate(self):
        t0 = T.REFI
        legal = [rec(t0, REF), rec(t0 + T.RFC, ACT)]
        mutated = [rec(t0, REF), rec(t0 + T.RFC - 1, ACT)]
        assert_catches(legal, mutated, "tRFC")

    def test_trefi_overpay(self):
        # Two refreshes but only one accrued obligation: the second is
        # an overpay — the observable signature of debt accrual racing
        # past the postponement budget (the pre-fix RefreshScheduler
        # bug, which batch-accrued unbounded debt over long idles).
        t0 = T.REFI
        mutated = [rec(t0, REF), rec(t0 + T.RFC, REF)]
        assert "tREFI" in constraints(mutated)

    def test_refresh_needs_precharged_banks(self):
        mutated = [rec(2 * T.REFI - 60, ACT), rec(2 * T.REFI, REF)]
        assert "structure" in constraints(mutated)


class TestStructure:
    def test_activate_on_open_bank(self):
        mutated = [rec(0, ACT), rec(T.RC, ACT, row=2)]
        assert "structure" in constraints(mutated)

    def test_column_on_closed_bank(self):
        mutated = [rec(100, RD, bus=4)]
        assert "structure" in constraints(mutated)

    def test_auto_precharge_closes_for_audit(self):
        # RDA closes the bank: a follow-up column command is structural,
        # and a re-ACT must respect tRP from the *internal* precharge.
        base = [rec(0, ACT), rec(20, RD, bus=4, ap=True)]
        ipre = T.RAS  # max(0+tRAS, 20+tRTP) = 52
        legal = base + [rec(ipre + T.RP, ACT, row=2)]
        mutated = base + [rec(ipre + T.RP - 2, ACT, row=2)]
        assert_catches(legal, mutated, "tRP")


class TestBusConstraints:
    def _tr(self, start, end, rank=0, is_write=False):
        return BusTransaction(
            start=start, end=end, issue_cycle=start - T.CL,
            is_write=is_write, rank=rank, bank_group=0, bank=0,
            scheme="dbi", request_id=-1,
        )

    def test_bus_overlap(self):
        log = [self._tr(100, 104), self._tr(102, 106)]
        found = {v.constraint for v in auditor().check_bus(log)}
        assert "bus-overlap" in found

    def test_trtrs(self):
        log = [self._tr(100, 104, rank=0),
               self._tr(105, 109, rank=1)]
        found = {v.constraint for v in auditor().check_bus(log)}
        assert "tRTRS" in found

    def test_clean_bus(self):
        log = [self._tr(100, 104, rank=0),
               self._tr(104 + T.RTRS, 110, rank=1)]
        assert auditor().check_bus(log) == []


class TestAuditCombined:
    def test_audit_merges_command_and_bus_findings(self):
        cmds = [rec(0, ACT), rec(T.RCD - 1, RD, bus=4)]
        bus = [
            BusTransaction(100, 104, 80, False, 0, 0, 0, "dbi", -1),
            BusTransaction(103, 107, 83, False, 0, 0, 0, "dbi", -1),
        ]
        found = {v.constraint for v in auditor().audit(cmds, bus)}
        assert "tRCD" in found and "bus-overlap" in found

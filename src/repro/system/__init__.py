"""Multicore CPU + cache substrate and the full-system timing simulator."""

from .cache import AccessResult, Cache
from .hierarchy import CoreAccessStream, filter_through_hierarchy
from .machine import (
    NIAGARA_SERVER,
    SNAPDRAGON_MOBILE,
    SYSTEMS,
    SystemConfig,
)
from .mesi import CoherenceOutcome, MESIDirectory, MESIState
from .prefetcher import PrefetcherConfig, StreamPrefetcher
from .simulator import SimulationResult, simulate

__all__ = [
    "AccessResult",
    "Cache",
    "CoreAccessStream",
    "filter_through_hierarchy",
    "SystemConfig",
    "NIAGARA_SERVER",
    "SNAPDRAGON_MOBILE",
    "SYSTEMS",
    "CoherenceOutcome",
    "MESIDirectory",
    "MESIState",
    "PrefetcherConfig",
    "StreamPrefetcher",
    "SimulationResult",
    "simulate",
]

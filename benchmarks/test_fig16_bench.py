"""Benchmark target: Figure 16 execution time.

Regenerates the paper's fig16 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig16_performance import run_experiment


def test_fig16(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

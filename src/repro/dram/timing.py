"""DRAM timing parameter sets (Table 2 of the paper).

All values are in DRAM clock cycles.  The DDR4-3200 and LPDDR3-1600
parameter sets below are transcribed verbatim from Table 2; the paper's
row reads::

    CL/WL/CCD_S/CCD_L/RC/RTP/RP/RCD/RAS/WR/RTRS/WTR_S/WTR_L/RRD_S/RRD_L/
    FAW/REFI/RFC

DDR4 introduced *bank groups*: tCCD, tRRD, and tWTR each come in a
"short" flavour (consecutive commands hit different bank groups) and a
"long" flavour (same bank group).  LPDDR3 has no bank groups, so its
short and long values coincide.

The MiL framework adds codec latency on top of these (Section 7.1): one
extra cycle of tCL for MiLC/3-LWC, ``k`` cycles for CAFO-k.  That extra
latency lives in :class:`repro.core.config.MiLConfig`, not here — these
are the raw device constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TimingParams", "DDR4_3200", "LPDDR3_1600", "DDR3_1600"]


@dataclass(frozen=True)
class TimingParams:
    """One generation's DRAM timing constraints, in DRAM clock cycles.

    Attributes mirror the JEDEC names without the ``t`` prefix.  See the
    module docstring for the bank-group short/long distinction.
    """

    name: str
    CL: int  # column read latency (command to first data)
    WL: int  # column write latency
    CCD_S: int  # column-to-column, different bank group
    CCD_L: int  # column-to-column, same bank group
    RC: int  # activate-to-activate, same bank
    RTP: int  # read-to-precharge
    RP: int  # precharge period
    RCD: int  # activate-to-column
    RAS: int  # activate-to-precharge
    WR: int  # write recovery (after last write data)
    RTRS: int  # rank-to-rank switch bubble on the data bus
    WTR_S: int  # write-to-read turnaround, different bank group
    WTR_L: int  # write-to-read turnaround, same bank group
    RRD_S: int  # activate-to-activate, different bank group
    RRD_L: int  # activate-to-activate, same bank group
    FAW: int  # four-activate window
    REFI: int  # average refresh interval
    RFC: int  # refresh cycle time
    clock_ghz: float  # DRAM clock frequency (data rate / 2)

    def __post_init__(self) -> None:
        for field in (
            "CL", "WL", "CCD_S", "CCD_L", "RC", "RTP", "RP", "RCD", "RAS",
            "WR", "RTRS", "WTR_S", "WTR_L", "RRD_S", "RRD_L", "FAW",
            "REFI", "RFC",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.CCD_L < self.CCD_S:
            raise ValueError("CCD_L must be >= CCD_S")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")

    @property
    def cycle_ns(self) -> float:
        """Duration of one DRAM clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def with_extra_cl(self, extra: int) -> "TimingParams":
        """Return a copy with codec latency folded into CL and WL.

        Section 7.1: the up-to-0.39 ns codec latency is charged as one
        extra DRAM cycle on the column path; CAFO-k costs k cycles.
        """
        if extra < 0:
            raise ValueError("extra latency cannot be negative")
        if extra == 0:
            return self
        return replace(
            self,
            name=f"{self.name}+cl{extra}",
            CL=self.CL + extra,
            WL=self.WL + extra,
        )


# Table 2, DDR4-3200 row.  Note: the paper lists tWR = 4, which is far
# below the JEDEC 15 ns (~24 cycles); we keep the paper's value so the
# reproduction matches the authors' configuration (see DESIGN.md).
DDR4_3200 = TimingParams(
    name="DDR4-3200",
    CL=20, WL=16, CCD_S=4, CCD_L=8, RC=72, RTP=12, RP=20, RCD=20, RAS=52,
    WR=4, RTRS=2, WTR_S=4, WTR_L=12, RRD_S=9, RRD_L=11, FAW=48,
    REFI=12480, RFC=416, clock_ghz=1.6,
)

# Table 2, LPDDR3-1600 row.  No bank groups: short == long everywhere.
LPDDR3_1600 = TimingParams(
    name="LPDDR3-1600",
    CL=12, WL=6, CCD_S=4, CCD_L=4, RC=51, RTP=6, RP=16, RCD=15, RAS=34,
    WR=6, RTRS=1, WTR_S=6, WTR_L=6, RRD_S=8, RRD_L=8, FAW=40,
    REFI=3120, RFC=104, clock_ghz=0.8,
)

# DDR3-1600, for the Figure 1 cross-generation comparison and for
# studying what the bank-group constraints DDR4 added (Section 3.1)
# cost: DDR3 has no bank groups, so short == long.
DDR3_1600 = TimingParams(
    name="DDR3-1600",
    CL=11, WL=8, CCD_S=4, CCD_L=4, RC=39, RTP=6, RP=11, RCD=11, RAS=28,
    WR=12, RTRS=2, WTR_S=6, WTR_L=6, RRD_S=5, RRD_L=5, FAW=24,
    REFI=6240, RFC=208, clock_ghz=0.8,
)

"""Deterministic address-to-data models for the benchmark suite.

The IO energy MiL saves depends entirely on the *values* moving over the
bus, so each synthetic benchmark carries a data model that reproduces
the value statistics of its real counterpart: integer codes full of
zero bytes (GUPS tables, SCALPARC attribute ids), IEEE-754 doubles with
correlated exponent bytes (CG/MM/SWIM/OCEAN), ASCII text
(String Match), and so on.

Data is generated *by address*: reading the same line twice always
yields the same bytes, and a line's content never depends on trace
order.  That determinism comes from a splitmix64 hash of
``(model seed, line address, word index)`` rather than from a stateful
RNG.

Each 64-byte line is eight 64-bit words.  A *whole line* is drawn from
one of the following categories (mixture weights are the model's
knobs), because real lines come from homogeneous arrays — an int-array
line is eight int words, a double-array line is eight doubles.  That
homogeneity is what aligns the zero/exponent bytes of adjacent words at
the same byte position, i.e. in the same bus beat (Figure 12), which is
precisely the spatial correlation MiLC and CAFO exploit:

``zero``    all-zero line (zero pages, padding, untouched allocations)
``int1``    eight values < 2^8   (flags, pixels: 7 zero bytes/word)
``int2``    eight values < 2^16  (counts, indices: 6 zero bytes/word)
``int4``    eight values < 2^32  (pointers/ids: 4 zero bytes/word)
``fp``      eight IEEE-754-shaped doubles: sign/exponent bytes shared
            across the line, random mantissa, often-zero trailing bytes
``text``    printable ASCII bytes
``repeat``  one byte value repeated through the line (memset patterns)
``random``  uniformly random bytes (hashed/encrypted data)
"""

from __future__ import annotations

import numpy as np

__all__ = ["DataModel", "WORD_CATEGORIES", "biased_mix", "splitmix64"]

WORD_CATEGORIES = (
    "zero", "int1", "int2", "int4", "fp", "text", "repeat", "random",
)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 mixing function over uint64."""
    x = np.asarray(x, dtype=np.uint64)
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def biased_mix(mix: dict[str, float], zero_bias: float) -> dict[str, float]:
    """Shift a category mixture's zero density by ``zero_bias`` in [-1, 1].

    ``+b`` linearly interpolates the mixture toward the all-``zero``
    line distribution (``b=1`` makes every line zero); ``-b``
    interpolates the ``zero`` weight away, redistributing it over the
    other categories in proportion to their existing weights (``b=-1``
    removes zero lines entirely).  ``0`` returns the mix unchanged.
    This is the scenario engine's data-content knob: the same address
    streams replayed across a zero-density sweep isolate how much of a
    sparse code's win is the data, not the traffic.
    """
    if not -1.0 <= zero_bias <= 1.0:
        raise ValueError("zero_bias must be in [-1, 1]")
    weights = {c: float(mix.get(c, 0.0)) for c in WORD_CATEGORIES}
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("mixture weights must sum > 0")
    weights = {c: w / total for c, w in weights.items()}
    if zero_bias == 0.0:
        out = weights
    elif zero_bias > 0:
        out = {c: w * (1.0 - zero_bias) for c, w in weights.items()}
        out["zero"] += zero_bias
    else:
        freed = weights["zero"] * -zero_bias
        rest = 1.0 - weights["zero"]
        out = dict(weights)
        out["zero"] -= freed
        if rest > 0:
            for c in WORD_CATEGORIES:
                if c != "zero":
                    out[c] += freed * weights[c] / rest
        else:
            # An all-zero mix has nothing to redistribute to: fall back
            # to uniformly random content for the freed share.
            out["random"] = out.get("random", 0.0) + freed
    return {c: w for c, w in out.items() if w > 0.0}


class DataModel:
    """Mixture-of-categories line payload generator.

    Parameters
    ----------
    mix:
        Mapping from category name to weight; normalised internally.
    seed:
        Distinguishes models with identical mixes (per benchmark).
    fp_trailing_zero_prob:
        Probability that an ``fp`` word's two lowest mantissa bytes are
        zero ("round" doubles are common in initialised arrays).
    """

    def __init__(
        self,
        mix: dict[str, float],
        seed: int = 0,
        fp_trailing_zero_prob: float = 0.55,
    ):
        unknown = set(mix) - set(WORD_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories: {sorted(unknown)}")
        weights = np.array(
            [float(mix.get(c, 0.0)) for c in WORD_CATEGORIES], dtype=np.float64
        )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("mixture weights must be non-negative, sum > 0")
        self.mix = {c: w for c, w in zip(WORD_CATEGORIES, weights / weights.sum())}
        self.seed = seed
        self.fp_trailing_zero_prob = fp_trailing_zero_prob
        self._cdf = np.cumsum(weights / weights.sum())

    # ------------------------------------------------------------------
    def _hash(self, addresses: np.ndarray, stream: int) -> np.ndarray:
        base = addresses.astype(np.uint64) * np.uint64(2654435761)
        salt = np.uint64(self.seed * 0x9E3779B9 + stream * 0x85EBCA6B)
        return splitmix64(base ^ salt)

    def lines_for(self, addresses: np.ndarray) -> np.ndarray:
        """Payloads for ``addresses`` as ``(n, 64)`` uint8 (little-endian).

        ``addresses`` are byte addresses; only the line number matters.
        """
        addresses = np.atleast_1d(np.asarray(addresses, dtype=np.int64))
        lines = (addresses // 64).astype(np.uint64)
        n = lines.shape[0]

        # Per-line category selection: a line is one slice of one array.
        word_ids = lines[:, None] * np.uint64(8) + np.arange(8, dtype=np.uint64)
        h_cat = self._hash(lines, stream=1)
        u = (h_cat >> np.uint64(11)).astype(np.float64) / float(1 << 53)
        category = np.searchsorted(self._cdf, u, side="right")
        category = np.minimum(category, len(WORD_CATEGORIES) - 1)
        category = np.broadcast_to(category[:, None], (n, 8)).copy()

        # Raw random material, 8 bytes per word.
        h_val = self._hash(word_ids.ravel(), stream=2).reshape(n, 8)
        raw = h_val.copy().view(np.uint64)
        raw_bytes = raw[..., None].view(np.uint8).reshape(n, 8, 8)

        out = np.zeros((n, 8, 8), dtype=np.uint8)

        zero = category == 0
        int1 = category == 1
        int2 = category == 2
        int4 = category == 3
        fp = category == 4
        text = category == 5
        repeat = category == 6
        rand = category == 7

        # Integers: little-endian, so low bytes carry the value.
        out[int1, 0] = raw_bytes[int1, 0]
        for k in range(2):
            out[int2, k] = raw_bytes[int2, k]
        for k in range(4):
            out[int4, k] = raw_bytes[int4, k]

        # Text: printable ASCII 0x20..0x7E.
        out[text] = 0x20 + (raw_bytes[text] % 95)

        # Repeat: one byte value smeared across the whole line (memset);
        # take it from the line hash so all eight words agree.
        rep_byte = (self._hash(lines, stream=5) % np.uint64(256)).astype(np.uint8)
        rep_rows, rep_cols = np.nonzero(repeat)
        out[rep_rows, rep_cols] = rep_byte[rep_rows, None]

        # Random: raw bytes untouched.
        out[rand] = raw_bytes[rand]

        # FP: bytes 7..6 are sign/exponent, shared per line so that
        # words in a line look like elements of one array.
        h_line = self._hash(lines, stream=3)
        exp_hi = (0x3F + (h_line % np.uint64(2))).astype(np.uint8)  # 0x3F/0x40
        exp_lo = ((h_line >> np.uint64(8)) % np.uint64(256)).astype(np.uint8)
        fp_rows, fp_cols = np.nonzero(fp)
        out[fp_rows, fp_cols, 7] = exp_hi[fp_rows]
        out[fp_rows, fp_cols, 6] = exp_lo[fp_rows]
        for k in range(2, 6):
            out[fp_rows, fp_cols, k] = raw_bytes[fp_rows, fp_cols, k]
        # Trailing mantissa bytes often zero ("round" values).
        round_val = (h_val % np.uint64(1000)).astype(np.float64) / 1000.0
        keep = round_val[fp_rows, fp_cols] >= self.fp_trailing_zero_prob
        for k in range(2):
            out[fp_rows, fp_cols, k] = np.where(
                keep, raw_bytes[fp_rows, fp_cols, k], 0
            )

        assert zero.dtype == bool  # zero words stay all-zero by construction
        return out.reshape(n, 64)

    def expected_category_shares(self) -> dict[str, float]:
        """The normalised mixture (for tests and documentation)."""
        return dict(self.mix)

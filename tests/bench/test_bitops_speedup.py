"""The landed bitops win: byte-level popcount vs unpack-to-bits.

Correctness is asserted unconditionally against the unpackbits
reference; the >= 2x speedup claim is only asserted where the vectorized
popcount instruction (``np.bitwise_count``, numpy >= 2.0) exists — the
byte-table fallback is faster too, but not by a guaranteed margin.
"""

import numpy as np
import pytest

from repro.bench.corpus import lines
from repro.bench.timing import measure
from repro.coding.bitops import (
    HAVE_NATIVE_POPCOUNT,
    int_popcount,
    popcount_bytes,
    toggle_count_bytes,
    zeros_in_bytes,
)


def _reference_zeros(data):
    bits = np.unpackbits(data, axis=-1)
    return bits.shape[-1] - bits.sum(axis=-1, dtype=np.int64)


class TestCorrectness:
    def test_popcount_matches_unpackbits_on_corpus(self):
        data = lines(512)
        expected = np.unpackbits(data, axis=-1).sum(axis=-1, dtype=np.int64)
        assert np.array_equal(popcount_bytes(data), expected)

    def test_zeros_matches_reference_on_corpus(self):
        data = lines(512)
        assert np.array_equal(zeros_in_bytes(data), _reference_zeros(data))

    def test_all_byte_values(self):
        every = np.arange(256, dtype=np.uint8)
        expected = np.array([bin(v).count("1") for v in range(256)])
        assert np.array_equal(popcount_bytes(every, axis=0), expected.sum())
        per_byte = popcount_bytes(every[:, None])
        assert np.array_equal(per_byte, expected)

    def test_toggle_count(self):
        before = np.array([0x00, 0xFF, 0xAA], dtype=np.uint8)
        after = np.array([0xFF, 0xFF, 0x55], dtype=np.uint8)
        assert toggle_count_bytes(before, after) == 16  # 8 + 0 + 8

    def test_axis_argument(self):
        data = lines(64)
        total = popcount_bytes(data, axis=None).sum()
        assert popcount_bytes(data.ravel(), axis=0) == total

    def test_int_popcount(self):
        assert int_popcount(0) == 0
        assert int_popcount(0xFF) == 8
        assert int_popcount((1 << 200) | 1) == 2
        with pytest.raises(ValueError):
            int_popcount(-1)


@pytest.mark.skipif(
    not HAVE_NATIVE_POPCOUNT,
    reason="np.bitwise_count unavailable; table fallback is faster but "
           "its margin is not guaranteed",
)
class TestSpeedup:
    def test_at_least_2x_faster_than_unpackbits(self):
        data = lines(2048)
        # Same interleaved best-of protocol as the telemetry overhead
        # guard: take the best ratio over a few attempts so one noisy
        # sample on a loaded CI machine cannot fail the build.
        best = 0.0
        for _ in range(3):
            fast = measure(lambda: zeros_in_bytes(data),
                           repeats=5, warmup=1, inner_ops=2048)
            slow = measure(lambda: _reference_zeros(data),
                           repeats=5, warmup=1, inner_ops=2048)
            best = max(best, slow.min_ns / fast.min_ns)
            if best >= 2.0:
                break
        assert best >= 2.0, (
            f"byte-level popcount only {best:.2f}x faster than the "
            "unpackbits reference"
        )

"""RunSpec: normalisation, hashing, and cross-process key stability."""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import RunSpec, cache_path
from repro.campaign.cache import cache_key
from repro.system.machine import NIAGARA_SERVER

SRC = Path(__file__).resolve().parents[2] / "src"


def test_spec_is_frozen_and_hashable():
    spec = RunSpec(benchmark="MM")
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.benchmark = "CG"
    assert {spec: 1}[RunSpec(benchmark="MM")] == 1


def test_benchmark_and_overrides_normalised():
    a = RunSpec(benchmark="mm",
                mil_overrides={"epoch_len": 64, "decision": "rdyx"})
    b = RunSpec(benchmark="MM",
                mil_overrides=(("decision", "rdyx"), ("epoch_len", 64)))
    assert a == b
    assert hash(a) == hash(b)
    assert a.canonical_json() == b.canonical_json()


def test_spec_validates_inputs():
    with pytest.raises(KeyError):
        RunSpec(benchmark="MM", system="no-such-machine")
    with pytest.raises(ValueError):
        RunSpec(benchmark="MM", accesses_per_core=0)
    with pytest.raises(ValueError):
        RunSpec(benchmark="MM", lookahead=-1)
    with pytest.raises(TypeError):
        RunSpec(benchmark="MM", system_overrides=(("timing", object()),))


def test_spec_validates_benchmark_against_registry():
    # Typos must die at spec-build time, naming the known suite, not
    # deep inside a worker process at trace-build time.
    with pytest.raises(KeyError, match="GUPS"):
        RunSpec(benchmark="GUSP")
    # Canonical mix names are first-class benchmarks...
    spec = RunSpec(benchmark="mix@poisson:40@z:0@cg:0.5+gups:0.5")
    assert spec.benchmark.startswith("MIX@")
    # ...but malformed ones are rejected, not deferred.
    with pytest.raises(ValueError):
        RunSpec(benchmark="MIX@NOT-A-MIX")


def test_dotted_system_overrides_resolve_nested_fields():
    spec = RunSpec(benchmark="MM",
                   system_overrides={"geometry.ranks": 4, "channels": 1})
    resolved = spec.resolve_system()
    assert resolved.geometry.ranks == 4
    assert resolved.channels == 1
    # Untouched nested fields survive the replace.
    assert resolved.geometry.banks_per_group == \
        NIAGARA_SERVER.geometry.banks_per_group


def test_bad_system_override_rejected_at_build_time():
    with pytest.raises(ValueError, match="override"):
        RunSpec(benchmark="MM", system_overrides={"no_such_field": 1})


def test_of_decomposes_replaced_system_config():
    variant = dataclasses.replace(
        NIAGARA_SERVER,
        name="ddr4-server[closed]",
        page_policy="closed",
    )
    spec = RunSpec.of("mm", variant, "mil")
    assert spec.system == "ddr4-server"
    assert ("page_policy", "closed") in spec.system_overrides
    assert ("name", "ddr4-server[closed]") in spec.system_overrides
    resolved = spec.resolve_system()
    assert resolved == variant

    plain = RunSpec.of("mm", NIAGARA_SERVER, "mil")
    assert plain.system == "ddr4-server"
    assert plain.system_overrides == ()


def test_slug_marks_overrides():
    assert RunSpec(benchmark="MM").slug == "MM-ddr4-server-mil-xauto-n5000-s0"
    spec = RunSpec(benchmark="MM", system_overrides=(("page_policy",
                                                      "closed"),))
    assert spec.slug.endswith("-o1m0")


def test_cache_key_stable_across_processes(tmp_path):
    """The content address must not depend on interpreter hash salting."""
    spec = RunSpec(benchmark="GUPS", policy="dbi", accesses_per_core=123,
                   mil_overrides={"epoch_len": 32})
    here = cache_key(spec, fingerprint="feedface")
    script = (
        "from repro.campaign.cache import cache_key\n"
        "from repro.campaign import RunSpec\n"
        "spec = RunSpec(benchmark='gups', policy='dbi',"
        " accesses_per_core=123, mil_overrides=(('epoch_len', 32),))\n"
        "print(cache_key(spec, fingerprint='feedface'))\n"
    )
    for seed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=str(SRC))
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == here


def test_cache_path_honours_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    spec = RunSpec(benchmark="MM")
    path = cache_path(spec, fingerprint="00")
    assert path.parent == tmp_path / "alt"
    assert path.name.startswith(spec.slug)
    assert not path.parent.exists()  # nothing created until a write

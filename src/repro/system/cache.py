"""Set-associative cache model (functional, LRU, writeback).

The cache hierarchy's job in this reproduction is to turn each
benchmark's CPU-level access stream into the *memory* traffic the DRAM
simulator sees: demand misses, dirty writebacks, and prefetches.  Hit
timing is folded into the per-request "gap" cycles computed by
:mod:`repro.system.hierarchy`, so this model is functional (no
cycle-accurate cache pipeline) — exactly the fidelity the paper's
results depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cache", "AccessResult"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    writeback: int | None  # line address of an evicted dirty victim
    line: int  # line address of the access


class Cache:
    """An LRU, write-allocate, writeback set-associative cache."""

    def __init__(
        self, size_bytes: int, ways: int, line_bytes: int = 64, name: str = ""
    ):
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must divide evenly into sets")
        self.name = name or f"{size_bytes // 1024}KB/{ways}way"
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self._set_mask = self.num_sets - 1
        # Per set: insertion-ordered dict of line address -> dirty flag.
        # Oldest entry is the LRU victim.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]

        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_for(self, line: int) -> dict[int, bool]:
        return self._sets[(line // self.line_bytes) & self._set_mask]

    def _line_of(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Look up ``address``; allocate on miss; return what happened."""
        line = self._line_of(address)
        ways = self._set_for(line)
        if line in ways:
            self.hits += 1
            dirty = ways.pop(line) or is_write
            ways[line] = dirty  # reinsert as MRU
            return AccessResult(hit=True, writeback=None, line=line)

        self.misses += 1
        writeback = None
        if len(ways) >= self.ways:
            victim, victim_dirty = next(iter(ways.items()))
            del ways[victim]
            if victim_dirty:
                self.writebacks += 1
                writeback = victim
        ways[line] = is_write
        return AccessResult(hit=False, writeback=writeback, line=line)

    def contains(self, address: int) -> bool:
        """Presence probe with no LRU side effect."""
        line = self._line_of(address)
        return line in self._set_for(line)

    def touch(self, address: int) -> None:
        """Refresh LRU position without changing dirty state (if present)."""
        line = self._line_of(address)
        ways = self._set_for(line)
        if line in ways:
            ways[line] = ways.pop(line)

    def fill(self, address: int, dirty: bool = False) -> int | None:
        """Install a line (e.g. a prefetch); returns a dirty victim or None."""
        line = self._line_of(address)
        ways = self._set_for(line)
        if line in ways:
            ways[line] = ways.pop(line) or dirty
            return None
        writeback = None
        if len(ways) >= self.ways:
            victim, victim_dirty = next(iter(ways.items()))
            del ways[victim]
            if victim_dirty:
                self.writebacks += 1
                writeback = victim
        ways[line] = dirty
        return writeback

    def invalidate(self, address: int) -> bool:
        """Drop a line; returns True if it was present and dirty."""
        line = self._line_of(address)
        ways = self._set_for(line)
        if line in ways:
            return ways.pop(line)
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

"""Benchmark target: suite characterisation (DESIGN.md substitution)."""

from repro.experiments import ALL_EXPERIMENTS


def test_validation(benchmark, show):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["validation"], rounds=1, iterations=1
    )
    show(result)
    assert result.rows
    # The suite must span a wide intensity range (Figure 5's premise).
    assert result.observations["util_spread"] > 0.25

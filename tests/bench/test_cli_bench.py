"""End-to-end ``repro bench`` CLI behaviour.

Runs use a single cheap benchmark (``campaign.cache_key``) with
``--repeats 1 --warmup 0`` so the whole file stays fast; protocol
correctness is covered by the unit tests.
"""

import json

import pytest

from repro.bench import load_report
from repro.cli import main

FAST = ["--repeats", "1", "--warmup", "0", "-k", "campaign.cache_key"]


def _bench(*argv):
    return main(["bench", *argv])


class TestListAndSelect:
    def test_list_names_benchmarks(self, capsys):
        assert _bench("--list") == 0
        out = capsys.readouterr().out
        assert "coding.bitops.popcount" in out
        assert "dram.channel.tick" in out

    def test_list_smoke_is_a_subset(self, capsys):
        _bench("--list")
        full = capsys.readouterr().out.splitlines()
        _bench("--list", "--smoke")
        smoke = capsys.readouterr().out.splitlines()
        assert 0 < len(smoke) < len(full)

    def test_unknown_pattern_exits_with_known_names(self):
        with pytest.raises(SystemExit) as err:
            _bench("-k", "no.such.benchmark")
        assert "no benchmarks match" in str(err.value)


class TestRun:
    def test_writes_schema_valid_report(self, tmp_path):
        out = tmp_path / "report.json"
        assert _bench(*FAST, "--out", str(out)) == 0
        doc = load_report(out)  # raises if schema-invalid
        assert [e["name"] for e in doc["results"]] == ["campaign.cache_key"]
        assert doc["protocol"]["repeats"] == 1

    def test_default_out_is_bench_timestamp_json(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert _bench(*FAST) == 0
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        load_report(files[0])


class TestCompareGate:
    def _baseline_from(self, report_path, tmp_path, scale):
        doc = json.loads(report_path.read_text())
        for entry in doc["results"]:
            entry["ns_per_op"] = {
                stat: value * scale
                for stat, value in entry["ns_per_op"].items()
            }
        path = tmp_path / f"baseline_{scale}.json"
        path.write_text(json.dumps(doc))
        return path

    def test_injected_2x_slowdown_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "now.json"
        assert _bench(*FAST, "--out", str(out)) == 0
        # A baseline claiming everything used to run twice as fast makes
        # the current run a 2x regression, far beyond the 20% gate.
        fast_past = self._baseline_from(out, tmp_path, scale=0.5)
        code = _bench(*FAST, "--out", str(tmp_path / "again.json"),
                      "--compare", str(fast_past), "--max-regression", "20")
        assert code == 1
        text = capsys.readouterr().out
        assert "REGRESSED" in text and "campaign.cache_key" in text

    def test_comparable_baseline_passes(self, tmp_path):
        out = tmp_path / "now.json"
        assert _bench(*FAST, "--out", str(out)) == 0
        # A baseline 1000x slower can only show improvement.
        slow_past = self._baseline_from(out, tmp_path, scale=1000.0)
        code = _bench(*FAST, "--out", str(tmp_path / "again.json"),
                      "--compare", str(slow_past))
        assert code == 0

    def test_missing_baseline_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            _bench(*FAST, "--out", str(tmp_path / "r.json"),
                   "--compare", str(tmp_path / "missing.json"))


class TestCommittedBaseline:
    def test_repo_baseline_is_schema_valid_and_covers_smoke(self):
        from pathlib import Path

        import repro
        from repro.bench import select

        root = Path(repro.__file__).resolve().parents[2]
        doc = load_report(root / "benchmarks" / "baseline.json")
        names = {e["name"] for e in doc["results"]}
        smoke = {d.name for d in select(smoke_only=True)}
        assert smoke <= names


class TestProfile:
    def test_cprofile_writes_stats(self, tmp_path, capsys):
        code = _bench("-k", "campaign.cache_key", "--profile", "cprofile",
                      "--profile-dir", str(tmp_path))
        assert code == 0
        assert (tmp_path / "campaign.cache_key.prof").exists()
        text = (tmp_path / "campaign.cache_key.txt").read_text()
        assert "cumulative" in text

    def test_missing_pyinstrument_reports_cleanly(self, tmp_path):
        try:
            import pyinstrument  # noqa: F401
            pytest.skip("pyinstrument installed; error path not reachable")
        except ImportError:
            pass
        with pytest.raises(SystemExit) as err:
            _bench("-k", "campaign.cache_key", "--profile", "pyinstrument",
                   "--profile-dir", str(tmp_path))
        assert "pyinstrument is not installed" in str(err.value)

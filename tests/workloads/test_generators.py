"""Tests for the address-stream primitives."""

import numpy as np

from repro.workloads.generators import (
    gather_stream,
    interleave,
    random_access,
    sequential_stream,
    strided_sweep,
    tile_reuse,
    update_pairs,
)


def rng():
    return np.random.default_rng(22)


class TestSequential:
    def test_monotone_with_wrap(self):
        addr, _ = sequential_stream(rng(), 100, base=1000,
                                    span_bytes=512, start_offset=0)
        assert addr[0] == 1000
        deltas = np.diff(addr)
        assert ((deltas == 8) | (deltas == 8 - 512)).all()

    def test_stays_in_span(self):
        addr, _ = sequential_stream(rng(), 500, base=4096, span_bytes=1024)
        assert (addr >= 4096).all() and (addr < 4096 + 1024).all()

    def test_write_fraction(self):
        _, wr = sequential_stream(rng(), 4000, 0, 1 << 20,
                                  write_fraction=0.25)
        assert 0.2 < wr.mean() < 0.3

    def test_empty(self):
        addr, wr = sequential_stream(rng(), 0, 0, 1024)
        assert len(addr) == 0 and len(wr) == 0


class TestRandomAccess:
    def test_alignment_and_span(self):
        addr, _ = random_access(rng(), 1000, base=64, span_bytes=8192)
        assert (addr % 8 == 0).all()
        assert (addr >= 64).all() and (addr < 64 + 8192).all()

    def test_spreads_widely(self):
        addr, _ = random_access(rng(), 2000, 0, 1 << 24)
        assert len(np.unique(addr // 4096)) > 100


class TestStrided:
    def test_constant_stride(self):
        addr, _ = strided_sweep(rng(), 50, 0, 1 << 20, stride_bytes=256)
        assert (np.diff(addr) == 256).all()

    def test_small_stride_is_element_step(self):
        addr, _ = strided_sweep(rng(), 10, 0, 1 << 20, stride_bytes=8)
        assert (np.diff(addr) == 8).all()


class TestGather:
    def test_mixes_two_regions(self):
        addr, _ = gather_stream(
            rng(), 1000, seq_base=0, seq_span=1 << 20,
            gather_base=1 << 30, gather_span=1 << 20, gather_ratio=0.5,
        )
        seq = (addr < (1 << 20)).sum()
        gathered = (addr >= (1 << 30)).sum()
        assert seq + gathered == 1000
        assert 350 < gathered < 650


class TestTileReuse:
    def test_tile_locality(self):
        addr, _ = tile_reuse(rng(), 2000, 0, 1 << 22,
                             tile_bytes=4096, reuse_factor=4)
        tiles = addr // 4096
        # Consecutive accesses stay in one tile for long stretches.
        changes = (np.diff(tiles) != 0).sum()
        assert changes < 20

    def test_exact_count(self):
        addr, wr = tile_reuse(rng(), 777, 0, 1 << 22, 4096, 2)
        assert len(addr) == len(wr) == 777


class TestUpdatePairs:
    def test_read_write_alternation(self):
        addr, wr = update_pairs(rng(), 100, 0, 1 << 20)
        assert (addr[0::2] == addr[1::2]).all()  # same slot
        assert not wr[0::2].any()  # reads first
        assert wr[1::2].all()  # then writes


class TestInterleave:
    def test_preserves_all_accesses(self):
        a = (np.arange(10, dtype=np.int64), np.zeros(10, dtype=bool))
        b = (np.arange(100, 105, dtype=np.int64), np.ones(5, dtype=bool))
        addr, wr = interleave(rng(), [a, b], chunk=3)
        assert len(addr) == 15
        assert sorted(addr.tolist()) == sorted(
            a[0].tolist() + b[0].tolist()
        )
        assert wr.sum() == 5

    def test_round_robin_order(self):
        a = (np.array([1, 2, 3, 4], dtype=np.int64), np.zeros(4, dtype=bool))
        b = (np.array([10, 20], dtype=np.int64), np.zeros(2, dtype=bool))
        addr, _ = interleave(rng(), [a, b], chunk=2)
        assert addr.tolist() == [1, 2, 10, 20, 3, 4]

    def test_empty_streams(self):
        addr, wr = interleave(rng(), [])
        assert len(addr) == 0

"""Burst-level coding pipeline: cache lines -> bus beats and zero counts.

The DRAM simulator moves 64-byte cache lines.  This module knows how
each coding scheme packs a line onto the DDR4 data pins (Figure 12 of
the paper), what burst length that implies, and how many 0s end up on
the wires — the quantity the pseudo-open-drain IO energy model charges
for (and, via transition signaling, the LPDDR3 flip count).

Burst formats (Section 4.4):

========  ============  =====================================
scheme    burst length  packing
========  ============  =====================================
dbi       8             64 data pins + 8 DBI pins, 8 beats
milc      10            8 x (64 -> 80) blocks over 64 pins
cafo2/4   10            8 x (64 -> 80) blocks over 64 pins
3lwc      16            64 x (8 -> 17) codewords over the 72
                        data+DBI pins, 64 pad bits sent as 1s
========  ============  =====================================

``precompute_line_zeros`` is the hot path: it evaluates every scheme
over an entire trace of lines with vectorised numpy so the simulator
only ever does table lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitops import zeros_in_bytes
from .cafo import CAFOCode
from .dbi import DBICode
from .lwc import ThreeLWC
from .lwc_family import KLimitedWeightCode
from .milc import MiLCCode

__all__ = [
    "LINE_BYTES",
    "BurstFormat",
    "BURST_FORMATS",
    "beat_layout",
    "scheme_for",
    "line_zeros",
    "precompute_line_zeros",
    "raw_line_zeros",
]

LINE_BYTES = 64

_DBI = DBICode()
_MILC = MiLCCode()
_LWC = ThreeLWC()
_CAFO2 = CAFOCode(iterations=2)
_CAFO4 = CAFOCode(iterations=4)
# The Section 7.5.3 intermediate design point: an (8, 12) 3-LWC fills
# the gap between MiLC (BL10) and the (8, 17) 3-LWC (BL16).
_LWC12 = KLimitedWeightCode(8, 12, 3)


@dataclass(frozen=True)
class BurstFormat:
    """How one coding scheme occupies the data bus for a 64-byte line.

    Attributes
    ----------
    scheme:
        Short scheme name.
    burst_length:
        Beats per transaction (two beats per DRAM clock).
    extra_latency:
        Codec cycles added to tCL/tWL while this scheme is active.
    """

    scheme: str
    burst_length: int
    extra_latency: int

    @property
    def bus_cycles(self) -> int:
        """DRAM clock cycles of data-bus occupancy (DDR: 2 beats/cycle)."""
        return (self.burst_length + 1) // 2


BURST_FORMATS: dict[str, BurstFormat] = {
    # Uncoded transfer: the only option for x4 devices, which have no
    # DBI pins (Section 2.1.1) - and MiL's fallback tier.
    "raw": BurstFormat("raw", burst_length=8, extra_latency=0),
    "dbi": BurstFormat("dbi", burst_length=8, extra_latency=0),
    "milc": BurstFormat("milc", burst_length=10, extra_latency=1),
    "3lwc": BurstFormat("3lwc", burst_length=16, extra_latency=1),
    "cafo2": BurstFormat("cafo2", burst_length=10, extra_latency=2),
    "cafo4": BurstFormat("cafo4", burst_length=10, extra_latency=4),
    # Intermediate-length code (Section 7.5.3's suggestion): 64 x
    # (8 -> 12) codewords fill exactly 12 beats over the 64 data pins.
    "lwc12": BurstFormat("lwc12", burst_length=12, extra_latency=1),
    # Hypothetical intermediate lengths for the Figure 20 fixed-burst
    # sensitivity sweep (the paper evaluates BL 10/12/14/16 regardless
    # of any specific code occupying them).
    "bl12": BurstFormat("bl12", burst_length=12, extra_latency=1),
    "bl14": BurstFormat("bl14", burst_length=14, extra_latency=1),
}

_SCHEMES = {
    "dbi": _DBI,
    "milc": _MILC,
    "3lwc": _LWC,
    "lwc12": _LWC12,
    "cafo2": _CAFO2,
    "cafo4": _CAFO4,
}


def scheme_for(name: str):
    """Return the codec object registered under ``name``."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown coding scheme {name!r}; known: {sorted(_SCHEMES)}"
        ) from None


def raw_line_zeros(lines: np.ndarray) -> np.ndarray:
    """Zeros in the *uncoded* 512-bit lines (Figure 7's normalisation).

    Counted straight on the byte values (popcount), never via an 8x
    bit-array expansion — this runs once per line per campaign run.
    """
    lines = _check_lines(lines)
    return zeros_in_bytes(lines)


def _check_lines(lines: np.ndarray) -> np.ndarray:
    lines = np.asarray(lines, dtype=np.uint8)
    if lines.ndim == 1:
        lines = lines[None, :]
    if lines.shape[-1] != LINE_BYTES:
        raise ValueError(f"expected {LINE_BYTES}-byte lines, got {lines.shape[-1]}")
    return lines


def beat_layout(lines: np.ndarray) -> np.ndarray:
    """Rearrange lines into bus-beat order (Figure 12(a)).

    A x8 rank ships one byte per chip per beat and chip ``j`` stores
    byte ``j`` of every 64-bit word, so beat ``p`` carries byte ``p`` of
    words 0..7 — the same byte position across eight consecutive words.
    MiLC and CAFO operate on those 64-bit beats as 8x8 squares, which is
    exactly where the spatial correlation they exploit lives (adjacent
    doubles share exponent bytes, adjacent ints share zero bytes).
    """
    lines = _check_lines(lines)
    n = lines.shape[0]
    return (
        lines.reshape(n, 8, 8).transpose(0, 2, 1).reshape(n, LINE_BYTES)
    )


def line_zeros(scheme: str, lines: np.ndarray) -> np.ndarray:
    """Zeros put on the bus per line when transmitted under ``scheme``.

    Accepts ``(n, 64)`` uint8 lines (or a single line) and returns an
    ``(n,)`` int64 count that already includes flag/mode/pad bits.
    """
    lines = _check_lines(lines)
    if scheme == "dbi":
        return _DBI.count_zeros_bytes(lines)
    if scheme == "3lwc":
        # 64 pad bits per line are driven to 1 and contribute no zeros.
        return _LWC.count_zeros_bytes(lines)
    if scheme == "milc":
        return _MILC.count_zeros_bytes(beat_layout(lines))
    if scheme == "cafo2":
        return _CAFO2.count_zeros_bytes(beat_layout(lines))
    if scheme == "cafo4":
        return _CAFO4.count_zeros_bytes(beat_layout(lines))
    if scheme == "lwc12":
        return _LWC12.count_zeros_bytes(lines)
    if scheme == "raw":
        return raw_line_zeros(lines)
    raise KeyError(f"unknown coding scheme {scheme!r}")


def precompute_line_zeros(
    lines: np.ndarray, schemes: tuple[str, ...] = ("dbi", "milc", "3lwc")
) -> dict[str, np.ndarray]:
    """Evaluate several schemes over a whole trace of lines at once.

    The simulator calls this once per workload and then charges IO
    energy with O(1) lookups per transferred burst.
    """
    lines = _check_lines(lines)
    return {scheme: line_zeros(scheme, lines) for scheme in schemes}

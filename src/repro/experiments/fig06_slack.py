"""Figure 6: slack between successive data-bus transactions.

Slack is how far a burst's *end* can be postponed without delaying the
next burst's start — gaps caused by bus-turnaround constraints (tWTR,
tRTRS) contribute nothing because extending the first burst would push
the turnaround bubble along with it.  The paper finds that in many (but
not all) cases the turnaround does not limit long sparse codes.
"""

from __future__ import annotations

from ..analysis.metrics import GAP_BUCKETS, bucket_label
from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy="dbi",
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    labels = [bucket_label(b) for b in GAP_BUCKETS]
    rows = []
    exploitable = []
    for bench in BENCHMARK_ORDER:
        summary = runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                               policy="dbi",
                               accesses_per_core=accesses_per_core)]
        total = sum(summary.slack.values()) or 1
        fracs = [summary.slack.get(lbl, 0) / total for lbl in labels]
        rows.append([bench] + fracs)
        # Slack >= 4 cycles fits at least the BL10 -> BL16 extension.
        exploitable.append(sum(fracs[2:]))

    result = ExperimentResult(
        experiment="fig06",
        title=(
            "Figure 6: slack distribution between successive DDR4 "
            "transactions (fraction per slack bucket)"
        ),
        headers=["benchmark"] + labels,
        rows=rows,
        paper_claim=(
            "in many, but not all, cases bus turnaround does not limit "
            "the application of longer sparse codes"
        ),
    )
    result.observations["mean_slack_ge_8"] = (
        sum(exploitable) / len(exploitable)
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Read and write transaction queues (Table 2: 64 entries each).

The write queue also implements *write coalescing*: a second writeback
to a line already queued overwrites the stale data in place, and a read
that hits the write queue is forwarded without touching DRAM — both
standard memory-controller behaviours that keep the write-drain
machinery honest.
"""

from __future__ import annotations

from .request import MemoryRequest

__all__ = ["TransactionQueue", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Raised when a request is pushed into a full queue."""


class TransactionQueue:
    """Bounded FIFO-ordered queue with address lookup."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: list[MemoryRequest] = []
        self._by_address: dict[int, MemoryRequest] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1] (drives the drain watermarks)."""
        return len(self._entries) / self.capacity

    def find(self, address: int) -> MemoryRequest | None:
        """Request queued for ``address``, if any."""
        return self._by_address.get(address)

    def push(self, request: MemoryRequest, coalesce: bool = False) -> bool:
        """Enqueue ``request``.

        With ``coalesce`` (write queues), a request to an address already
        queued replaces the stale entry's payload instead of occupying a
        second slot; returns ``False`` in that case.
        """
        existing = self._by_address.get(request.address)
        if existing is not None and coalesce:
            existing.line_id = request.line_id
            existing.core = request.core
            return False
        if self.full:
            raise QueueFullError(
                f"queue of capacity {self.capacity} overflowed"
            )
        self._entries.append(request)
        # Last writer wins for lookup purposes.
        self._by_address[request.address] = request
        return True

    def remove(self, request: MemoryRequest) -> None:
        """Remove a scheduled request."""
        self._entries.remove(request)
        if self._by_address.get(request.address) is request:
            del self._by_address[request.address]

    def oldest_first(self) -> list[MemoryRequest]:
        """Entries in arrival order (the FCFS axis of FR-FCFS).

        Pushes happen in non-decreasing arrival order in every caller
        (simulation time is monotonic), so insertion order *is* arrival
        order; a sort here would be pure overhead on the hot path.
        """
        return self._entries

"""Common interface for all coding schemes in the MiL framework.

A :class:`CodingScheme` maps fixed-size blocks of data bits to fixed-size
codewords.  The MiL framework (Section 4.3 of the paper) only admits
codes with a *deterministic* latency and codeword length, because the
memory controller must know, at scheduling time, exactly how many extra
data-bus cycles a coded burst will occupy.  That constraint is captured
here by ``data_bits``/``code_bits`` being class-level constants.

Two views of each code are provided:

* ``encode_blocks`` / ``decode_blocks`` — the real bit-level transform,
  used by round-trip tests and by anything that needs actual codewords.
* ``count_zeros`` — a (usually much faster) vectorised path that returns
  only the number of 0s each encoded block would put on the bus, which is
  all the energy model needs.  The default implementation derives it from
  ``encode_blocks``; subclasses override it with lookup tables.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .bitops import zeros_in_bits

__all__ = ["CodingScheme", "BlockShapeError"]


class BlockShapeError(ValueError):
    """Raised when input data is not shaped as whole coding blocks."""


class CodingScheme(ABC):
    """Abstract base for deterministic-latency block codes.

    Attributes
    ----------
    name:
        Short identifier used in experiment tables (``"dbi"``, ``"milc"``).
    data_bits:
        Number of data bits consumed per block.
    code_bits:
        Number of code bits produced per block.
    extra_latency_cycles:
        Codec latency in DRAM cycles added to tCL/tWL when this scheme is
        in use (Section 4.4: one cycle for DBI/MiLC/3-LWC; k for CAFO-k).
    """

    name: str = "abstract"
    data_bits: int = 0
    code_bits: int = 0
    extra_latency_cycles: int = 0

    # ------------------------------------------------------------------
    # Core transform
    # ------------------------------------------------------------------
    @abstractmethod
    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode blocks of shape ``(..., data_bits)`` to ``(..., code_bits)``."""

    @abstractmethod
    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        """Invert :meth:`encode_blocks`."""

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def _check_shape(self, bits: np.ndarray, expected: int, what: str) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape[-1] != expected:
            raise BlockShapeError(
                f"{self.name}: {what} trailing axis must be {expected} bits, "
                f"got {bits.shape[-1]}"
            )
        if bits.size and bits.max() > 1:
            raise BlockShapeError(f"{self.name}: {what} is not a 0/1 bit array")
        return bits

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Validate shape, then encode."""
        return self.encode_blocks(self._check_shape(data_bits, self.data_bits, "data"))

    def decode(self, code_bits: np.ndarray) -> np.ndarray:
        """Validate shape, then decode."""
        return self.decode_blocks(self._check_shape(code_bits, self.code_bits, "code"))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        """Number of 0s on the bus for each encoded block.

        Shape ``(..., data_bits)`` in, shape ``(...)`` out.  Subclasses
        with cheap closed forms (per-byte lookup tables) override this.
        """
        return zeros_in_bits(self.encode(data_bits))

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def expansion(self) -> float:
        """Bandwidth overhead factor (code bits per data bit)."""
        return self.code_bits / self.data_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name}: "
            f"({self.data_bits},{self.code_bits})>"
        )

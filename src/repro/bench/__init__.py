"""repro.bench — reproducible benchmarks with regression gating.

A declarative registry of named benchmarks over the repository's hot
paths, a fixed timing protocol (calibrated sample batching, warmup,
GC off, min/median/MAD over repeats), machine-readable ``BENCH_*.json``
reports, baseline comparison with a regression gate, and optional
per-benchmark profiling.  Driven by the ``repro bench`` CLI verb; the
full picture lives in ``docs/BENCHMARKS.md``.

Defining a benchmark::

    from repro.bench import benchmark

    @benchmark("coding.line_zeros.milc", params={"lines": 2048},
               smoke=True, inner_ops=2048)
    def _factory():
        data = build_inputs()          # setup: not timed
        return lambda: kernel(data)    # thunk: timed

Benchmarks register at import of :mod:`repro.bench.suite`;
:func:`collect` triggers that import exactly once.
"""

from .compare import Comparison, Delta, compare_reports, format_comparison
from .corpus import CORPUS_SEED, LINE_BYTES, corpus_digest, lines
from .profiling import PROFILE_BACKENDS, profile_benchmark
from .registry import (
    REGISTRY,
    BenchError,
    BenchmarkDef,
    benchmark,
    collect,
    get,
    select,
)
from .report import (
    SCHEMA,
    build_report,
    default_filename,
    environment,
    load_report,
    result_entry,
    validate_report,
    write_report,
)
from .timing import DEFAULT_REPEATS, DEFAULT_WARMUP, Measurement, measure

__all__ = [
    "BenchError",
    "BenchmarkDef",
    "CORPUS_SEED",
    "Comparison",
    "DEFAULT_REPEATS",
    "DEFAULT_WARMUP",
    "Delta",
    "LINE_BYTES",
    "Measurement",
    "PROFILE_BACKENDS",
    "REGISTRY",
    "SCHEMA",
    "benchmark",
    "build_report",
    "collect",
    "compare_reports",
    "corpus_digest",
    "default_filename",
    "environment",
    "format_comparison",
    "get",
    "lines",
    "load_report",
    "measure",
    "profile_benchmark",
    "result_entry",
    "select",
    "validate_report",
    "write_report",
]

"""Setuptools shim.

``pip install -e .`` uses PEP 660 editable wheels when a build backend
is declared, which requires the ``wheel`` package; on air-gapped
machines without it, pip falls back to the legacy ``setup.py develop``
path through this shim.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

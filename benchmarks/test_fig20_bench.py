"""Benchmark target: Figure 20 fixed burst length sweep.

Regenerates the paper's fig20 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig20_burst_length import run_experiment


def test_fig20(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

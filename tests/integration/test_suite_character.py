"""Integration: the synthetic suite reproduces Figure 5's character.

The whole reproduction argument rests on the workload suite spanning
the paper's intensity spectrum in the right order; this test pins that
property so a workload-generator change cannot silently break it.
"""

import numpy as np
import pytest

from repro.core import run
from repro.system import NIAGARA_SERVER
from repro.workloads import BENCHMARK_ORDER, MEMORY_INTENSIVE

SCALE = 2500


@pytest.fixture(scope="module")
def baseline_runs():
    return {
        bench: run(bench, NIAGARA_SERVER, "dbi", accesses_per_core=SCALE)
        for bench in BENCHMARK_ORDER
    }


class TestUtilizationSpectrum:
    def test_light_benchmarks_are_light(self, baseline_runs):
        for bench in ("MM", "STRMATCH"):
            assert baseline_runs[bench].bus_utilization < 0.25

    def test_intensive_benchmarks_are_intensive(self, baseline_runs):
        for bench in ("SWIM", "OCEAN", "CG", "GUPS"):
            assert baseline_runs[bench].bus_utilization > 0.30

    def test_extremes_ordered(self, baseline_runs):
        # The first and last of the paper's ordering must bracket the
        # suite (exact middle ordering is allowed to wobble).
        utils = [baseline_runs[b].bus_utilization for b in BENCHMARK_ORDER]
        assert baseline_runs["MM"].bus_utilization == pytest.approx(
            min(utils), abs=0.05
        )
        assert baseline_runs["GUPS"].bus_utilization >= max(utils) - 0.1

    def test_overall_spearman_with_paper_order(self, baseline_runs):
        # Rank correlation between our utilisations and the paper's
        # low-to-high presentation order.
        utils = np.array(
            [baseline_runs[b].bus_utilization for b in BENCHMARK_ORDER]
        )
        ranks = np.argsort(np.argsort(utils))
        expected = np.arange(len(BENCHMARK_ORDER))
        rho = np.corrcoef(ranks, expected)[0, 1]
        assert rho > 0.7


class TestPendingCharacter:
    def test_intensive_mostly_pending(self, baseline_runs):
        # Figure 5: the intensive benchmarks have requests pending a
        # majority of the time.
        for bench in ("CG", "GUPS", "SCALPARC"):
            pending = baseline_runs[bench].pending
            assert pending["no_pending"] < 0.5

    def test_light_mostly_idle(self, baseline_runs):
        for bench in ("MM", "STRMATCH"):
            pending = baseline_runs[bench].pending
            assert pending["no_pending"] > 0.5

    def test_timing_constraints_visible(self, baseline_runs):
        # For at least the random-access intensive benchmarks, idle-
        # while-pending must be a large slice: the paper's Section 3.1.
        for bench in ("CG", "GUPS"):
            pending = baseline_runs[bench].pending
            assert pending["idle_pending"] > 0.3


class TestDataCharacter:
    def test_compressibility_ordering(self, baseline_runs):
        # Figure 17: MM and GUPS compress far better than the FP codes.
        mil = {
            bench: run(bench, NIAGARA_SERVER, "mil", accesses_per_core=SCALE)
            for bench in ("MM", "SWIM", "GUPS")
        }
        ratio = {
            b: mil[b].total_zeros / max(1, baseline_runs[b].total_zeros)
            for b in mil
        }
        assert ratio["MM"] < ratio["SWIM"]
        assert ratio["GUPS"] < ratio["SWIM"]

"""Tests for the IO energy model."""

import numpy as np
import pytest

from repro.dram.channel import BusTransaction
from repro.energy import BUS_PINS, DDR4_ENERGY, LPDDR3_ENERGY, IOEnergyModel


def tx(request_id, scheme="dbi", cycles=4, write=False):
    return BusTransaction(
        start=0, end=cycles, issue_cycle=0, is_write=write, rank=0,
        bank_group=0, bank=0, scheme=scheme, request_id=request_id,
    )


class TestTransactionEnergy:
    def test_zeros_cost_energy(self):
        model = IOEnergyModel(DDR4_ENERGY)
        free = model.transaction_energy(zeros=0, beats=8)
        costly = model.transaction_energy(zeros=100, beats=8)
        assert costly - free == pytest.approx(
            100 * DDR4_ENERGY.energy_per_zero_bit
        )

    def test_beats_cost_energy(self):
        model = IOEnergyModel(DDR4_ENERGY)
        short = model.transaction_energy(zeros=0, beats=8)
        long = model.transaction_energy(zeros=0, beats=16)
        assert long == pytest.approx(2 * short)

    def test_negative_rejected(self):
        model = IOEnergyModel(DDR4_ENERGY)
        with pytest.raises(ValueError):
            model.transaction_energy(zeros=-1, beats=8)


class TestEvaluate:
    def test_sums_over_log(self):
        model = IOEnergyModel(DDR4_ENERGY)
        zeros = {"dbi": np.array([10, 20, 30], dtype=np.int64)}
        log = [tx(0), tx(1), tx(2)]
        result = model.evaluate(log, zeros)
        assert result.zeros == 60
        assert result.beats == 3 * 8
        assert result.transactions == 3
        expect = (
            60 * DDR4_ENERGY.energy_per_zero_bit
            + 24 * BUS_PINS * DDR4_ENERGY.energy_per_beat
        )
        assert result.energy_j == pytest.approx(expect)

    def test_mixed_schemes_use_their_tables(self):
        model = IOEnergyModel(DDR4_ENERGY)
        zeros = {
            "dbi": np.array([100], dtype=np.int64),
            "milc": np.array([40], dtype=np.int64),
        }
        log = [tx(0, "dbi", cycles=4), tx(0, "milc", cycles=5)]
        result = model.evaluate(log, zeros)
        assert result.zeros == 140

    def test_unknown_scheme_raises(self):
        model = IOEnergyModel(DDR4_ENERGY)
        with pytest.raises(KeyError):
            model.evaluate([tx(0, "mystery")], {"dbi": np.array([1])})

    def test_empty_log(self):
        model = IOEnergyModel(LPDDR3_ENERGY)
        result = model.evaluate([], {})
        assert result.energy_j == 0.0
        assert result.zeros_per_transaction == 0.0

    def test_fewer_zeros_means_less_energy(self):
        # The monotonicity MiL relies on.
        model = IOEnergyModel(DDR4_ENERGY)
        dense = model.evaluate(
            [tx(0)], {"dbi": np.array([200], dtype=np.int64)}
        )
        sparse = model.evaluate(
            [tx(0, "milc", cycles=5)], {"milc": np.array([80])}
        )
        assert sparse.energy_j < dense.energy_j

"""Figure 7: how much can optimal static codes beat DBI?

For each benchmark's data corpus, the frequency-optimal static (8, n)
code maps the most common byte values to the codewords with the fewest
0s.  The paper normalises the resulting zero counts to the *original
uncoded data* and shows that even at DBI's own overhead (n = 9) there
is substantial head-room — the gap MiL goes after with practical,
algorithmic codes.
"""

from __future__ import annotations

import numpy as np

from ..coding import codec_for
from ..coding.optimal_lwc import OptimalStaticLWC, byte_frequencies
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER, build_trace
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE

__all__ = ["run_experiment", "CODE_WIDTHS"]

CODE_WIDTHS = (9, 10, 11, 13, 17)


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    dbi = codec_for("dbi")
    rows = []
    at_dbi_overhead = []
    for bench in BENCHMARK_ORDER:
        trace = build_trace(bench, NIAGARA_SERVER,
                            accesses_per_core=accesses_per_core)
        data = trace.line_data
        raw_zeros = float(
            (data.size * 8) - np.unpackbits(data, axis=1).sum()
        )
        freqs = byte_frequencies(data)
        row = [bench, float(dbi.count_zeros_bytes(data.reshape(1, -1))[0])
               / raw_zeros]
        for width in CODE_WIDTHS:
            code = OptimalStaticLWC(width, freqs)
            zeros = float(code.count_zeros_bytes(data.reshape(1, -1))[0])
            row.append(zeros / raw_zeros)
        rows.append(row)
        at_dbi_overhead.append(row[2] / row[1])  # (8,9) vs DBI

    result = ExperimentResult(
        experiment="fig07",
        title=(
            "Figure 7: zeros under optimal static (8,n) codes, "
            "normalized to the zeros of the original uncoded data"
        ),
        headers=["benchmark", "dbi"] + [f"(8,{w})" for w in CODE_WIDTHS],
        rows=rows,
        paper_claim=(
            "static codes with DBI's overhead already cut zeros well "
            "below DBI, and wider codes keep helping"
        ),
    )
    result.observations["mean_(8,9)_vs_dbi"] = float(
        np.mean(at_dbi_overhead)
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

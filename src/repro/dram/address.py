"""Physical address mapping (page-interleaving, Table 2).

The paper's memory controller uses *page interleaving*: consecutive DRAM
pages (rows) are spread across channels, then ranks, then banks, so
sequential streams keep whole rows open while independent streams land
on different banks.  Address layout, from least-significant upward::

    | line offset | column (line within row) | channel | rank |
    | bank group  | bank                     | row     |

The mapper is bijective; :meth:`AddressMapper.reverse` exists so tests
can prove it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .commands import Geometry

__all__ = ["MappedAddress", "AddressMapper"]


def _log2(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class MappedAddress:
    """Where a physical address lives in the DRAM system."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int  # cache-line index within the row


class AddressMapper:
    """Physical-to-DRAM address translation.

    Two interleaving policies:

    * ``"page"`` (the paper's Table 2 configuration): consecutive cache
      lines fill a DRAM row before moving to the next channel/rank/bank,
      maximising row-buffer hits for streams;
    * ``"line"``: consecutive cache lines round-robin across channels,
      ranks, and banks first, maximising bank-level parallelism at the
      cost of row locality — the classic alternative design point.
    """

    def __init__(
        self, geometry: Geometry, channels: int, interleave: str = "page"
    ):
        if interleave not in ("page", "line"):
            raise ValueError(
                f"interleave must be 'page' or 'line', got {interleave!r}"
            )
        self.geometry = geometry
        self.channels = channels
        self.interleave = interleave
        self._off_bits = _log2(geometry.line_bytes, "line size")
        self._col_bits = _log2(geometry.lines_per_row, "lines per row")
        self._ch_bits = _log2(channels, "channel count")
        self._rank_bits = _log2(geometry.ranks, "rank count")
        self._group_bits = _log2(geometry.bank_groups, "bank group count")
        self._bank_bits = _log2(geometry.banks_per_group, "banks per group")
        self._row_bits = _log2(geometry.rows, "row count")

    @property
    def capacity_bytes(self) -> int:
        """Total addressable bytes across all channels."""
        bits = (
            self._off_bits + self._col_bits + self._ch_bits + self._rank_bits
            + self._group_bits + self._bank_bits + self._row_bits
        )
        return 1 << bits

    def map(self, address: int) -> MappedAddress:
        """Translate a physical byte address."""
        if address < 0:
            raise ValueError("address must be non-negative")
        a = address >> self._off_bits
        if self.interleave == "page":
            column = a & ((1 << self._col_bits) - 1)
            a >>= self._col_bits
            channel = a & ((1 << self._ch_bits) - 1)
            a >>= self._ch_bits
            rank = a & ((1 << self._rank_bits) - 1)
            a >>= self._rank_bits
            group = a & ((1 << self._group_bits) - 1)
            a >>= self._group_bits
            bank = a & ((1 << self._bank_bits) - 1)
            a >>= self._bank_bits
            row = a & ((1 << self._row_bits) - 1)
        else:  # line interleave: channel/rank/bank bits below the column
            channel = a & ((1 << self._ch_bits) - 1)
            a >>= self._ch_bits
            group = a & ((1 << self._group_bits) - 1)
            a >>= self._group_bits
            bank = a & ((1 << self._bank_bits) - 1)
            a >>= self._bank_bits
            rank = a & ((1 << self._rank_bits) - 1)
            a >>= self._rank_bits
            column = a & ((1 << self._col_bits) - 1)
            a >>= self._col_bits
            row = a & ((1 << self._row_bits) - 1)
        return MappedAddress(channel, rank, group, bank, row, column)

    def reverse(self, mapped: MappedAddress) -> int:
        """Rebuild the physical byte address (inverse of :meth:`map`)."""
        a = mapped.row
        if self.interleave == "page":
            a = (a << self._bank_bits) | mapped.bank
            a = (a << self._group_bits) | mapped.bank_group
            a = (a << self._rank_bits) | mapped.rank
            a = (a << self._ch_bits) | mapped.channel
            a = (a << self._col_bits) | mapped.column
        else:
            a = (a << self._col_bits) | mapped.column
            a = (a << self._rank_bits) | mapped.rank
            a = (a << self._bank_bits) | mapped.bank
            a = (a << self._group_bits) | mapped.bank_group
            a = (a << self._ch_bits) | mapped.channel
        return a << self._off_bits

"""The frozen description of one simulation run.

A :class:`RunSpec` is the single currency of the campaign engine: the
experiment modules plan lists of specs, the runner executes them, the
cache keys files on them, and results are looked up by spec equality.
Specs are hashable and picklable, so they cross process-pool boundaries
and serve as dict keys on both sides.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from ..system.machine import SYSTEMS, SystemConfig

__all__ = ["RunSpec"]

# Override values must survive a JSON round-trip unchanged so that
# canonical() is a faithful, stable encoding of the spec.
_PRIMITIVES = (str, int, float, bool, type(None))

Overrides = "tuple[tuple[str, object], ...]"


def _freeze_overrides(value) -> tuple:
    """Normalise a dict or iterable of pairs into a sorted tuple."""
    if isinstance(value, dict):
        pairs = value.items()
    else:
        pairs = tuple(value)
    out = []
    for key, val in pairs:
        if not isinstance(key, str):
            raise TypeError(f"override key {key!r} must be a string")
        if not isinstance(val, _PRIMITIVES):
            raise TypeError(
                f"override {key}={val!r} is not JSON-primitive; "
                "campaign specs must be content-addressable"
            )
        out.append((key, val))
    out.sort()
    return tuple(out)


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one (benchmark, system, policy) run.

    ``system`` names a Table 2 base machine (a :data:`SYSTEMS` key);
    ``system_overrides`` are ``dataclasses.replace`` fields applied on
    top of it (how the design-space studies describe their variants).
    ``mil_overrides`` are :class:`~repro.core.config.MiLConfig` fields
    applied to the decision logic of ``mil``-family policies.
    """

    benchmark: str
    system: str = "ddr4-server"
    policy: str = "mil"
    lookahead: int | None = None
    accesses_per_core: int = 5000
    seed: int = 0
    system_overrides: tuple = field(default=())
    mil_overrides: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark", self.benchmark.upper())
        object.__setattr__(
            self, "system_overrides", _freeze_overrides(self.system_overrides)
        )
        object.__setattr__(
            self, "mil_overrides", _freeze_overrides(self.mil_overrides)
        )
        if self.system not in SYSTEMS:
            raise KeyError(
                f"unknown system {self.system!r}; known: {sorted(SYSTEMS)}"
            )
        # Validated against the live policy registry, so specs naming a
        # program-registered policy (examples/custom_codec.py) pass.
        # Imported lazily: the core package imports the campaign layer's
        # consumers, and unpickling in workers skips __post_init__
        # anyway — validation happens where specs are *built*.
        from ..core.policies import known_policy, policy_names

        if not known_policy(self.policy):
            raise KeyError(
                f"unknown policy {self.policy!r}; known: {policy_names()}"
            )
        # Benchmarks get the same spec-build-time treatment: an unknown
        # name must fail here with the known list, not deep inside trace
        # building in a worker.  Accepts Table 3 names and canonical
        # MIX@... traffic-mix names (repro.workloads.mixed).
        from ..workloads.benchmarks import validate_benchmark

        validate_benchmark(self.benchmark)
        if self.system_overrides:
            # Unknown field paths fail at spec build time too; the
            # values were already checked JSON-primitive above.
            try:
                self.resolve_system()
            except (TypeError, AttributeError) as exc:
                raise ValueError(
                    f"bad system override for {self.system!r}: {exc}"
                ) from None
        if self.accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")
        if self.lookahead is not None and self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")

    @classmethod
    def of(
        cls,
        benchmark: str,
        config: SystemConfig | str,
        policy: str,
        lookahead: int | None = None,
        accesses_per_core: int = 5000,
        seed: int = 0,
        mil_overrides: dict | tuple = (),
    ) -> "RunSpec":
        """Build a spec from the legacy ``cached_run`` argument shapes.

        ``config`` may be a system name, a Table 2 config, or a
        ``dataclasses.replace`` variant of one — the variant is
        decomposed into its base system plus field overrides so the
        spec stays a pure-data description.
        """
        if isinstance(config, str):
            system, overrides = config, ()
        else:
            system, overrides = _decompose_system(config)
        return cls(
            benchmark=benchmark,
            system=system,
            policy=policy,
            lookahead=lookahead,
            accesses_per_core=accesses_per_core,
            seed=seed,
            system_overrides=overrides,
            mil_overrides=mil_overrides,
        )

    def resolve_system(self) -> SystemConfig:
        """Materialise the (possibly overridden) system configuration.

        Override keys may be dotted paths into nested config
        dataclasses (``geometry.ranks``, ``prefetcher.degree``, ...):
        each path segment names a field, and the innermost value must
        still be JSON-primitive.  That is how scenario grids sweep
        per-channel rank counts without registering system variants.
        """
        config = SYSTEMS[self.system]
        if self.system_overrides:
            config = _replace_path(config, dict(self.system_overrides))
        return config

    def canonical(self) -> dict:
        """A JSON-safe dict that uniquely encodes this spec."""
        return {
            "benchmark": self.benchmark,
            "system": self.system,
            "policy": self.policy,
            "lookahead": self.lookahead,
            "accesses_per_core": self.accesses_per_core,
            "seed": self.seed,
            "system_overrides": [list(p) for p in self.system_overrides],
            "mil_overrides": [list(p) for p in self.mil_overrides],
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True)

    @property
    def slug(self) -> str:
        """Human-readable cache-file stem (not unique on its own)."""
        look = "auto" if self.lookahead is None else str(self.lookahead)
        parts = [
            self.benchmark, self.system, self.policy,
            f"x{look}", f"n{self.accesses_per_core}", f"s{self.seed}",
        ]
        if self.system_overrides or self.mil_overrides:
            parts.append(f"o{len(self.system_overrides)}"
                         f"m{len(self.mil_overrides)}")
        return "-".join(parts)


def _replace_path(config, overrides: dict):
    """``dataclasses.replace`` with dotted-path keys, recursively."""
    direct: dict = {}
    nested: dict[str, dict] = {}
    for key, value in overrides.items():
        head, _, rest = key.partition(".")
        if rest:
            nested.setdefault(head, {})[rest] = value
        else:
            direct[head] = value
    for head, sub in nested.items():
        base = direct.get(head, getattr(config, head))
        direct[head] = _replace_path(base, sub)
    return dataclasses.replace(config, **direct)


def _decompose_system(config: SystemConfig) -> tuple[str, tuple]:
    """Split a SystemConfig into (base system name, field overrides).

    Picks the registered system the config differs least from; every
    differing field must be JSON-primitive (the design-space knobs are
    all strings/numbers — swapping timing or geometry wholesale needs a
    new :data:`SYSTEMS` entry instead).
    """
    if config.name in SYSTEMS and SYSTEMS[config.name] == config:
        return config.name, ()
    best: tuple[str, tuple] | None = None
    for name, base in SYSTEMS.items():
        diffs = []
        ok = True
        for f in dataclasses.fields(SystemConfig):
            mine = getattr(config, f.name)
            theirs = getattr(base, f.name)
            if mine == theirs:
                continue
            if not isinstance(mine, _PRIMITIVES):
                ok = False
                break
            diffs.append((f.name, mine))
        if ok and (best is None or len(diffs) < len(best[1])):
            best = (name, tuple(diffs))
    if best is None:
        raise ValueError(
            f"system config {config.name!r} differs from every "
            "registered system in non-primitive fields; register it in "
            "repro.system.machine.SYSTEMS"
        )
    return best

"""Tests for the Table 2 machine configurations."""

import dataclasses

import pytest

from repro.system import NIAGARA_SERVER, SNAPDRAGON_MOBILE, SYSTEMS


class TestTable2Server:
    def test_core_complex(self):
        cfg = NIAGARA_SERVER
        assert cfg.cores == 8
        assert cfg.threads_per_core == 4
        assert cfg.cpu_ghz == pytest.approx(3.2)
        assert not cfg.out_of_order

    def test_cache_sizes(self):
        cfg = NIAGARA_SERVER
        assert cfg.l1_bytes == 32 * 1024 and cfg.l1_ways == 4
        assert cfg.l2_bytes == 4 * 1024 * 1024 and cfg.l2_ways == 8

    def test_memory_system(self):
        cfg = NIAGARA_SERVER
        assert cfg.timing.name == "DDR4-3200"
        assert cfg.channels == 2
        assert cfg.geometry.ranks == 2
        assert cfg.geometry.banks == 8
        assert cfg.geometry.row_bytes == 8192

    def test_controller_queues(self):
        cfg = NIAGARA_SERVER
        assert (cfg.read_queue, cfg.write_queue) == (64, 64)
        assert (cfg.drain_high, cfg.drain_low) == (60, 50)


class TestTable2Mobile:
    def test_core_complex(self):
        cfg = SNAPDRAGON_MOBILE
        assert cfg.cores == 8
        assert cfg.threads_per_core == 1
        assert cfg.cpu_ghz == pytest.approx(1.6)
        assert cfg.out_of_order

    def test_memory_system(self):
        cfg = SNAPDRAGON_MOBILE
        assert cfg.timing.name == "LPDDR3-1600"
        assert cfg.geometry.row_bytes == 4096
        assert cfg.l2_bytes == 2 * 1024 * 1024

    def test_prefetcher_weaker_than_server(self):
        assert (
            SNAPDRAGON_MOBILE.prefetcher.degree
            < NIAGARA_SERVER.prefetcher.degree
        )
        assert (
            SNAPDRAGON_MOBILE.prefetcher.distance
            < NIAGARA_SERVER.prefetcher.distance
        )


class TestDesignSpaceKnobs:
    def test_defaults_are_paper_point(self):
        for cfg in SYSTEMS.values():
            assert cfg.address_interleave == "page"
            assert cfg.page_policy == "open"

    def test_variants_constructible(self):
        variant = dataclasses.replace(
            NIAGARA_SERVER, address_interleave="line", page_policy="closed"
        )
        assert variant.address_interleave == "line"

    def test_registry(self):
        assert set(SYSTEMS) == {"ddr4-server", "lpddr3-mobile"}
        assert SYSTEMS["ddr4-server"] is NIAGARA_SERVER


class TestClockConversion:
    def test_ceiling_semantics(self):
        assert NIAGARA_SERVER.cpu_to_dram_cycles(1) == 1
        assert NIAGARA_SERVER.cpu_to_dram_cycles(2) == 1
        assert NIAGARA_SERVER.cpu_to_dram_cycles(2.5) == 2

    def test_never_negative(self):
        assert NIAGARA_SERVER.cpu_to_dram_cycles(-5) == 0

"""Closed-loop timing simulation: cores + caches' residue + DRAM.

The simulator replays a :class:`~repro.workloads.trace.MemoryTrace`
against the two-channel memory system.  Each core is a small state
machine that honours, per record:

* **think time** — ``gap`` DRAM cycles of CPU work since its previous
  record;
* **memory-level parallelism** — at most ``config.mlp`` demand reads in
  flight;
* **dependences** — a record flagged ``dependent`` waits for the
  previous demand read's data (pointer chasing);
* **back-pressure** — writes are posted but stall the core when the
  write queue is full; prefetches are dropped instead of stalling.

Execution time is the cycle at which every demand access has completed,
which is how longer coded bursts turn into the Figure 16 performance
deltas.  The loop is event-skipping: it advances straight to the next
cycle at which a controller, a completion, or a core can make progress.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..controller.controller import AlwaysScheme, ChannelController
from ..controller.request import MemoryRequest
from ..dram.address import AddressMapper
from ..workloads.trace import MemoryTrace
from .machine import SystemConfig

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Outputs of one benchmark x system x policy run."""

    name: str
    system: str
    policy: str
    cycles: int  # execution time in DRAM cycles
    controllers: list  # the ChannelControllers (logs, counters)
    pending_cycles: list  # per channel: cycles with queued requests
    demand_reads: int = 0
    read_latency_sum: int = 0
    dropped_prefetches: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        clock_hz = self.controllers[0].timing.clock_ghz * 1e9
        return self.cycles / clock_hz

    @property
    def mean_read_latency(self) -> float:
        if not self.demand_reads:
            return 0.0
        return self.read_latency_sum / self.demand_reads

    @property
    def scheme_counts(self) -> dict:
        merged: dict[str, int] = {}
        for mc in self.controllers:
            for scheme, count in mc.scheme_counts.items():
                merged[scheme] = merged.get(scheme, 0) + count
        return merged

    def transactions(self):
        """All data-bus transactions across channels."""
        for mc in self.controllers:
            yield from mc.channel.transactions

    @property
    def bus_utilization(self) -> float:
        busy = sum(mc.channel.busy_cycles for mc in self.controllers)
        return busy / (self.cycles * len(self.controllers)) if self.cycles else 0.0


class _CoreState:
    """Progress of one core through its trace."""

    __slots__ = (
        "records", "index", "earliest", "outstanding",
        "wait_completion_of", "last_demand_read",
    )

    def __init__(self, records):
        self.records = records
        self.index = 0
        self.earliest = 0  # earliest cycle the next record may issue
        self.outstanding = 0  # in-flight demand reads
        self.wait_completion_of: int | None = None  # request serial
        self.last_demand_read: MemoryRequest | None = None

    @property
    def done(self) -> bool:
        return self.index >= len(self.records)


def simulate(
    trace: MemoryTrace,
    config: SystemConfig,
    policy_factory=None,
    max_cycles: int = 200_000_000,
    telemetry=None,
    record_commands: bool = False,
) -> SimulationResult:
    """Run ``trace`` on ``config`` under a coding policy.

    ``policy_factory()`` builds one policy per channel (default: the
    always-DBI baseline).  ``telemetry`` is an optional
    :class:`~repro.telemetry.session.TelemetrySession`; when given, one
    probe per channel is wired into the controller, its DRAM channel,
    and its policy (the default ``None`` leaves the fast path exactly as
    it was).  ``record_commands`` makes every channel keep the full
    per-command log the protocol audit layer replays (off by default:
    the log costs memory and buys nothing unless something audits it).
    Returns a :class:`SimulationResult`.
    """
    if policy_factory is None:
        policy_factory = lambda: AlwaysScheme("dbi")  # noqa: E731

    mapper = AddressMapper(
        config.geometry, config.channels,
        interleave=config.address_interleave,
    )
    controllers = [
        ChannelController(
            config.timing,
            config.geometry,
            policy=policy_factory(),
            read_queue_size=config.read_queue,
            write_queue_size=config.write_queue,
            drain_high=config.drain_high,
            drain_low=config.drain_low,
            keep_cmd_log=record_commands,
            page_policy=config.page_policy,
        )
        for _ in range(config.channels)
    ]
    if telemetry is not None:
        telemetry.cycle_ns = 1.0 / config.timing.clock_ghz
        for ch, mc in enumerate(controllers):
            mc.attach_probe(telemetry.channel_probe(ch))
    policy = controllers[0].policy
    policy_name = getattr(policy, "scheme", None) or type(policy).__name__

    cores = [_CoreState(recs) for recs in trace.records_by_core]
    completion_heap: list[tuple[int, int]] = []  # (finish_cycle, serial)
    inflight: dict[int, tuple[MemoryRequest, int]] = {}  # serial -> (req, core)

    pending_cycles = [0] * config.channels
    demand_reads = 0
    read_latency_sum = 0
    dropped_prefetches = 0
    last_completion = 0
    address_mask = mapper.capacity_bytes - 1

    def issue_from_core(core_id: int, core: _CoreState, now: int) -> bool:
        """Try to issue the core's next record; True on progress."""
        nonlocal dropped_prefetches
        rec = core.records[core.index]
        if now < core.earliest:
            return False
        if rec.dependent and core.wait_completion_of is not None:
            return False
        if not rec.is_write and not rec.is_prefetch:
            if core.outstanding >= config.mlp:
                return False
        address = rec.address & address_mask
        mapped = mapper.map(address)
        mc = controllers[mapped.channel]
        if rec.is_prefetch:
            if not mc.can_accept(False):
                dropped_prefetches += 1
                core.index += 1
                _arm_next(core, now)
                return True
        elif not mc.can_accept(rec.is_write):
            return False

        request = MemoryRequest(
            address=address,
            is_write=rec.is_write,
            core=core_id,
            line_id=rec.line_id,
            is_prefetch=rec.is_prefetch,
        )
        request.mapped = mapped
        mc.enqueue(request, now)
        if request.completed:
            # Forwarded from the write queue: done instantly.
            pass
        elif not rec.is_write and not rec.is_prefetch:
            core.outstanding += 1
            inflight[request.serial] = (request, core_id)
            core.last_demand_read = request
        core.index += 1
        _arm_next(core, now)
        return True

    def _arm_next(core: _CoreState, now: int) -> None:
        """Set earliest-issue constraints for the core's next record."""
        if core.done:
            return
        nxt = core.records[core.index]
        core.earliest = now + nxt.gap
        if nxt.dependent and core.last_demand_read is not None:
            if core.last_demand_read.completed:
                core.wait_completion_of = None
                core.earliest = max(
                    core.earliest,
                    core.last_demand_read.finish_cycle + nxt.gap,
                )
            else:
                core.wait_completion_of = core.last_demand_read.serial
        else:
            core.wait_completion_of = None

    now = 0
    while now < max_cycles:
        # 1. Retire completions whose data has arrived.
        while completion_heap and completion_heap[0][0] <= now:
            finish, serial = heapq.heappop(completion_heap)
            request, core_id = inflight.pop(serial)
            core = cores[core_id]
            core.outstanding -= 1
            if core.wait_completion_of == serial:
                core.wait_completion_of = None
                # The dependent record's think time starts when the data
                # arrives, not when the load issued.
                if not core.done:
                    gap = core.records[core.index].gap
                    core.earliest = max(core.earliest, finish + gap)

        # 2. Let every core push work into the controllers.
        for core_id, core in enumerate(cores):
            while core.index < len(core.records) and issue_from_core(
                core_id, core, now
            ):
                pass

        # 3. One scheduling step per controller.
        stepped = [mc.step(now) for mc in controllers]

        # 4. Collect newly scheduled transfers into the completion heap.
        for mc in controllers:
            for request in mc.drain_completions():
                if request.is_write or request.is_prefetch:
                    last_completion = max(last_completion, request.finish_cycle)
                    continue
                demand_reads += 1
                read_latency_sum += request.queue_latency()
                last_completion = max(last_completion, request.finish_cycle)
                if request.serial in inflight:
                    heapq.heappush(
                        completion_heap, (request.finish_cycle, request.serial)
                    )

        all_cores_done = all(
            core.index >= len(core.records) for core in cores
        )
        if all_cores_done and not inflight and not any(
            mc.has_pending for mc in controllers
        ):
            break

        # 5. Jump to the next event.
        candidates: list[int] = []
        if completion_heap:
            candidates.append(completion_heap[0][0])
        for mc, did in zip(controllers, stepped):
            nxt = (now + 1) if did else mc.next_event(now)
            if nxt is not None:
                candidates.append(nxt)
        for core in cores:
            if core.index >= len(core.records):
                continue
            if core.wait_completion_of is not None:
                continue  # completion heap covers the wake-up
            rec = core.records[core.index]
            if not rec.is_write and not rec.is_prefetch:
                if core.outstanding >= config.mlp:
                    continue  # a completion will free a slot
            candidates.append(max(now + 1, core.earliest))

        if not candidates:
            raise RuntimeError(
                f"simulation deadlocked at cycle {now} "
                f"({sum(c.done for c in cores)}/{len(cores)} cores done)"
            )
        nxt = max(now + 1, min(candidates))
        for ch, mc in enumerate(controllers):
            # "Pending" in the Figure 5 sense: work queued *or* a burst
            # still streaming on the data bus.
            if mc.has_pending:
                pending_cycles[ch] += nxt - now
            elif mc.channel.bus_free_at > now:
                pending_cycles[ch] += min(nxt, mc.channel.bus_free_at) - now
        now = nxt

    cycles = max(last_completion, now)
    return SimulationResult(
        name=trace.name,
        system=config.name,
        policy=policy_name,
        cycles=cycles,
        controllers=controllers,
        pending_cycles=pending_cycles,
        demand_reads=demand_reads,
        read_latency_sum=read_latency_sum,
        dropped_prefetches=dropped_prefetches,
        stats={
            "trace_records": trace.total_records,
            "forwarded_reads": sum(mc.forwarded_reads for mc in controllers),
            "coalesced_writes": sum(mc.coalesced_writes for mc in controllers),
        },
    )

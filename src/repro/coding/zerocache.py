"""Campaign-wide zero-table cache: encode each (trace, scheme) once.

Every run begins by building per-scheme zero tables over the whole
trace (:func:`~repro.coding.pipeline.precompute_line_zeros`).  A
campaign replays the *same* trace for every policy it compares — the
paired-comparison design of the experiments — so without a cache the
trace is re-encoded under every scheme once per run: a fig16-style
campaign re-pays the full codec cost hundreds of times.

The cache is content-addressed on ``(trace digest, scheme)``: the
digest hashes the actual line payload bytes, so two traces that happen
to share bytes share tables and any change to the data is a guaranteed
miss.  Entries are process-local — campaign workers are long-lived
processes that execute many specs, so each worker pays the encode once
per (trace, scheme) and serves every later run from memory.  Nothing is
persisted: the on-disk run cache (keyed on spec + model fingerprint)
already makes repeat campaigns free, and an in-memory table can never
survive a codec edit.

Cached tables are marked read-only before they are shared between runs;
consumers only ever index them.  ``REPRO_NO_ZERO_CACHE=1`` disables the
cache globally (benchmarking the uncached path, or paranoia).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict

import numpy as np

__all__ = [
    "ZeroTableCache",
    "cache_enabled",
    "global_cache",
    "lines_digest",
    "reset_global_cache",
]

DISABLE_ENV = "REPRO_NO_ZERO_CACHE"

# Each entry is one int64 per line — a few hundred KB per (trace,
# scheme) at experiment scale.  The bound exists so a pathological
# campaign over thousands of distinct traces cannot grow without limit.
DEFAULT_MAX_ENTRIES = 256


def cache_enabled() -> bool:
    return not os.environ.get(DISABLE_ENV)


def lines_digest(lines: np.ndarray) -> str:
    """Content digest of a ``(n, 64)`` line array (shape included)."""
    a = np.ascontiguousarray(lines, dtype=np.uint8)
    h = hashlib.sha256()
    h.update(repr(a.shape).encode())
    h.update(a.data)
    return h.hexdigest()


class ZeroTableCache:
    """LRU cache of zero tables keyed on ``(trace digest, scheme)``."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self._tables: OrderedDict[tuple[str, str], np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._tables)

    def get(self, digest: str, scheme: str) -> np.ndarray | None:
        key = (digest, scheme)
        table = self._tables.get(key)
        if table is None:
            self.misses += 1
            return None
        self._tables.move_to_end(key)
        self.hits += 1
        return table

    def put(self, digest: str, scheme: str, table: np.ndarray) -> np.ndarray:
        table = np.asarray(table)
        table.setflags(write=False)
        self._tables[(digest, scheme)] = table
        self._tables.move_to_end((digest, scheme))
        while len(self._tables) > self.max_entries:
            self._tables.popitem(last=False)
        return table

    def clear(self) -> None:
        self._tables.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._tables),
            "hits": self.hits,
            "misses": self.misses,
        }


_GLOBAL = ZeroTableCache()


def global_cache() -> ZeroTableCache:
    return _GLOBAL


def reset_global_cache() -> None:
    """Drop every cached table (tests; codec hot-reloading sessions)."""
    _GLOBAL.clear()

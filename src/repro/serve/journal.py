"""The durable job table: an append-only JSONL journal.

The journal is what makes a service restart boring.  Two record shapes
are appended under the store root (``<store>/journal.jsonl``):

* ``{"op": "job", "id", "namespace", "priority", "label", "specs",
  "keys"}`` — one per accepted submission, written before the job's
  first event so replay always sees the descriptor first;
* ``{"op": "event", "job", "event": {...}}`` — every event any job's
  log appends, verbatim (``seq`` and ``ts`` included), so a restored
  job's event log is byte-identical to the pre-crash one and clients
  resuming with ``?since=`` stay gap-free across restarts.

That is the whole write path: no checkpoints, no compaction, no state
machine of its own.  Recovery is a pure fold — replay the records
through :meth:`~repro.serve.jobs.JobManager.restore`, which rebuilds
job descriptors, event logs, and per-key outcomes, then re-queues every
key that was queued *or leased* at crash time (a lease dies with its
service) and settles keys whose result file made it into the
content-addressed cache before the crash.  Because the cache write
(:func:`repro.campaign.runner._finish`) happens *before* the
``finished`` event is journaled, a crash between the two costs nothing:
the restored key probes the cache, hits, and settles without
re-executing — zero lost and zero duplicated executions either side of
the crash point.

Appends are flushed per record; a torn final line from a crash
mid-append is detected by the JSON parser and skipped on replay.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Journal"]

JOURNAL_NAME = "journal.jsonl"


class Journal:
    """Append-only JSONL writer plus the tolerant reader for replay."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None
        self.appended = 0  # records written by *this* process

    # -- writing --------------------------------------------------------
    def open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    @property
    def active(self) -> bool:
        return self._fh is not None

    def append(self, record: dict) -> None:
        """Write one record and flush it to the OS immediately.

        A record is either fully on disk or a torn final line; replay
        treats the latter as absent, so the journal's prefix property
        (descriptor before events, events in emit order) always holds.
        """
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def stats(self) -> dict:
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.path),
            "bytes": size,
            "appended": self.appended,
        }

    # -- reading --------------------------------------------------------
    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Every decodable record, in append order.

        A missing file is an empty journal; an undecodable line (torn
        tail from a crash mid-append, or stray corruption) is skipped
        rather than fatal — the service comes back with whatever prefix
        survived.
        """
        records: list[dict] = []
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            return []
        return records

"""Benchmark target: ext_powerdown extension study (see DESIGN.md)."""

from repro.experiments import ALL_EXPERIMENTS


def test_ext_powerdown(benchmark, show):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["ext_powerdown"], rounds=1, iterations=1
    )
    show(result)
    assert result.rows, "experiment produced no rows"

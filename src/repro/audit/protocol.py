"""Independent re-derivation of the Table 2 DRAM protocol constraints.

:class:`ProtocolAuditor` replays a :class:`~repro.dram.channel.DRAMChannel`
command log and checks every timing rule again — by a *different*
algorithm than the channel uses to enforce them.  The channel maintains
saturating "earliest next cycle" registers (the software dual of
Figure 11's counters); the auditor instead keeps raw event history and
checks constraints pairwise:

* tFAW as a post-hoc sliding window over the raw per-rank ACT
  timestamps (any five consecutive ACTs must span at least tFAW);
* tRRD_S/L, tCCD_S/L (including the burst-length stretch MiL rides on),
  and tWTR_S/L against a window of recent per-rank events;
* tRC/tRAS/tRTP/tWR/tRP/tRCD against the per-bank ACT/column/precharge
  history of the current row epoch;
* tRFC and the tREFI postponement budget against the refresh history,
  with the clamped-debt model of :mod:`repro.dram.refresh` re-walked
  from the log (a refresh with no accrued obligation — the signature of
  runaway batch accrual — is an overpay violation).

Because no enforcement state is shared, a bug in the channel's counter
updates cannot also hide the corresponding audit check.  Bus-level rules
(burst overlap, tRTRS turnaround bubbles) are delegated to the existing
independent :class:`~repro.dram.channel.BusAuditor` and surfaced in the
same :class:`Violation` vocabulary.

The auditor's bounds are, by construction, *no stricter than* the
channel's (e.g. LPDDR3's tRC exceeds tRAS + tRP, and the channel
enforces the full tRC): a log the channel accepted always audits clean,
so any reported violation is a genuine enforcement bug, not auditor
noise.  Pass the controller's *effective* timing (with codec latency
folded in via ``with_extra_cl``) so data-end positions match the ones
the device saw.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..dram.channel import BusTransaction, CommandRecord
from ..dram.commands import CommandType, Geometry
from ..dram.refresh import MAX_POSTPONED
from ..dram.timing import TimingParams

__all__ = ["ProtocolAuditor", "Violation"]

# Recent column/ACT events retained per rank for the pairwise checks.
# Bounded so the audit stays O(n): anything further back is separated by
# far more than any column/activate constraint could demand.
_HISTORY = 16


@dataclass(frozen=True, slots=True)
class Violation:
    """One protocol violation found in a command or bus log."""

    constraint: str  # JEDEC name ("tFAW", "tCCD_L", ...) or "structure"
    cycle: int  # command cycle (-1 for bus-log findings)
    rank: int  # rank involved (-1 for bus-log findings)
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.constraint}] cycle {self.cycle}: {self.message}"


@dataclass(slots=True)
class _BankTrack:
    """Raw per-bank event history for the current row epoch."""

    open: bool = False
    act: int | None = None  # last ACTIVATE cycle
    pre_time: int | None = None  # when the last precharge took effect
    last_rd: int | None = None  # last READ cycle since ACT
    last_wr_end: int | None = None  # last write data-end since ACT


@dataclass(slots=True)
class _RankTrack:
    """Raw per-rank event history."""

    acts: list = field(default_factory=list)  # every ACT cycle (tFAW)
    last_act_group: list = field(default_factory=list)
    # Recent column commands: (cycle, group, bus_cycles, is_write,
    # data_end) — for tCCD stretch and tWTR.
    cols: deque = field(default_factory=lambda: deque(maxlen=_HISTORY))
    last_ref: int | None = None
    # Clamped refresh-debt walk (see repro.dram.refresh).
    debt: int = 0
    next_due: int = 0


class ProtocolAuditor:
    """Re-derives every Table 2 constraint from a recorded command log."""

    def __init__(self, timing: TimingParams, geometry: Geometry):
        self.timing = timing
        self.geometry = geometry

    # ------------------------------------------------------------------
    # Command-log audit
    # ------------------------------------------------------------------
    def check(self, commands: list[CommandRecord]) -> list[Violation]:
        """Audit a command log; return all violations (empty == clean)."""
        t = self.timing
        g = self.geometry
        out: list[Violation] = []
        banks = {
            (r, grp, b): _BankTrack()
            for r in range(g.ranks)
            for grp in range(g.bank_groups)
            for b in range(g.banks_per_group)
        }
        ranks = [
            _RankTrack(
                last_act_group=[None] * g.bank_groups,
                next_due=t.REFI,
            )
            for _ in range(g.ranks)
        ]

        def flag(constraint: str, cycle: int, rank: int, msg: str) -> None:
            out.append(Violation(constraint, cycle, rank, msg))

        for cmd in sorted(commands, key=lambda c: c.cycle):
            c = cmd.cycle
            rk = ranks[cmd.rank]
            bk = banks[(cmd.rank, cmd.bank_group, cmd.bank)]
            where = (
                f"rank {cmd.rank} group {cmd.bank_group} bank {cmd.bank}"
            )

            if cmd.cmd is CommandType.ACTIVATE:
                if bk.open:
                    flag("structure", c, cmd.rank,
                         f"ACT on open bank ({where})")
                if bk.act is not None and c - bk.act < t.RC:
                    flag("tRC", c, cmd.rank,
                         f"ACT {c - bk.act} after ACT at {bk.act} ({where})")
                if bk.pre_time is not None and c - bk.pre_time < t.RP:
                    flag("tRP", c, cmd.rank,
                         f"ACT {c - bk.pre_time} after precharge at "
                         f"{bk.pre_time} ({where})")
                for g2, ts in enumerate(rk.last_act_group):
                    if ts is None:
                        continue
                    same = g2 == cmd.bank_group
                    bound = t.RRD_L if same else t.RRD_S
                    if c - ts < bound:
                        flag("tRRD_L" if same else "tRRD_S", c, cmd.rank,
                             f"ACT {c - ts} after ACT at {ts} in group "
                             f"{g2} ({where})")
                if rk.last_ref is not None and c - rk.last_ref < t.RFC:
                    flag("tRFC", c, cmd.rank,
                         f"ACT {c - rk.last_ref} after REFRESH at "
                         f"{rk.last_ref}")
                rk.acts.append(c)
                rk.last_act_group[cmd.bank_group] = c
                bk.open = True
                bk.act = c
                bk.last_rd = None
                bk.last_wr_end = None

            elif cmd.cmd is CommandType.PRECHARGE:
                if not bk.open:
                    flag("structure", c, cmd.rank,
                         f"PRE on closed bank ({where})")
                if bk.act is not None and c - bk.act < t.RAS:
                    flag("tRAS", c, cmd.rank,
                         f"PRE {c - bk.act} after ACT at {bk.act} ({where})")
                if bk.last_rd is not None and c - bk.last_rd < t.RTP:
                    flag("tRTP", c, cmd.rank,
                         f"PRE {c - bk.last_rd} after READ at "
                         f"{bk.last_rd} ({where})")
                if bk.last_wr_end is not None and c - bk.last_wr_end < t.WR:
                    flag("tWR", c, cmd.rank,
                         f"PRE {c - bk.last_wr_end} after write data end "
                         f"{bk.last_wr_end} ({where})")
                bk.open = False
                bk.pre_time = c

            elif cmd.cmd in (CommandType.READ, CommandType.WRITE):
                is_write = cmd.cmd is CommandType.WRITE
                if not bk.open:
                    flag("structure", c, cmd.rank,
                         f"{cmd.cmd.name} on closed bank ({where})")
                if bk.act is not None and c - bk.act < t.RCD:
                    flag("tRCD", c, cmd.rank,
                         f"{cmd.cmd.name} {c - bk.act} after ACT at "
                         f"{bk.act} ({where})")
                for c2, g2, n2, w2, e2 in rk.cols:
                    same = g2 == cmd.bank_group
                    # Column spacing stretches with the earlier burst.
                    ccd = max(t.CCD_L if same else t.CCD_S, n2)
                    if c - c2 < ccd:
                        flag("tCCD_L" if same else "tCCD_S", c, cmd.rank,
                             f"{cmd.cmd.name} {c - c2} after column at "
                             f"{c2} (BL stretch {n2}, group {g2})")
                    if w2 and not is_write:
                        wtr = t.WTR_L if same else t.WTR_S
                        if c - e2 < wtr:
                            flag("tWTR_L" if same else "tWTR_S", c,
                                 cmd.rank,
                                 f"READ {c - e2} after write data end "
                                 f"{e2} (group {g2})")
                latency = t.WL if is_write else t.CL
                data_end = c + latency + cmd.bus_cycles
                rk.cols.append(
                    (c, cmd.bank_group, cmd.bus_cycles, is_write, data_end)
                )
                if is_write:
                    bk.last_wr_end = data_end
                else:
                    bk.last_rd = c
                if cmd.auto_precharge:
                    # The device precharges itself at the latest of the
                    # row's precharge bounds — the same instant an
                    # earliest-legal explicit PRE could have issued.
                    ipre = bk.act + t.RAS if bk.act is not None else c
                    if bk.last_rd is not None:
                        ipre = max(ipre, bk.last_rd + t.RTP)
                    if bk.last_wr_end is not None:
                        ipre = max(ipre, bk.last_wr_end + t.WR)
                    bk.open = False
                    bk.pre_time = ipre

            elif cmd.cmd is CommandType.REFRESH:
                for (r2, g2, b2), bb in banks.items():
                    if r2 != cmd.rank:
                        continue
                    if bb.open:
                        flag("structure", c, cmd.rank,
                             f"REFRESH with open row (group {g2} "
                             f"bank {b2})")
                    if bb.pre_time is not None and c - bb.pre_time < t.RP:
                        flag("tRP", c, cmd.rank,
                             f"REFRESH {c - bb.pre_time} after precharge "
                             f"at {bb.pre_time} (group {g2} bank {b2})")
                    if bb.act is not None and c - bb.act < t.RC:
                        flag("tRC", c, cmd.rank,
                             f"REFRESH {c - bb.act} after ACT at "
                             f"{bb.act} (group {g2} bank {b2})")
                if rk.last_ref is not None and c - rk.last_ref < t.RFC:
                    flag("tRFC", c, cmd.rank,
                         f"REFRESH {c - rk.last_ref} after REFRESH at "
                         f"{rk.last_ref}")
                # Clamped-debt walk: obligations accrue once per tREFI,
                # capped at the JEDEC postponement budget (long-idle
                # intervals are forgiven, matching RefreshScheduler).
                if rk.next_due <= c:
                    missed = (c - rk.next_due) // t.REFI + 1
                    rk.debt = min(MAX_POSTPONED, rk.debt + missed)
                    rk.next_due += missed * t.REFI
                if rk.debt <= 0:
                    flag("tREFI", c, cmd.rank,
                         "REFRESH with no accrued obligation (overpay: "
                         "debt accrual exceeded the postponement budget)")
                else:
                    rk.debt -= 1
                rk.last_ref = c

            else:  # pragma: no cover - log only holds known commands
                flag("structure", c, cmd.rank,
                     f"unknown command {cmd.cmd!r}")

        # tFAW: post-hoc sliding window over the raw ACT timestamps —
        # any five consecutive ACTs to one rank must span >= tFAW.
        for rank, rk in enumerate(ranks):
            acts = rk.acts
            for i in range(4, len(acts)):
                if acts[i] - acts[i - 4] < t.FAW:
                    flag("tFAW", acts[i], rank,
                         f"5th ACT {acts[i] - acts[i - 4]} cycles after "
                         f"ACT at {acts[i - 4]} (window "
                         f"{acts[i - 4:i + 1]})")
        return out

    # ------------------------------------------------------------------
    # Bus-log audit
    # ------------------------------------------------------------------
    def check_bus(
        self, transactions: list[BusTransaction]
    ) -> list[Violation]:
        """Audit the data-bus log via the independent BusAuditor."""
        from ..dram.channel import BusAuditor

        out = []
        for msg in BusAuditor(self.timing).check(transactions):
            constraint = "bus-overlap" if "overlap" in msg else "tRTRS"
            out.append(Violation(constraint, -1, -1, msg))
        return out

    def audit(
        self,
        commands: list[CommandRecord],
        transactions: list[BusTransaction] | None = None,
    ) -> list[Violation]:
        """Full audit: command-level constraints plus the bus log."""
        violations = self.check(commands)
        if transactions:
            violations += self.check_bus(transactions)
        return violations

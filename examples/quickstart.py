#!/usr/bin/env python
"""Quickstart: run one benchmark under MiL and print what it saved.

This touches the whole public API in ~40 lines:

1. pick a Table 2 system configuration,
2. run the DBI baseline and the MiL framework on one workload,
3. compare execution time, transferred zeros, and energy.

Usage::

    python examples/quickstart.py [BENCHMARK]   # default: GUPS
"""

import sys

from repro.core import run
from repro.system import NIAGARA_SERVER


def main() -> None:
    benchmark = sys.argv[1].upper() if len(sys.argv) > 1 else "GUPS"

    print(f"Simulating {benchmark} on the DDR4-3200 microserver ...")
    baseline = run(benchmark, NIAGARA_SERVER, policy="dbi",
                   accesses_per_core=4000)
    mil = run(benchmark, NIAGARA_SERVER, policy="mil",
              accesses_per_core=4000)

    def pct(new: float, old: float) -> str:
        return f"{(new / old - 1) * 100:+.1f}%"

    print()
    print(f"{'metric':28s} {'DBI baseline':>14s} {'MiL':>14s} {'delta':>8s}")
    print("-" * 68)
    print(f"{'execution (DRAM cycles)':28s} {baseline.cycles:14d} "
          f"{mil.cycles:14d} {pct(mil.cycles, baseline.cycles):>8s}")
    print(f"{'zeros on the bus':28s} {baseline.total_zeros:14d} "
          f"{mil.total_zeros:14d} "
          f"{pct(mil.total_zeros, baseline.total_zeros):>8s}")
    io_b = baseline.dram_energy["io"]
    io_m = mil.dram_energy["io"]
    print(f"{'IO energy (uJ)':28s} {io_b * 1e6:14.2f} {io_m * 1e6:14.2f} "
          f"{pct(io_m, io_b):>8s}")
    print(f"{'DRAM energy (uJ)':28s} {baseline.dram_total_j * 1e6:14.2f} "
          f"{mil.dram_total_j * 1e6:14.2f} "
          f"{pct(mil.dram_total_j, baseline.dram_total_j):>8s}")
    print(f"{'system energy (uJ)':28s} "
          f"{baseline.system_total_j * 1e6:14.2f} "
          f"{mil.system_total_j * 1e6:14.2f} "
          f"{pct(mil.system_total_j, baseline.system_total_j):>8s}")

    counts = mil.scheme_counts
    total = sum(counts.values()) or 1
    print()
    print("MiL burst mix: " + ", ".join(
        f"{scheme}: {count / total:.0%}" for scheme, count in
        sorted(counts.items())
    ))
    print(f"bus utilization (baseline): {baseline.bus_utilization:.1%}")


if __name__ == "__main__":
    main()

"""Extension study: MiL on x4 devices (Section 4.1's pin-cost claim).

DDR4 x4 chips do not support DBI — pairing every 4 data pins with a DBI
pin would be a 25 % pin overhead — so an x4 rank ships *uncoded* data.
The paper argues this is exactly where MiL shines: it needs no extra
pins at all ("this approach is more cost-effective than adding data
pins to the memory chip; moreover, unlike the case of DBI, x4 chips can
benefit from MiL").

This experiment quantifies the claim: MiL's IO-energy savings measured
against each width's *actual* baseline — uncoded bursts on x4, DBI
bursts on x8 — are substantially larger on x4.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy=policy,
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
        for policy in ("raw", "dbi", "mil")
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    x4_savings = []
    x8_savings = []
    for bench in BENCHMARK_ORDER:
        raw, dbi, mil = (
            runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                         policy=policy,
                         accesses_per_core=accesses_per_core)]
            for policy in ("raw", "dbi", "mil")
        )
        vs_x4 = mil.dram_energy["io"] / raw.dram_energy["io"]
        vs_x8 = mil.dram_energy["io"] / dbi.dram_energy["io"]
        rows.append([bench, vs_x4, vs_x8])
        x4_savings.append(1 - vs_x4)
        x8_savings.append(1 - vs_x8)

    result = ExperimentResult(
        experiment="ext_x4",
        title=(
            "Extension: MiL IO energy vs each device width's baseline "
            "(x4 = uncoded, x8 = DBI)"
        ),
        headers=["benchmark", "mil_vs_x4_raw", "mil_vs_x8_dbi"],
        rows=rows,
        paper_claim=(
            "x4 chips cannot use DBI, so MiL's pin-free savings are "
            "even larger there (Section 4.1)"
        ),
    )
    result.observations["mean_savings_vs_x4"] = float(np.mean(x4_savings))
    result.observations["mean_savings_vs_x8"] = float(np.mean(x8_savings))
    return result


if __name__ == "__main__":
    print(run_experiment().format())

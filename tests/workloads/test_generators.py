"""Tests for the address-stream and arrival-process primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    ARRIVAL_KINDS,
    arrival_gaps,
    bursty_gaps,
    gather_stream,
    interleave,
    poisson_gaps,
    random_access,
    sequential_stream,
    strided_sweep,
    tile_reuse,
    uniform_gaps,
    update_pairs,
)


def rng():
    return np.random.default_rng(22)


class TestSequential:
    def test_monotone_with_wrap(self):
        addr, _ = sequential_stream(rng(), 100, base=1000,
                                    span_bytes=512, start_offset=0)
        assert addr[0] == 1000
        deltas = np.diff(addr)
        assert ((deltas == 8) | (deltas == 8 - 512)).all()

    def test_stays_in_span(self):
        addr, _ = sequential_stream(rng(), 500, base=4096, span_bytes=1024)
        assert (addr >= 4096).all() and (addr < 4096 + 1024).all()

    def test_write_fraction(self):
        _, wr = sequential_stream(rng(), 4000, 0, 1 << 20,
                                  write_fraction=0.25)
        assert 0.2 < wr.mean() < 0.3

    def test_empty(self):
        addr, wr = sequential_stream(rng(), 0, 0, 1024)
        assert len(addr) == 0 and len(wr) == 0


class TestRandomAccess:
    def test_alignment_and_span(self):
        addr, _ = random_access(rng(), 1000, base=64, span_bytes=8192)
        assert (addr % 8 == 0).all()
        assert (addr >= 64).all() and (addr < 64 + 8192).all()

    def test_spreads_widely(self):
        addr, _ = random_access(rng(), 2000, 0, 1 << 24)
        assert len(np.unique(addr // 4096)) > 100


class TestStrided:
    def test_constant_stride(self):
        addr, _ = strided_sweep(rng(), 50, 0, 1 << 20, stride_bytes=256)
        assert (np.diff(addr) == 256).all()

    def test_small_stride_is_element_step(self):
        addr, _ = strided_sweep(rng(), 10, 0, 1 << 20, stride_bytes=8)
        assert (np.diff(addr) == 8).all()


class TestGather:
    def test_mixes_two_regions(self):
        addr, _ = gather_stream(
            rng(), 1000, seq_base=0, seq_span=1 << 20,
            gather_base=1 << 30, gather_span=1 << 20, gather_ratio=0.5,
        )
        seq = (addr < (1 << 20)).sum()
        gathered = (addr >= (1 << 30)).sum()
        assert seq + gathered == 1000
        assert 350 < gathered < 650


class TestTileReuse:
    def test_tile_locality(self):
        addr, _ = tile_reuse(rng(), 2000, 0, 1 << 22,
                             tile_bytes=4096, reuse_factor=4)
        tiles = addr // 4096
        # Consecutive accesses stay in one tile for long stretches.
        changes = (np.diff(tiles) != 0).sum()
        assert changes < 20

    def test_exact_count(self):
        addr, wr = tile_reuse(rng(), 777, 0, 1 << 22, 4096, 2)
        assert len(addr) == len(wr) == 777


class TestUpdatePairs:
    def test_read_write_alternation(self):
        addr, wr = update_pairs(rng(), 100, 0, 1 << 20)
        assert (addr[0::2] == addr[1::2]).all()  # same slot
        assert not wr[0::2].any()  # reads first
        assert wr[1::2].all()  # then writes


class TestInterleave:
    def test_preserves_all_accesses(self):
        a = (np.arange(10, dtype=np.int64), np.zeros(10, dtype=bool))
        b = (np.arange(100, 105, dtype=np.int64), np.ones(5, dtype=bool))
        addr, wr = interleave(rng(), [a, b], chunk=3)
        assert len(addr) == 15
        assert sorted(addr.tolist()) == sorted(
            a[0].tolist() + b[0].tolist()
        )
        assert wr.sum() == 5

    def test_round_robin_order(self):
        a = (np.array([1, 2, 3, 4], dtype=np.int64), np.zeros(4, dtype=bool))
        b = (np.array([10, 20], dtype=np.int64), np.zeros(2, dtype=bool))
        addr, _ = interleave(rng(), [a, b], chunk=2)
        assert addr.tolist() == [1, 2, 10, 20, 3, 4]

    def test_empty_streams(self):
        addr, wr = interleave(rng(), [])
        assert len(addr) == 0


class TestArrivalGaps:
    def test_means_track_mean_gap(self):
        for kind in ARRIVAL_KINDS:
            gaps = arrival_gaps(rng(), 20000, kind, mean_gap=40.0)
            assert gaps.dtype == np.int64
            assert (gaps >= 0).all()
            assert 34 < gaps.mean() < 46, kind

    def test_zero_gap_means_back_to_back(self):
        for kind in ARRIVAL_KINDS:
            assert (arrival_gaps(rng(), 100, kind, mean_gap=0.0) == 0).all()

    def test_uniform_bounded(self):
        gaps = uniform_gaps(rng(), 5000, mean_gap=30.0)
        assert gaps.max() <= 60

    def test_bursty_is_burstier_than_poisson(self):
        # Bursty arrivals concentrate think time on burst heads, so the
        # fraction of back-to-back (tiny-gap) records must be higher.
        pois = poisson_gaps(rng(), 20000, mean_gap=40.0)
        burst = bursty_gaps(rng(), 20000, mean_gap=40.0, burst=8)
        assert (burst <= 1).mean() > (pois <= 1).mean() + 0.2

    def test_unknown_kind_rejected(self):
        try:
            arrival_gaps(rng(), 10, "fractal", mean_gap=10.0)
        except ValueError as exc:
            assert "fractal" in str(exc)
        else:
            raise AssertionError("unknown arrival kind accepted")

    @given(
        kind=st.sampled_from(ARRIVAL_KINDS),
        seed=st.integers(0, 2**32 - 1),
        mean_gap=st.floats(0.0, 500.0),
        count=st.integers(1, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_seed_identical_gaps(self, kind, seed, mean_gap, count):
        draw = lambda s: arrival_gaps(
            np.random.default_rng(s), count, kind, mean_gap, burst=6
        )
        assert (draw(seed) == draw(seed)).all()

    @given(seed=st.integers(0, 2**32 - 2))
    @settings(max_examples=20, deadline=None)
    def test_neighbouring_seeds_diverge(self, seed):
        a = poisson_gaps(np.random.default_rng(seed), 500, 40.0)
        b = poisson_gaps(np.random.default_rng(seed + 1), 500, 40.0)
        assert (a != b).any()

"""Content fingerprint of the simulation model's source code.

The cache key of every run embeds this fingerprint, so editing any file
that can change simulation results — the codecs, the DRAM model, the
controller, the energy models, the system substrate, the decision
logic, or the workload generators — invalidates stale cached summaries
automatically.  The orchestration layers (``campaign``, ``experiments``,
``analysis``, ``cli``) are deliberately excluded: refactoring how runs
are *driven* must not throw away valid results.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

__all__ = ["MODEL_PACKAGES", "model_fingerprint"]

# Subpackages of repro/ whose source participates in the fingerprint.
MODEL_PACKAGES = (
    "coding",
    "controller",
    "core",
    "dram",
    "energy",
    "system",
    "workloads",
)


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """Hex digest over the model packages' Python source.

    Pure content hash (paths + bytes, sorted), so it is identical
    across processes and machines for identical source trees.
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for package in MODEL_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:16]

"""The timing protocol: sample counts, normalisation, GC handling."""

import gc

import pytest

from repro.bench.timing import Measurement, measure


class TestMeasure:
    def test_sample_count_matches_repeats(self):
        m = measure(lambda: None, repeats=3, warmup=0)
        assert len(m.samples_ns) == 3
        assert m.repeats == 3

    def test_statistics_are_ordered(self):
        m = measure(lambda: sum(range(100)), repeats=5, warmup=1)
        assert 0 < m.min_ns <= m.median_ns
        assert m.mad_ns >= 0
        assert m.ops_per_sec > 0

    def test_inner_ops_divides_per_op_time(self):
        def thunk():
            for _ in range(50):
                pass

        whole = measure(thunk, repeats=3, warmup=1, inner_ops=1)
        split = measure(thunk, repeats=3, warmup=1, inner_ops=50)
        # Not exact (independent runs), but a factor-50 normalisation
        # must dominate run-to-run noise by a wide margin.
        assert split.min_ns < whole.min_ns / 10

    def test_gc_state_restored(self):
        assert gc.isenabled()
        measure(lambda: None, repeats=1, warmup=0)
        assert gc.isenabled()

        gc.disable()
        try:
            measure(lambda: None, repeats=1, warmup=0)
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_gc_restored_when_thunk_raises(self):
        def boom():
            raise RuntimeError("kernel exploded")

        with pytest.raises(RuntimeError):
            measure(boom, repeats=1, warmup=0)
        assert gc.isenabled()

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=1, warmup=-1)

    def test_slow_thunk_uses_single_call_samples(self):
        # A thunk longer than the calibration target must not be batched.
        import time

        m = measure(lambda: time.sleep(0.006), repeats=1, warmup=0)
        assert m.calls_per_sample == 1
        assert m.min_ns >= 5e6  # at least ~5 ms in nanoseconds


class TestMeasurementStats:
    def test_known_samples(self):
        m = Measurement(samples_ns=(10.0, 20.0, 30.0), repeats=3, warmup=0,
                        inner_ops=1, calls_per_sample=1)
        assert m.min_ns == 10.0
        assert m.median_ns == 20.0
        assert m.mad_ns == 10.0
        assert m.ops_per_sec == pytest.approx(1e8)

    def test_as_dict_shape(self):
        m = Measurement(samples_ns=(5.0,), repeats=1, warmup=2,
                        inner_ops=4, calls_per_sample=8)
        d = m.as_dict()
        assert d["ns_per_op"] == {"min": 5.0, "median": 5.0, "mad": 0.0}
        assert d["repeats"] == 1 and d["warmup"] == 2
        assert d["inner_ops"] == 4 and d["calls_per_sample"] == 8

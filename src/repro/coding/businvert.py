"""Bus-Invert (BI) coding for unterminated interfaces (LPDDR3).

On an unterminated interface, energy is spent on 0->1 and 1->0
transitions rather than on static 0s (Section 2.1.2).  Bus-invert
coding [Stan & Burleson 1995] pairs each group of eight data wires with
a BI wire; when transmitting a new byte would flip more than four wires
relative to their current state, the inverted byte is sent instead and
the BI wire is toggled to signal the inversion.

Unlike the per-block codes, BI is *stateful*: the decision depends on
what is currently on the wires.  :class:`BusInvertCode` therefore
exposes a sequence-level API (``encode_sequence``) in addition to a
stateless per-block view where the previous bus state is an explicit
argument.
"""

from __future__ import annotations

import numpy as np

from .bitops import bytes_to_bits

__all__ = ["BusInvertCode"]


class BusInvertCode:
    """The (8, 9) bus-invert code, transition-count flavoured.

    Codeword layout is ``[d7..d0, bi]``.  ``bi == 0`` means the byte is
    original, ``bi == 1`` means it is inverted (the paper's convention in
    Section 2.1.2).
    """

    name = "bi"
    data_bits = 8
    code_bits = 9
    extra_latency_cycles = 0

    def encode_step(
        self, data_bits: np.ndarray, prev_wire: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode one beat given the previous wire state.

        Parameters
        ----------
        data_bits:
            Bits of shape ``(..., 8)`` to transmit.
        prev_wire:
            Current wire state of shape ``(..., 9)`` (data wires + BI wire).

        Returns
        -------
        (codeword, transitions):
            The new 9-bit wire state, and the number of wires that flipped.
        """
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        prev_wire = np.asarray(prev_wire, dtype=np.uint8)
        prev_data = prev_wire[..., :8]
        prev_bi = prev_wire[..., 8]

        flips_plain = np.count_nonzero(data_bits != prev_data, axis=-1)
        # Sending the original byte keeps bi=0; sending the inverted byte
        # sets bi=1.  Either choice may itself flip the BI wire.
        flips_plain = flips_plain + (prev_bi != 0)
        flips_inv = (8 - np.count_nonzero(data_bits != prev_data, axis=-1)) + (
            prev_bi != 1
        )

        invert = (flips_inv < flips_plain)[..., None]
        body = np.where(invert, 1 - data_bits, data_bits)
        flag = invert[..., 0].astype(np.uint8)
        code = np.concatenate([body, flag[..., None]], axis=-1)
        transitions = np.where(invert[..., 0], flips_inv, flips_plain)
        return code, transitions.astype(np.int64)

    def decode_step(self, code_bits: np.ndarray) -> np.ndarray:
        """Recover the original byte bits from a 9-bit wire state."""
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        body = code_bits[..., :8]
        flag = code_bits[..., 8:9]
        return np.where(flag == 1, 1 - body, body)

    def encode_sequence(
        self, data: np.ndarray, initial_wire: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode a beat sequence over one 8-bit lane group.

        Parameters
        ----------
        data:
            uint8 byte values of shape ``(n_beats,)`` or bit array of
            shape ``(n_beats, 8)``.
        initial_wire:
            Starting wire state (9 bits); all-zero if omitted, matching a
            bus idling at ground.

        Returns
        -------
        (codewords, transitions):
            ``(n_beats, 9)`` wire states, and per-beat transition counts.
        """
        data = np.asarray(data)
        bits = data if data.ndim >= 2 else bytes_to_bits(
            data.astype(np.uint8)
        ).reshape(-1, 8)
        bits = bits.astype(np.uint8)
        n = bits.shape[0]
        wire = (
            np.zeros(9, dtype=np.uint8)
            if initial_wire is None
            else np.asarray(initial_wire, dtype=np.uint8)
        )
        if n == 0:
            return np.empty((0, 9), dtype=np.uint8), np.empty(0, np.int64)

        # The sequential greedy choice has a closed form.  Let
        # ``h_i = popcount(d_i ^ d_{i-1})`` on the *raw* data (with a
        # virtual ``d_{-1}`` = the initial body un-inverted by the
        # initial BI state).  Whatever the current BI state is, the BI
        # wire toggles exactly when ``h_i >= 5`` (flips_plain +
        # flips_inv = 9 is odd, so there are no ties), which makes the
        # BI state a XOR-prefix-scan of those toggles — the whole
        # sequence encodes in one vectorised shot, bit-identical to
        # iterating :meth:`encode_step`.
        prev_bi = wire[8]
        virtual_prev = wire[:8] ^ prev_bi
        prev_rows = np.vstack([virtual_prev[None, :], bits[:-1]])
        h = (bits ^ prev_rows).sum(axis=1, dtype=np.int64)
        toggles = (h >= 5).astype(np.uint8)
        state = np.bitwise_xor.accumulate(toggles) ^ prev_bi
        codes = np.concatenate(
            [bits ^ state[:, None], state[:, None]], axis=1
        ).astype(np.uint8)
        # A toggled beat sends the complement: 9 - h_i wire flips
        # (including the BI wire's own flip); an untoggled beat flips
        # exactly the h_i data wires that changed.
        trans = np.where(toggles == 1, 9 - h, h).astype(np.int64)
        return codes, trans

    def decode_sequence(self, codes: np.ndarray) -> np.ndarray:
        """Recover the byte-bit sequence from the wire-state sequence."""
        return self.decode_step(np.asarray(codes, dtype=np.uint8))

"""Figure 22: how often MiL picks MiLC vs 3-LWC at runtime.

The opportunity for the long code shrinks as bus utilisation grows:
light benchmarks ship most bursts as 3-LWC, while the data-intensive
ones fall back to MiLC — the paper notes this points at an intermediate
code length as future work.
"""

from __future__ import annotations

import numpy as np

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy="mil",
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    utils = []
    lwc_shares = []
    for bench in BENCHMARK_ORDER:
        summary = runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                               policy="mil",
                               accesses_per_core=accesses_per_core)]
        counts = summary.scheme_counts
        total = sum(counts.values()) or 1
        lwc = counts.get("3lwc", 0) / total
        milc = counts.get("milc", 0) / total
        rows.append([bench, milc, lwc, summary.bus_utilization])
        utils.append(summary.bus_utilization)
        lwc_shares.append(lwc)

    corr = float(np.corrcoef(utils, lwc_shares)[0, 1])
    result = ExperimentResult(
        experiment="fig22",
        title=(
            "Figure 22: fraction of bursts coded with MiLC vs 3-LWC "
            "under MiL (DDR4 server)"
        ),
        headers=["benchmark", "milc_share", "3lwc_share", "bus_util"],
        rows=rows,
        paper_claim=(
            "the opportunity for the long 3-LWC code decreases as data "
            "bus utilization increases"
        ),
    )
    result.observations["corr_util_vs_3lwc_share"] = corr
    return result


if __name__ == "__main__":
    print(run_experiment().format())

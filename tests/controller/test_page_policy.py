"""Tests for the closed-page policy and its row-hit awareness."""

from dataclasses import replace

from repro.controller import ChannelController, MemoryRequest
from repro.dram import DDR4_3200, DDR4_GEOMETRY, AddressMapper

MAPPER = AddressMapper(DDR4_GEOMETRY, channels=2)


def req(line, write=False):
    m = replace(MAPPER.map(line * 64), channel=0)
    r = MemoryRequest(address=MAPPER.reverse(m), is_write=write)
    r.mapped = m
    return r


def run_all(mc, requests, now=0):
    for r in requests:
        mc.enqueue(r, now)
    done = []
    while mc.has_pending:
        mc.step(now)
        done.extend(mc.drain_completions())
        nxt = mc.next_event(now)
        if nxt is None:
            break
        now = max(now + 1, nxt)
    done.extend(mc.drain_completions())
    return done, now


class TestClosedPage:
    def test_lone_access_auto_precharges(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                               page_policy="closed", refresh_enabled=False)
        run_all(mc, [req(0)])
        assert mc.channel.auto_precharges == 1
        assert mc.channel.all_banks_closed(0)

    def test_row_hit_streak_defers_precharge(self):
        # Four hits to one row: only the last access auto-precharges.
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                               page_policy="closed", refresh_enabled=False)
        run_all(mc, [req(i) for i in range(4)])
        assert mc.channel.activate_count == 1  # one row opening
        assert mc.channel.auto_precharges == 1  # closed once, at the end

    def test_open_page_never_auto_precharges(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                               page_policy="open", refresh_enabled=False)
        run_all(mc, [req(i) for i in range(4)])
        assert mc.channel.auto_precharges == 0

    def test_closed_page_helps_row_conflicts(self):
        # Alternating rows in one bank: closed-page removes the explicit
        # precharge from the critical path.
        lines_per_row = DDR4_GEOMETRY.lines_per_row
        # Same bank, alternating rows, distinct columns.
        conflict_stream = [
            req((i % 2) * lines_per_row * 32 + (i // 2))
            for i in range(12)
        ]
        open_mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                                    page_policy="open",
                                    refresh_enabled=False)
        closed_mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                                      page_policy="closed",
                                      refresh_enabled=False)
        # Warm both controllers on an unrelated bank so neither starts
        # with a conveniently open row.
        _, t_open = run_all(open_mc, [req(9999)])
        _, t_closed = run_all(closed_mc, [req(9999)])
        done_o, end_o = run_all(open_mc, conflict_stream, now=t_open + 10)
        done_c, end_c = run_all(closed_mc, conflict_stream,
                                now=t_closed + 10)
        assert len(done_o) == len(done_c) == 12
        # Auto-precharge folds tRP out of the explicit command
        # stream; at worst it ties the open-page schedule here.
        assert end_c <= end_o

    def test_invalid_policy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ChannelController(DDR4_3200, DDR4_GEOMETRY,
                              page_policy="sideways")

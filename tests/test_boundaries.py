"""The registry boundary holds: nothing outside repro.coding touches
the legacy BURST_FORMATS/_SCHEMES views (see tools/lint_boundaries.py,
which CI runs as a standalone step)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "lint_boundaries.py"


def _load_linter():
    spec = importlib.util.spec_from_file_location("lint_boundaries", LINTER)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("lint_boundaries", module)
    spec.loader.exec_module(module)
    return module


class TestBoundaryLint:
    def test_tree_is_clean(self):
        lint = _load_linter()
        assert lint.check_tree() == []

    def test_catches_legacy_import(self):
        lint = _load_linter()
        bad = "from ..coding.pipeline import BURST_FORMATS\n"
        problems = lint.check_source(bad, "fake.py")
        assert len(problems) == 1
        assert "BURST_FORMATS" in problems[0]
        assert "registry" in problems[0]

    def test_catches_attribute_spelling(self):
        lint = _load_linter()
        bad = (
            "from repro.coding import pipeline\n"
            "x = pipeline.BURST_FORMATS['dbi']\n"
        )
        problems = lint.check_source(bad, "fake.py")
        assert any("BURST_FORMATS" in p for p in problems)

    def test_catches_codec_class_import(self):
        lint = _load_linter()
        bad = "from ..coding.milc import MiLCCode\n"
        problems = lint.check_source(bad, "fake.py")
        assert len(problems) == 1
        assert "MiLCCode" in problems[0]
        assert "codec_for" in problems[0]

    def test_catches_codec_class_import_from_package(self):
        lint = _load_linter()
        bad = "from repro.coding import DBICode, codec_for\n"
        problems = lint.check_source(bad, "fake.py")
        assert len(problems) == 1
        assert "DBICode" in problems[0]

    def test_allows_unregistered_helper_classes(self):
        lint = _load_linter()
        good = (
            "from ..coding.optimal_lwc import OptimalStaticLWC\n"
            "from ..coding.businvert import BusInvertCode\n"
            "from ..coding.transition import TransitionSignaling\n"
        )
        assert lint.check_source(good, "fake.py") == []

    def test_allows_local_tuples_and_registry(self):
        lint = _load_linter()
        good = (
            "_SCHEMES = ('raw', 'dbi')\n"
            "from ..coding.registry import scheme_info, real_schemes\n"
            "bl = scheme_info('dbi').burst_length\n"
        )
        assert lint.check_source(good, "fake.py") == []


class TestEventCoreBoundaries:
    """The event-core ownership rules (DESIGN.md, "Event core")."""

    def test_catches_event_heap_import(self):
        lint = _load_linter()
        for bad in (
            "from repro.system.events import EventQueue\n",
            "from ..system.events import EventQueue\n",
            "from repro.system import events\n",
            "import repro.system.events\n",
        ):
            problems = lint.check_source(bad, "fake.py")
            assert len(problems) == 1, bad
            assert "repro.system.events" in problems[0]

    def test_owner_package_may_use_the_heap(self):
        lint = _load_linter()
        good = "from .events import EventQueue\n"
        assert lint.check_source(good, "fake.py", package="system") == []

    def test_other_events_modules_stay_importable(self):
        lint = _load_linter()
        good = (
            "from .events import RunEvent, null_sink\n"
            "from repro.campaign.events import ProgressLine\n"
            "from repro.serve.events import EventLog\n"
        )
        assert lint.check_source(good, "fake.py", package="campaign") == []

    def test_catches_controller_internal_attribute(self):
        lint = _load_linter()
        bad = (
            "mc = build()\n"
            "cands = mc._candidates(now)\n"
            "pick, wake = mc._schedule_query(now)\n"
        )
        problems = lint.check_source(bad, "fake.py")
        assert len(problems) == 2
        assert "_candidates" in problems[0]
        assert "_schedule_query" in problems[1]

    def test_controller_package_is_exempt(self):
        lint = _load_linter()
        good = "pick, wake = self._schedule_query(now)\n"
        assert lint.check_source(good, "fake.py", package="controller") == []

    def test_public_surface_stays_clean(self):
        lint = _load_linter()
        good = (
            "mc.sync(now)\n"
            "issued = mc.step(now)\n"
            "wake = mc.next_event(now)\n"
        )
        assert lint.check_source(good, "fake.py") == []

#!/usr/bin/env python
"""Microserver scenario: sweep the whole suite on the DDR4 system.

Reproduces the headline DDR4 comparison in miniature: every benchmark,
four coding policies, with execution time and energy normalized to the
DBI baseline — the data behind Figures 16(a)/17/19(a).

Usage::

    python examples/microserver_ddr4.py [--fast]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.core import run
from repro.system import NIAGARA_SERVER
from repro.workloads import BENCHMARK_ORDER

POLICIES = ("milc", "mil", "cafo2")


def main() -> None:
    scale = 2500 if "--fast" in sys.argv else 5000
    rows = []
    sums = {p: {"cyc": [], "io": [], "sys": []} for p in POLICIES}
    for bench in BENCHMARK_ORDER:
        print(f"  running {bench} ...", flush=True)
        base = run(bench, NIAGARA_SERVER, "dbi", accesses_per_core=scale)
        row = [bench, f"{base.bus_utilization:.2f}"]
        for policy in POLICIES:
            s = run(bench, NIAGARA_SERVER, policy, accesses_per_core=scale)
            cyc = s.cycles / base.cycles
            io = s.dram_energy["io"] / base.dram_energy["io"]
            sy = s.system_total_j / base.system_total_j
            sums[policy]["cyc"].append(cyc)
            sums[policy]["io"].append(io)
            sums[policy]["sys"].append(sy)
            row += [cyc, io, sy]
        rows.append(row)

    headers = ["benchmark", "util"]
    for policy in POLICIES:
        headers += [f"{policy}:time", f"{policy}:io", f"{policy}:sys"]
    print()
    print(format_table(headers, rows,
                       title="DDR4 microserver, normalized to DBI"))
    print()
    for policy in POLICIES:
        print(
            f"{policy:6s} mean: time {np.mean(sums[policy]['cyc']):.3f}, "
            f"IO energy {np.mean(sums[policy]['io']):.3f}, "
            f"system energy {np.mean(sums[policy]['sys']):.3f}"
        )
    print()
    print("paper (DDR4): MiL cuts IO energy 49% with <2% average "
          "slowdown and ~3.7% system energy savings")


if __name__ == "__main__":
    main()

"""BENCH_*.json schema: building, validating, writing, loading."""

import json
import re

import pytest

from repro.bench.registry import BenchError, BenchmarkDef
from repro.bench.report import (
    SCHEMA,
    build_report,
    default_filename,
    environment,
    load_report,
    result_entry,
    validate_report,
    write_report,
)
from repro.bench.timing import Measurement


def _entry(name="t.bench", **overrides):
    defn = BenchmarkDef(name=name, factory=lambda: (lambda: None),
                        params={"n": 1}, smoke=True)
    m = Measurement(samples_ns=(10.0, 12.0, 11.0), repeats=3, warmup=1,
                    inner_ops=1, calls_per_sample=2)
    entry = result_entry(defn, m)
    entry.update(overrides)
    return entry


class TestBuildAndValidate:
    def test_round_trip_is_valid(self):
        doc = build_report([_entry()])
        assert validate_report(doc) == []
        assert doc["schema"] == SCHEMA
        assert doc["results"][0]["name"] == "t.bench"
        assert doc["protocol"]["stat_for_compare"] == "ns_per_op.min"

    def test_environment_block(self):
        env = environment()
        for key in ("git_rev", "python", "platform", "numpy"):
            assert isinstance(env[key], str) and env[key]
        assert isinstance(env["native_popcount"], bool)

    def test_created_utc_format(self):
        doc = build_report([_entry()])
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", doc["created_utc"]
        )

    def test_rejects_duplicate_names(self):
        with pytest.raises(BenchError, match="duplicated"):
            build_report([_entry(), _entry()])

    def test_rejects_negative_stats(self):
        bad = _entry()
        bad["ns_per_op"]["min"] = -1.0
        problems = validate_report(build_report_unchecked([bad]))
        assert any("min" in p for p in problems)

    def test_rejects_non_dict_document(self):
        assert validate_report([1, 2]) == ["document is not a JSON object"]

    def test_rejects_wrong_schema_and_missing_keys(self):
        problems = validate_report({"schema": "nope"})
        assert any("schema" in p for p in problems)
        assert any("results" in p for p in problems)


def build_report_unchecked(results):
    """A structurally complete document bypassing build_report's gate."""
    return {
        "schema": SCHEMA,
        "created_utc": "2026-01-01T00:00:00Z",
        "environment": environment(),
        "protocol": {},
        "results": results,
    }


class TestFiles:
    def test_default_filename_convention(self):
        assert re.fullmatch(r"BENCH_\d{8}T\d{6}Z\.json", default_filename())

    def test_write_to_directory_uses_convention(self, tmp_path):
        path = write_report(tmp_path, build_report([_entry()]))
        assert path.parent == tmp_path
        assert path.name.startswith("BENCH_")
        assert load_report(path)["results"][0]["name"] == "t.bench"

    def test_write_to_explicit_file(self, tmp_path):
        target = tmp_path / "out.json"
        path = write_report(target, build_report([_entry()]))
        assert path == target
        assert json.loads(target.read_text())["schema"] == SCHEMA

    def test_write_refuses_invalid_document(self, tmp_path):
        with pytest.raises(BenchError, match="invalid report"):
            write_report(tmp_path / "x.json", {"schema": SCHEMA})

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(BenchError, match="not valid JSON"):
            load_report(bad)
        with pytest.raises(BenchError, match="cannot read"):
            load_report(tmp_path / "missing.json")

    def test_load_rejects_invalid_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(BenchError, match="not a valid report"):
            load_report(bad)

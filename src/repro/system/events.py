"""Cross-channel event heap for the event-driven simulation core.

One binary heap holds every future wake-up the simulator knows about:

* **completion events** — a demand read's data burst finishing (these
  are exact and never invalidated);
* **core arm times** — the cycle a core's next record clears its think
  time (deduplicated: at most one live entry per core);
* **controller wakes** — ``ChannelController.next_event`` results,
  lazily invalidated by a per-channel version stamp whenever the
  controller is rescheduled.

Invalidation is *lazy* (the classic heap-with-versions pattern): a
superseded entry stays in the heap and is discarded, and counted, when
it reaches the top.  ``pops``/``stale`` expose the hit rate — the
telemetry layer republishes them as ``sim.event_queue.pops`` and
``sim.event_queue.stale``.

This module is internal to ``repro.system``: the only supported
consumer is :mod:`repro.system.simulator` (enforced by
``tools/lint_boundaries.py``).
"""

from __future__ import annotations

import heapq

__all__ = ["EventQueue"]

# Entry tags; completion < core < controller so same-cycle entries pop
# in a deterministic order (the round processor groups them anyway).
_COMPLETION = 0
_CORE = 1
_CTRL = 2


class EventQueue:
    """Lazy-invalidated event heap over completions, cores, channels."""

    __slots__ = ("_heap", "_ctrl_version", "_core_arm", "pops", "stale")

    def __init__(self, channels: int, cores: int):
        self._heap: list = []
        # Latest pushed version per channel; an entry whose stamp does
        # not match is stale.
        self._ctrl_version = [0] * channels
        # Latest armed wake time per core (-1: no live entry); doubles
        # as the dedupe filter and the validity stamp.
        self._core_arm = [-1] * cores
        self.pops = 0
        self.stale = 0

    def push_completion(self, when: int, serial: int) -> None:
        """A demand read's data finishes at ``when``.  Always valid."""
        heapq.heappush(self._heap, (when, _COMPLETION, serial, 0))

    def push_core(self, core_id: int, when: int) -> None:
        """Arm ``core_id`` at ``when``; replaces any earlier arm."""
        if self._core_arm[core_id] == when:
            return  # identical live entry already queued
        self._core_arm[core_id] = when
        heapq.heappush(self._heap, (when, _CORE, core_id, 0))

    def push_ctrl(self, channel: int, when: int) -> None:
        """Schedule ``channel`` at ``when``, superseding earlier wakes."""
        version = self._ctrl_version[channel] + 1
        self._ctrl_version[channel] = version
        heapq.heappush(self._heap, (when, _CTRL, channel, version))

    def cancel_ctrl(self, channel: int) -> None:
        """Invalidate any queued wake for ``channel`` (idle forever)."""
        self._ctrl_version[channel] += 1

    def pop_round(self):
        """Pop every valid entry at the earliest populated cycle.

        Returns ``(cycle, completions, cores, channels)`` — serials in
        heap (finish, serial) order, core and channel ids as popped —
        or ``None`` when no valid entry remains (deadlock upstream).
        """
        heap = self._heap
        ctrl_version = self._ctrl_version
        core_arm = self._core_arm
        while heap:
            when = heap[0][0]
            completions: list = []
            cores: list = []
            channels: list = []
            while heap and heap[0][0] == when:
                _, tag, key, version = heapq.heappop(heap)
                self.pops += 1
                if tag == _COMPLETION:
                    completions.append(key)
                elif tag == _CORE:
                    if core_arm[key] == when:
                        core_arm[key] = -1
                        cores.append(key)
                    else:
                        self.stale += 1
                elif ctrl_version[key] == version:
                    channels.append(key)
                else:
                    self.stale += 1
            if completions or cores or channels:
                return when, completions, cores, channels
            # Everything at this cycle was stale; keep draining.
        return None

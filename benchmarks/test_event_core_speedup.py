"""Gate: the event core actually pays on end-to-end simulation.

``REPRO_NO_EVENT_CACHE=1`` swaps the whole caching stack out — the
lockstep driver replaces the cross-channel event heap, and the
controller recomputes its FR-FCFS candidate list from scratch on every
call (see DESIGN.md, "Event core").  That path exists as the
equivalence oracle, and the hypothesis suite proves the two produce
byte-identical command logs; this gate proves the cached path is not
just equal but *faster*, on the same end-to-end GUPS kernel the
``sim.run_spec.gups`` benchmark times.  1.5x is the floor the ISSUE
acceptance demands; the measured gap is larger (the oracle visits
every populated cycle on every channel).
"""

import os

import pytest

from repro.bench import get, measure
from repro.controller.controller import NO_EVENT_CACHE_ENV

MIN_SPEEDUP = 1.5
ATTEMPTS = 3  # whole-comparison retries before failing


@pytest.fixture
def clean_env():
    saved = os.environ.pop(NO_EVENT_CACHE_ENV, None)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(NO_EVENT_CACHE_ENV, None)
        else:
            os.environ[NO_EVENT_CACHE_ENV] = saved


def test_event_core_speeds_up_end_to_end_run(clean_env):
    bench = get("sim.run_spec.gups")
    kernel = bench.build()

    best = 0.0
    for _ in range(ATTEMPTS):
        t_cached = measure(kernel, repeats=3, warmup=1,
                           inner_ops=bench.inner_ops).min_ns
        os.environ[NO_EVENT_CACHE_ENV] = "1"
        try:
            t_oracle = measure(kernel, repeats=3, warmup=1,
                               inner_ops=bench.inner_ops).min_ns
        finally:
            del os.environ[NO_EVENT_CACHE_ENV]
        speedup = t_oracle / t_cached
        best = max(best, speedup)
        if speedup >= MIN_SPEEDUP:
            return
    pytest.fail(
        f"event-core speedup {best:.2f}x is below the {MIN_SPEEDUP}x "
        "gate on the end-to-end GUPS kernel"
    )


def test_cached_and_oracle_results_agree(clean_env):
    # The gate times the same computation twice; prove it IS the same.
    kernel = get("sim.run_spec.gups").build()
    cached = kernel()
    os.environ[NO_EVENT_CACHE_ENV] = "1"
    try:
        oracle = kernel()
    finally:
        del os.environ[NO_EVENT_CACHE_ENV]
    assert cached.cycles == oracle.cycles
    assert cached.scheme_counts == oracle.scheme_counts
    assert cached.mean_read_latency == oracle.mean_read_latency
    assert cached.dram_total_j == oracle.dram_total_j
